//! # iotse — Understanding Energy Efficiency in IoT App Executions, in Rust
//!
//! A full-stack reproduction of the ICDCS 2019 paper of the same name:
//! a deterministic simulation of the paper's Raspberry Pi 3B + ESP8266 IoT
//! hub, the ten Table I sensors over synthetic physical phenomena with
//! ground truth, the eleven Table II workloads with **real application
//! kernels**, and the five execution schemes the paper evaluates —
//! Baseline, Batching, COM (Computation Offloading to MCU), BEAM and BCOM.
//!
//! The workspace layers:
//!
//! * [`sim`] — discrete-event engine, clock, statistics, tracing.
//! * [`energy`] — power/energy units, state machines, per-routine
//!   attribution, the virtual power monitor.
//! * [`sensors`] — Table I sensor models and the simulated physical world.
//! * [`core`] — the platform model, admission control and the scheme
//!   executor (the paper's contribution).
//! * [`apps`] — the A1–A11 workloads and their kernels.
//!
//! # Quickstart
//!
//! ```
//! use iotse::prelude::*;
//!
//! let seed = 42;
//! let apps = iotse::apps::catalog::apps(&[AppId::A2], seed);
//! let result = Scenario::new(Scheme::Batching, apps).windows(2).seed(seed).run();
//!
//! println!("{} used {}", result.scheme, result.total_energy());
//! assert_eq!(result.interrupts, 2); // one bulk interrupt per window
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use iotse_apps as apps;
pub use iotse_core as core;
pub use iotse_energy as energy;
pub use iotse_sensors as sensors;
pub use iotse_sim as sim;

/// The types most programs need.
pub mod prelude {
    pub use iotse_apps::catalog;
    pub use iotse_core::robustness::{
        EnergyRatioBound, Expectation, NoPanic, QosDegradationBound, RobustnessReport,
    };
    pub use iotse_core::{
        run_fleet, AppFlow, AppId, AppOutput, Calibration, Fleet, RunResult, Scenario, Scheme,
    };
    pub use iotse_energy::{Breakdown, Energy, Power};
    pub use iotse_sensors::{PhysicalWorld, SensorId, WorldConfig};
    pub use iotse_sim::{FaultKind, FaultScript, FaultStats, SeedTree, SimDuration, SimTime};
}
