//! One bench per paper table/figure: times a full reproduction of each
//! experiment (scenario runs + analysis) at the quick configuration, so
//! regressions in the simulator's hot paths show up per experiment.

use iotse_bench::config::ExperimentConfig;
use iotse_bench::figures::{
    fig01, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12, fig13, tables,
};
use iotse_bench::stopwatch::bench;

fn cfg() -> ExperimentConfig {
    ExperimentConfig::quick()
}

fn main() {
    bench("figures", "fig01_idle_vs_baseline", || fig01::run(&cfg()));
    bench("figures", "fig03_sc_m2x_beam", || fig03::run(&cfg()));
    bench("figures", "fig04_transfer_split", || fig04::run(&cfg()));
    bench("figures", "fig05_power_states", || fig05::run(&cfg()));
    bench("figures", "fig06_resources", || fig06::run(&cfg()));
    bench("figures", "fig07_sc_batching", || fig07::run(&cfg()));
    bench("figures", "fig08_sc_timing", || fig08::run(&cfg()));
    bench("figures", "fig09_sc_three_schemes", || fig09::run(&cfg()));
    bench("figures", "fig10_single_app_matrix", || fig10::run(&cfg()));
    bench("figures", "fig11_multi_app_matrix", || fig11::run(&cfg()));
    bench("figures", "fig12_heavy_weight", || fig12::run(&cfg()));
    bench("figures", "fig13_speedups", || fig13::run(&cfg()));
    bench("figures", "table1_sensors", tables::table1);
    bench("figures", "table2_workloads", || tables::table2(&cfg()));
}
