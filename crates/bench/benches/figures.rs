//! One Criterion bench per paper table/figure: times a full reproduction
//! of each experiment (scenario runs + analysis) at the quick
//! configuration, so regressions in the simulator's hot paths show up per
//! experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use iotse_bench::config::ExperimentConfig;
use iotse_bench::figures::{
    fig01, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12, fig13, tables,
};

fn cfg() -> ExperimentConfig {
    ExperimentConfig::quick()
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("fig01_idle_vs_baseline", |b| b.iter(|| fig01::run(&cfg())));
    g.bench_function("fig03_sc_m2x_beam", |b| b.iter(|| fig03::run(&cfg())));
    g.bench_function("fig04_transfer_split", |b| b.iter(|| fig04::run(&cfg())));
    g.bench_function("fig05_power_states", |b| b.iter(|| fig05::run(&cfg())));
    g.bench_function("fig06_resources", |b| b.iter(|| fig06::run(&cfg())));
    g.bench_function("fig07_sc_batching", |b| b.iter(|| fig07::run(&cfg())));
    g.bench_function("fig08_sc_timing", |b| b.iter(|| fig08::run(&cfg())));
    g.bench_function("fig09_sc_three_schemes", |b| b.iter(|| fig09::run(&cfg())));
    g.bench_function("fig10_single_app_matrix", |b| b.iter(|| fig10::run(&cfg())));
    g.bench_function("fig11_multi_app_matrix", |b| b.iter(|| fig11::run(&cfg())));
    g.bench_function("fig12_heavy_weight", |b| b.iter(|| fig12::run(&cfg())));
    g.bench_function("fig13_speedups", |b| b.iter(|| fig13::run(&cfg())));
    g.bench_function("table1_sensors", |b| b.iter(tables::table1));
    g.bench_function("table2_workloads", |b| b.iter(|| tables::table2(&cfg())));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
