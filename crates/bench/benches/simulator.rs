//! Simulator throughput benches: raw engine event rate and full scenario
//! runs per scheme — the cost of reproducing one paper data point.

use criterion::{criterion_group, criterion_main, Criterion};
use iotse_core::{AppId, Scenario, Scheme};
use iotse_sim::engine::Engine;
use iotse_sim::time::{SimDuration, SimTime};

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("schedule_and_drain_10k", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            for i in 0..10_000u64 {
                engine.schedule_at(SimTime::from_micros(i * 37 % 100_000), |count, _| {
                    *count += 1;
                });
            }
            let mut count = 0u64;
            engine.run(&mut count);
            assert_eq!(count, 10_000);
            count
        })
    });
    g.bench_function("self_rescheduling_chain_10k", |b| {
        b.iter(|| {
            fn tick(count: &mut u64, e: &mut Engine<u64>) {
                *count += 1;
                if *count < 10_000 {
                    e.schedule_in(SimDuration::from_micros(100), tick);
                }
            }
            let mut engine: Engine<u64> = Engine::new();
            engine.schedule_at(SimTime::ZERO, tick);
            let mut count = 0u64;
            engine.run(&mut count);
            count
        })
    });
    g.finish();
}

fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for scheme in Scheme::ALL {
        g.bench_function(format!("step_counter_{scheme}"), |b| {
            b.iter(|| {
                Scenario::new(scheme, iotse_apps::catalog::apps(&[AppId::A2], 42))
                    .windows(2)
                    .seed(42)
                    .run()
            })
        });
    }
    g.bench_function("four_app_bcom", |b| {
        b.iter(|| {
            Scenario::new(
                Scheme::Bcom,
                iotse_apps::catalog::apps(&[AppId::A2, AppId::A4, AppId::A5, AppId::A7], 42),
            )
            .windows(2)
            .seed(42)
            .run()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine, bench_scenarios);
criterion_main!(benches);
