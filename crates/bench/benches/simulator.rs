//! Simulator throughput benches: raw engine event rate and full scenario
//! runs per scheme — the cost of reproducing one paper data point.

use iotse_bench::stopwatch::bench;
use iotse_core::{AppId, Scenario, Scheme};
use iotse_sim::engine::Engine;
use iotse_sim::time::{SimDuration, SimTime};

fn main() {
    bench("engine", "schedule_and_drain_10k", || {
        let mut engine: Engine<u64> = Engine::new();
        for i in 0..10_000u64 {
            engine.schedule_at(SimTime::from_micros(i * 37 % 100_000), |count, _| {
                *count += 1;
            });
        }
        let mut count = 0u64;
        engine.run(&mut count);
        assert_eq!(count, 10_000);
        count
    });
    bench("engine", "self_rescheduling_chain_10k", || {
        fn tick(count: &mut u64, e: &mut Engine<u64>) {
            *count += 1;
            if *count < 10_000 {
                e.schedule_in(SimDuration::from_micros(100), tick);
            }
        }
        let mut engine: Engine<u64> = Engine::new();
        engine.schedule_at(SimTime::ZERO, tick);
        let mut count = 0u64;
        engine.run(&mut count);
        count
    });
    for scheme in Scheme::ALL {
        bench("scenario", &format!("step_counter_{scheme}"), || {
            Scenario::new(scheme, iotse_apps::catalog::apps(&[AppId::A2], 42))
                .windows(2)
                .seed(42)
                .run()
        });
    }
    bench("scenario", "four_app_bcom", || {
        Scenario::new(
            Scheme::Bcom,
            iotse_apps::catalog::apps(&[AppId::A2, AppId::A4, AppId::A5, AppId::A7], 42),
        )
        .windows(2)
        .seed(42)
        .run()
    });
}
