//! Microbenchmarks of the application kernels — the computations whose
//! CPU/MCU placement the paper's COM scheme trades off.

use iotse_apps::kernels::{coap, fingermatch, jpeg, json, qrs, speech, stalta, stepcount, sync};
use iotse_bench::stopwatch::bench;
use iotse_sensors::signal::ecg::{EcgGenerator, EcgProfile};
use iotse_sensors::signal::fingerprint::{FingerTemplate, FingerprintScanner};
use iotse_sensors::signal::gait::{GaitGenerator, GaitProfile};
use iotse_sensors::signal::image::ImageGenerator;
use iotse_sim::rng::SeedTree;
use iotse_sim::time::SimTime;

fn bench_dsp() {
    let seeds = SeedTree::new(1);

    let mut gait = GaitGenerator::new(&seeds, GaitProfile::default());
    let accel: Vec<[f64; 3]> = (0..1000)
        .map(|ms| gait.sample_triple(SimTime::from_millis(ms)))
        .collect();
    bench("dsp", "stepcount_window", || {
        stepcount::count_steps(&accel, &stepcount::StepConfig::default())
    });

    bench("dsp", "stalta_window", || {
        let mut d = stalta::StaLta::new(stalta::StaLtaConfig::default());
        d.process_window(&accel)
    });

    let ecg = EcgGenerator::new(&seeds, EcgProfile::default(), SimTime::from_secs(2));
    let pulse: Vec<f64> = (0..1000)
        .map(|ms| ecg.value_at(SimTime::from_millis(ms)))
        .collect();
    bench("dsp", "qrs_window", || {
        let mut d = qrs::QrsDetector::new(qrs::QrsConfig::default());
        d.process_window(&pulse)
    });
}

fn bench_codecs() {
    let seeds = SeedTree::new(2);
    let mut cam = ImageGenerator::new(&seeds, 104, 78);
    let luma = cam.frame(0).luma();
    bench("codecs", "jpeg_encode_lowres", || {
        jpeg::encode(&luma, 104, 78, 85)
    });
    let encoded = jpeg::encode(&luma, 104, 78, 85);
    bench("codecs", "jpeg_decode_lowres", || {
        jpeg::decode(&encoded).expect("ok")
    });
    let block = [42.0f64; 64];
    bench("codecs", "idct_block", || jpeg::idct(&block));

    let doc = json::Json::array((0..100).map(|i| {
        json::Json::object([
            ("t", json::Json::Number(f64::from(i))),
            ("v", json::Json::Number(f64::from(i) * 0.25)),
        ])
    }));
    let text = doc.to_text();
    bench("codecs", "json_serialize_100", || doc.to_text());
    bench("codecs", "json_parse_100", || {
        json::Json::parse(&text).expect("ok")
    });

    let msg = coap::CoapMessage::content(7, &[1, 2], text.clone().into_bytes());
    let wire = msg.encode();
    bench("codecs", "coap_encode", || msg.encode());
    bench("codecs", "coap_decode", || {
        coap::CoapMessage::decode(&wire).expect("ok")
    });
}

fn bench_matchers() {
    let seeds = SeedTree::new(3);

    let mut db = fingermatch::FingerDb::new(fingermatch::MatchConfig::default());
    for p in 0..4 {
        db.enroll(p, FingerTemplate::of_person(&seeds, p));
    }
    let mut scanner = FingerprintScanner::new(&seeds);
    let scan = scanner.scan(2);
    bench("matchers", "finger_identify", || {
        db.identify(&scan.minutiae)
    });

    let spotter = speech::KeywordSpotter::new(1000.0);
    let audio: Vec<f64> = (0..1000)
        .map(|i| 512.0 + 150.0 * (f64::from(i as u32) * 0.9).sin())
        .collect();
    bench("matchers", "keyword_spot_window", || {
        spotter.recognize(&audio)
    });

    let data: Vec<u8> = (0..12_000u32).map(|i| (i % 251) as u8).collect();
    bench("matchers", "chunk_12kb", || {
        sync::chunk(&data, &sync::ChunkConfig::default())
    });
}

fn main() {
    bench_dsp();
    bench_codecs();
    bench_matchers();
}
