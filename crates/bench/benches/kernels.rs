//! Microbenchmarks of the application kernels — the computations whose
//! CPU/MCU placement the paper's COM scheme trades off.

use criterion::{criterion_group, criterion_main, Criterion};
use iotse_apps::kernels::{coap, fingermatch, jpeg, json, qrs, speech, stalta, stepcount, sync};
use iotse_sensors::signal::ecg::{EcgGenerator, EcgProfile};
use iotse_sensors::signal::fingerprint::{FingerTemplate, FingerprintScanner};
use iotse_sensors::signal::gait::{GaitGenerator, GaitProfile};
use iotse_sensors::signal::image::ImageGenerator;
use iotse_sim::rng::SeedTree;
use iotse_sim::time::SimTime;

fn bench_dsp(c: &mut Criterion) {
    let seeds = SeedTree::new(1);
    let mut g = c.benchmark_group("dsp");

    let mut gait = GaitGenerator::new(&seeds, GaitProfile::default());
    let accel: Vec<[f64; 3]> = (0..1000)
        .map(|ms| gait.sample_triple(SimTime::from_millis(ms)))
        .collect();
    g.bench_function("stepcount_window", |b| {
        b.iter(|| stepcount::count_steps(&accel, &stepcount::StepConfig::default()))
    });

    g.bench_function("stalta_window", |b| {
        b.iter_batched(
            || stalta::StaLta::new(stalta::StaLtaConfig::default()),
            |mut d| d.process_window(&accel),
            criterion::BatchSize::SmallInput,
        )
    });

    let ecg = EcgGenerator::new(&seeds, EcgProfile::default(), SimTime::from_secs(2));
    let pulse: Vec<f64> = (0..1000)
        .map(|ms| ecg.value_at(SimTime::from_millis(ms)))
        .collect();
    g.bench_function("qrs_window", |b| {
        b.iter_batched(
            || qrs::QrsDetector::new(qrs::QrsConfig::default()),
            |mut d| d.process_window(&pulse),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let seeds = SeedTree::new(2);
    let mut g = c.benchmark_group("codecs");

    let mut cam = ImageGenerator::new(&seeds, 104, 78);
    let luma = cam.frame(0).luma();
    g.bench_function("jpeg_encode_lowres", |b| {
        b.iter(|| jpeg::encode(&luma, 104, 78, 85))
    });
    let encoded = jpeg::encode(&luma, 104, 78, 85);
    g.bench_function("jpeg_decode_lowres", |b| {
        b.iter(|| jpeg::decode(&encoded).expect("ok"))
    });
    let block = [42.0f64; 64];
    g.bench_function("idct_block", |b| b.iter(|| jpeg::idct(&block)));

    let doc = json::Json::array((0..100).map(|i| {
        json::Json::object([
            ("t", json::Json::Number(f64::from(i))),
            ("v", json::Json::Number(f64::from(i) * 0.25)),
        ])
    }));
    let text = doc.to_text();
    g.bench_function("json_serialize_100", |b| b.iter(|| doc.to_text()));
    g.bench_function("json_parse_100", |b| {
        b.iter(|| json::Json::parse(&text).expect("ok"))
    });

    let msg = coap::CoapMessage::content(7, &[1, 2], text.clone().into_bytes());
    let wire = msg.encode();
    g.bench_function("coap_encode", |b| b.iter(|| msg.encode()));
    g.bench_function("coap_decode", |b| {
        b.iter(|| coap::CoapMessage::decode(&wire).expect("ok"))
    });
    g.finish();
}

fn bench_matchers(c: &mut Criterion) {
    let seeds = SeedTree::new(3);
    let mut g = c.benchmark_group("matchers");

    let mut db = fingermatch::FingerDb::new(fingermatch::MatchConfig::default());
    for p in 0..4 {
        db.enroll(p, FingerTemplate::of_person(&seeds, p));
    }
    let mut scanner = FingerprintScanner::new(&seeds);
    let scan = scanner.scan(2);
    g.bench_function("finger_identify", |b| {
        b.iter(|| db.identify(&scan.minutiae))
    });

    let spotter = speech::KeywordSpotter::new(1000.0);
    let audio: Vec<f64> = (0..1000)
        .map(|i| 512.0 + 150.0 * (f64::from(i as u32) * 0.9).sin())
        .collect();
    g.bench_function("keyword_spot_window", |b| {
        b.iter(|| spotter.recognize(&audio))
    });

    let data: Vec<u8> = (0..12_000u32).map(|i| (i % 251) as u8).collect();
    g.bench_function("chunk_12kb", |b| {
        b.iter(|| sync::chunk(&data, &sync::ChunkConfig::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_dsp, bench_codecs, bench_matchers);
criterion_main!(benches);
