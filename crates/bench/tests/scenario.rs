//! Golden-file and determinism tests for the scenario language.
//!
//! The committed corpus under `scenarios/` is the test input: every file
//! must parse, run, and pass its own expectations, and the rendered
//! reports must be byte-identical across `--jobs 1/4/8` (the CI
//! `scenarios` job additionally `cmp`s two binary invocations). The
//! self-scenario `scenarios/suite_pair.toml` — the bench suite's own A2+A7
//! pair under every scheme — has its text, JSON and CSV reports pinned
//! byte for byte.
//!
//! To update after an intentional model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p iotse-bench --test scenario
//! ```

use std::fs;
use std::path::PathBuf;

use iotse_bench::scenario::{check_dir, corpus_files, counters, render, run_file};

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e} (run with UPDATE_GOLDEN=1)", name));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn self_scenario_reports_match_goldens() {
    let report = run_file(&repo_path("scenarios/suite_pair.toml"), 4).expect("runs");
    assert!(report.passed(), "the committed self-scenario must pass");
    let reports = [report];
    check(
        "scenario_report.txt",
        &render(&reports, "text").expect("text"),
    );
    check(
        "scenario_report.json",
        &render(&reports, "json").expect("json"),
    );
    check(
        "scenario_report.csv",
        &render(&reports, "csv").expect("csv"),
    );
}

#[test]
fn committed_corpus_passes_and_is_jobs_independent() {
    let dir = repo_path("scenarios");
    let files = corpus_files(&dir).expect("corpus listed");
    assert!(
        files.len() >= 10,
        "the committed corpus must hold at least 10 scenario files, found {}",
        files.len()
    );
    let one = check_dir(&dir, 1).expect("jobs=1 sweep");
    let c = counters(&one);
    assert_eq!(c.scenarios_run, files.len() as u64);
    assert_eq!(
        c.expectations_failed,
        0,
        "every committed scenario must pass:\n{}",
        render(&one, "text").expect("text")
    );
    // Reports — not just verdicts — must be independent of fleet width.
    for jobs in [4, 8] {
        let wide = check_dir(&dir, jobs).expect("wide sweep");
        assert_eq!(
            render(&one, "json").expect("json"),
            render(&wide, "json").expect("json"),
            "corpus report differs between jobs=1 and jobs={jobs}"
        );
    }
}

#[test]
fn corpus_covers_every_expectation_kind() {
    // The corpus is the integration surface for the grading code — all
    // four expectation kinds must stay exercised as files come and go.
    let reports = check_dir(&repo_path("scenarios"), 8).expect("sweep");
    for kind in ["qos", "energy-budget", "energy-ratio", "output-checksum"] {
        assert!(
            reports
                .iter()
                .flat_map(|r| r.checks.iter())
                .any(|c| c.name == kind),
            "no committed scenario grades a `{kind}` expectation"
        );
    }
}

#[test]
fn bad_file_errors_name_the_path_and_line() {
    let dir = std::env::temp_dir().join("iotse-scenario-bad-file-test");
    fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("bad.toml");
    fs::write(&path, "[scenario]\nname = \"x\"\nseed = what\n").expect("write");
    let err = run_file(&path, 1).expect_err("must fail");
    assert!(err.contains("bad.toml:3:"), "{err}");
    fs::remove_dir_all(&dir).expect("cleanup");
}
