//! End-to-end tests of the `bench` binary: the deterministic counters must
//! be bitwise-identical across back-to-back suite runs and across prewarm
//! parallelism, and `--check` must gate on them exactly.

use std::path::PathBuf;
use std::process::Command;

use iotse_bench::report::BenchReport;

fn out_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "iotse_bench_suite_{}_{tag}.json",
        std::process::id()
    ))
}

/// Runs the suite binary with `--quick` (same counters as the full budget,
/// smaller stopwatch loops) and parses the report it writes.
fn run_suite(tag: &str, jobs: &str) -> BenchReport {
    let path = out_path(tag);
    let status = Command::new(env!("CARGO_BIN_EXE_bench"))
        .args(["--quick", "--jobs", jobs, "--out"])
        .arg(&path)
        .status()
        .expect("bench binary launches");
    assert!(status.success(), "bench run failed");
    let text = std::fs::read_to_string(&path).expect("report written");
    let _ = std::fs::remove_file(&path);
    BenchReport::parse(&text).expect("report parses")
}

/// The four gated counter fields, keyed by case.
fn counters(r: &BenchReport) -> Vec<(String, u64, u64, u64, u64)> {
    r.entries
        .iter()
        .map(|e| (e.case_id(), e.events, e.bus_bytes, e.allocs, e.alloc_bytes))
        .collect()
}

#[test]
fn counters_are_identical_across_runs_and_prewarm_jobs() {
    let first = run_suite("first", "1");
    let second = run_suite("second", "1");
    assert_eq!(
        counters(&first),
        counters(&second),
        "back-to-back runs drifted"
    );
    let parallel = run_suite("jobs8", "8");
    assert_eq!(
        counters(&first),
        counters(&parallel),
        "prewarm parallelism changed counters"
    );
    assert!(!first.entries.is_empty());
}

#[test]
fn compute_cache_section_reports_exact_hit_rates() {
    // In the suite binary the compute_cache cases own the whole process,
    // so the from-clear hit/miss counters are exact: 2 windows x 2
    // memoizable apps miss once under the first scheme and hit under the
    // remaining four.
    let report = run_suite("cache", "1");
    let on = report
        .entry("compute_cache/5-schemes-A4+A9/on")
        .expect("cache-on case present");
    assert_eq!(on.cache_misses, 4, "one miss per (app, window)");
    assert_eq!(on.cache_hits, 16, "four reuses per (app, window)");
    let off = report
        .entry("compute_cache/5-schemes-A4+A9/off")
        .expect("cache-off case present");
    assert_eq!((off.cache_hits, off.cache_misses), (0, 0));
    assert_eq!(on.events, off.events, "caching changed simulation events");
    assert_eq!(on.bus_bytes, off.bus_bytes, "caching changed bus traffic");
}

#[test]
fn check_mode_accepts_own_output_and_rejects_drift() {
    let path = out_path("gate");
    let status = Command::new(env!("CARGO_BIN_EXE_bench"))
        .args(["--quick", "--out"])
        .arg(&path)
        .status()
        .expect("bench binary launches");
    assert!(status.success());

    // Checking against its own counters passes (wall drift is advisory).
    let status = Command::new(env!("CARGO_BIN_EXE_bench"))
        .args(["--quick", "--check"])
        .arg(&path)
        .status()
        .expect("bench binary launches");
    assert!(status.success(), "self-check must pass");

    // Corrupt one deterministic counter: the gate must fail.
    let text = std::fs::read_to_string(&path).expect("report written");
    let mut doctored = BenchReport::parse(&text).expect("report parses");
    doctored.entries[0].events += 1;
    std::fs::write(&path, doctored.to_json()).expect("rewrite baseline");
    let status = Command::new(env!("CARGO_BIN_EXE_bench"))
        .args(["--quick", "--check"])
        .arg(&path)
        .status()
        .expect("bench binary launches");
    assert!(!status.success(), "doctored baseline must fail the gate");

    // Drop a scratch-engine kernel case: the gate must refuse a baseline
    // that no longer pins the A4/A9 alloc counters.
    let mut pruned = BenchReport::parse(&text).expect("report parses");
    pruned.entries.retain(|e| e.case_id() != "kernel/A4/kernel");
    std::fs::write(&path, pruned.to_json()).expect("rewrite baseline");
    let status = Command::new(env!("CARGO_BIN_EXE_bench"))
        .args(["--quick", "--check"])
        .arg(&path)
        .status()
        .expect("bench binary launches");
    assert!(
        !status.success(),
        "baseline without kernel/A4/kernel must fail"
    );
    let _ = std::fs::remove_file(&path);
}
