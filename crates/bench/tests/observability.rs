//! Golden-file and determinism tests for the observability exports.
//!
//! The golden tests pin the exact bytes of each `inspect` format so any
//! drift — formatting, span structure, metric naming, float rendering —
//! fails loudly. The determinism tests assert the acceptance criterion
//! directly: every format is byte-identical across repeated runs and
//! across `--jobs 1/4/8`.
//!
//! To update after an intentional model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p iotse-bench --test observability
//! ```

use std::fs;
use std::path::PathBuf;

use iotse_bench::inspect::{inspect, InspectFormat, InspectRequest};
use iotse_core::{AppId, Scheme};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e} (run with UPDATE_GOLDEN=1)", name));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

/// Step counter under Batching — the paper's flagship pairing.
fn step_counter() -> InspectRequest {
    InspectRequest {
        scheme: Scheme::Batching,
        apps: vec![AppId::A2],
        windows: 2,
        seed: 42,
        jobs: 4,
        faults: Vec::new(),
    }
}

/// Keyword spotting (one on-demand read per window) keeps the full span
/// dump small enough to check in.
fn keyword_spotting() -> InspectRequest {
    InspectRequest {
        scheme: Scheme::Batching,
        apps: vec![AppId::A10],
        windows: 2,
        seed: 42,
        jobs: 4,
        faults: Vec::new(),
    }
}

#[test]
fn inspect_chrome_matches_golden() {
    check(
        "inspect_chrome.json",
        &inspect(&keyword_spotting(), InspectFormat::Chrome),
    );
}

#[test]
fn inspect_folded_matches_golden() {
    check(
        "inspect_folded.txt",
        &inspect(&step_counter(), InspectFormat::Folded),
    );
}

#[test]
fn inspect_table_matches_golden() {
    check(
        "inspect_table.txt",
        &inspect(&step_counter(), InspectFormat::Table),
    );
}

#[test]
fn inspect_metrics_matches_golden() {
    check(
        "inspect_metrics.txt",
        &inspect(&step_counter(), InspectFormat::Metrics),
    );
}

#[test]
fn inspect_timeline_matches_golden() {
    check(
        "inspect_timeline.txt",
        &inspect(&step_counter(), InspectFormat::Timeline),
    );
}

/// The acceptance criterion, asserted through the library the binary is a
/// thin wrapper over: every format, byte-identical at jobs 1, 4 and 8, and
/// across repeated runs at the same level.
#[test]
fn inspect_output_is_identical_across_jobs_and_runs() {
    for format in InspectFormat::ALL {
        let at_jobs = |jobs: usize| {
            inspect(
                &InspectRequest {
                    jobs,
                    ..step_counter()
                },
                format,
            )
        };
        let one = at_jobs(1);
        assert_eq!(one, at_jobs(4), "{} differs at --jobs 4", format.name());
        assert_eq!(one, at_jobs(8), "{} differs at --jobs 8", format.name());
        assert_eq!(one, at_jobs(1), "{} differs across runs", format.name());
        assert!(!one.is_empty(), "{} rendered empty", format.name());
    }
}

/// The folded export's integer nanojoule weights sum to the ledger total
/// within rounding, for every scheme (the exact f64 identity is asserted
/// in `iotse_bench::inspect` and `iotse-core` tests; this pins the
/// rendered bytes).
#[test]
fn folded_nanojoules_sum_to_ledger_total() {
    for scheme in [
        Scheme::Baseline,
        Scheme::Batching,
        Scheme::Com,
        Scheme::Beam,
        Scheme::Bcom,
    ] {
        let req = InspectRequest {
            scheme,
            windows: 1,
            ..step_counter()
        };
        let result = iotse_bench::inspect::run(&req);
        let folded = iotse_bench::inspect::render(&result, InspectFormat::Folded);
        let sum_nj: u64 = folded
            .lines()
            .map(|l| {
                l.rsplit(' ')
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| panic!("bad folded line: {l}"))
            })
            .sum();
        let ledger_nj = result.total_energy().as_microjoules() * 1e3;
        let drift = (sum_nj as f64 - ledger_nj).abs();
        // Each stack rounds independently to integer nJ; with well under
        // 100 stacks the total can drift by at most half that many nJ.
        assert!(
            drift <= 50.0,
            "{scheme}: folded sum {sum_nj} nJ vs ledger {ledger_nj} nJ"
        );
    }
}
