//! Golden-file tests for the robustness report and faulted inspect output.
//!
//! The demo fault storm ([`iotse_core::robustness::demo_scripts`]) runs the
//! bench workload pair (A2 + A7, two windows, seed 42) under every scheme
//! and grades the demo expectations; the text report, the CSV export, and a
//! faulted `inspect --format table` rendering are pinned byte for byte.
//! The report is built at four fleet workers so a nondeterminism
//! regression in the fault layer shows up as a golden mismatch.
//!
//! To update after an intentional model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p iotse-bench --test robustness
//! ```

use std::fs;
use std::path::PathBuf;

use iotse_bench::inspect::{inspect, InspectFormat, InspectRequest};
use iotse_core::robustness::{self, demo_expectations, demo_scripts};
use iotse_core::AppId;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e} (run with UPDATE_GOLDEN=1)", name));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

fn demo_report() -> robustness::RobustnessReport {
    robustness::evaluate(
        &|| iotse_apps::catalog::apps(&[AppId::A2, AppId::A7], 42),
        2,
        42,
        &demo_scripts(),
        &demo_expectations(),
        4,
    )
}

#[test]
fn robustness_report_text_matches_golden() {
    let report = demo_report();
    // The golden must exercise every declared fault kind and both check
    // outcomes — a report where nothing fails (or nothing fires) pins the
    // wrong thing.
    assert_eq!(report.kinds.len(), 7, "demo must cover all fault kinds");
    assert!(!report.failures().is_empty(), "no failing scheme");
    assert!(
        report.rows.iter().any(|r| r.all_passed()),
        "no passing scheme"
    );
    check("robustness_report.txt", &report.render_text());
}

#[test]
fn robustness_report_csv_matches_golden() {
    check("robustness_report.csv", &demo_report().to_csv());
}

#[test]
fn faulted_inspect_table_matches_golden() {
    let req = InspectRequest {
        windows: 2,
        faults: demo_scripts(),
        ..InspectRequest::default()
    };
    let table = inspect(&req, InspectFormat::Table);
    // The same request without faults must render differently — the faults
    // have to actually reach the instrumented run.
    let clean = inspect(
        &InspectRequest {
            windows: 2,
            ..InspectRequest::default()
        },
        InspectFormat::Table,
    );
    assert_ne!(table, clean, "faults did not alter the inspected run");
    check("inspect_faulted_table.txt", &table);
}
