//! End-to-end tests for the windowed telemetry layer: determinism of the
//! series/alert stream across schemes and `--jobs` levels, the
//! interrupt-storm acceptance scenario, offline replay of the online
//! detectors, and golden-pinned `inspect diff` tables.
//!
//! To update goldens after an intentional model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p iotse-bench --test telemetry
//! ```

use std::fs;
use std::path::PathBuf;

use iotse_bench::diff::{diff_requests, TelemetrySummary};
use iotse_bench::inspect::{inspect, run, InspectFormat, InspectRequest};
use iotse_core::{Scheme, TelemetryConfig};
use iotse_energy::attribution::Routine;
use iotse_energy::stacks::stack_series_name;
use iotse_sim::timeseries::{Alert, AlertKind, DriftDetector};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e} (run with UPDATE_GOLDEN=1)", name));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

/// The PR's acceptance scenario: the demo fault scripts (including the
/// 2 kHz interrupt storm at t=1.6s) against one scheme.
fn stormy(scheme: Scheme, jobs: usize) -> InspectRequest {
    InspectRequest {
        scheme,
        jobs,
        faults: iotse_core::robustness::demo_scripts(),
        ..InspectRequest::default()
    }
}

/// The acceptance criterion, end to end: under the demo interrupt storm
/// the CUSUM drift detector fires on the interrupt series for COM and
/// BCOM (deep-sleep schemes, where 800 spurious wakes are orders of
/// magnitude over baseline) and stays quiet for BEAM (the already-active
/// CPU absorbs the storm under the 1 mJ floor).
#[test]
fn storm_trips_cusum_on_com_and_bcom_but_not_beam() {
    for scheme in [Scheme::Com, Scheme::Bcom] {
        let result = run(&stormy(scheme, 1));
        let tel = result.telemetry.as_ref().expect("telemetry on");
        assert!(
            tel.routine_drifted(Routine::Interrupt),
            "{scheme}: storm did not trip the interrupt CUSUM: {:?}",
            tel.alerts
        );
    }
    let beam = run(&stormy(Scheme::Beam, 1));
    let tel = beam.telemetry.as_ref().expect("telemetry on");
    assert!(
        tel.alerts.is_empty(),
        "BEAM must absorb the storm silently: {:?}",
        tel.alerts
    );
}

/// Series and alert streams are byte-identical across repeated runs and
/// `--jobs 1/4/8`, for every scheme, under the storm scenario (the
/// fair-weather loop lives in `tests/observability.rs`).
#[test]
fn stormy_series_and_alerts_are_jobs_invariant_for_every_scheme() {
    for scheme in Scheme::ALL {
        for format in [
            InspectFormat::Series,
            InspectFormat::Alerts,
            InspectFormat::Stacks,
        ] {
            let one = inspect(&stormy(scheme, 1), format);
            assert_eq!(
                one,
                inspect(&stormy(scheme, 4), format),
                "{scheme}/{} differs at --jobs 4",
                format.name()
            );
            assert_eq!(
                one,
                inspect(&stormy(scheme, 8), format),
                "{scheme}/{} differs at --jobs 8",
                format.name()
            );
            assert_eq!(
                one,
                inspect(&stormy(scheme, 1), format),
                "{scheme}/{} differs across runs",
                format.name()
            );
        }
    }
}

/// Detector state is a pure fold over the recorded series: replaying each
/// routine's stored series through a fresh detector with the same config
/// reproduces the run's drift alert stream exactly — timestamps, windows,
/// and CUSUM payloads included.
#[test]
fn offline_replay_reproduces_the_online_alert_stream() {
    for scheme in Scheme::ALL {
        let result = run(&stormy(scheme, 1));
        let tel = result.telemetry.as_ref().expect("telemetry on");
        let cfg = TelemetryConfig::default();
        let mut replayed: Vec<Alert> = Vec::new();
        // Evaluation order is window-major, Routine::ALL within a window.
        let mut detectors: Vec<DriftDetector> = Routine::ALL
            .iter()
            .map(|_| DriftDetector::new(cfg.detector))
            .collect();
        for w in 0..tel.stacks.recorded() {
            for (i, &routine) in Routine::ALL.iter().enumerate() {
                let series = tel.stacks.series(routine);
                let (at, value) = series.points()[w as usize];
                if let Some(drift) = detectors[i].update(value) {
                    replayed.push(Alert {
                        at,
                        window: w,
                        series: stack_series_name(routine),
                        kind: AlertKind::Drift(drift),
                    });
                }
            }
        }
        assert_eq!(
            replayed, tel.alerts,
            "{scheme}: offline replay diverged from the online stream"
        );
    }
}

/// Property harness over generated seeds: for arbitrary runs, folding a
/// detector over a prefix of the series then continuing equals folding
/// from scratch — no hidden state outside the fold.
#[test]
fn prop_detector_fold_has_no_hidden_state() {
    for case in 0..8u64 {
        let req = InspectRequest {
            seed: 1000 + case * 7,
            scheme: Scheme::ALL[(case % 5) as usize],
            ..InspectRequest::default()
        };
        let result = run(&req);
        let tel = result.telemetry.as_ref().expect("telemetry on");
        for &routine in &Routine::ALL {
            let points = tel.stacks.series(routine).points();
            let cfg = TelemetryConfig::default().detector;
            let mut whole = DriftDetector::new(cfg);
            let mut split = DriftDetector::new(cfg);
            let mid = points.len() / 2;
            let fired_whole: Vec<bool> = points
                .iter()
                .map(|&(_, v)| whole.update(v).is_some())
                .collect();
            let mut fired_split: Vec<bool> = points[..mid]
                .iter()
                .map(|&(_, v)| split.update(v).is_some())
                .collect();
            fired_split.extend(
                points[mid..]
                    .iter()
                    .map(|&(_, v)| split.update(v).is_some()),
            );
            assert_eq!(fired_whole, fired_split, "seed {} {routine}", req.seed);
        }
    }
}

/// A run diffed against itself reports zero deltas and `ok` verdicts on
/// every routine — pinned as a golden so the table's exact shape (column
/// layout, ranking, footer) cannot drift silently.
#[test]
fn self_diff_golden_reports_zero_deltas() {
    let req = InspectRequest {
        scheme: Scheme::Com,
        ..InspectRequest::default()
    };
    let table = diff_requests(&req, &req);
    for line in table.lines().skip(2).take(5) {
        assert!(line.contains("+0.000"), "nonzero delta in: {line}");
    }
    check("inspect_diff_self.txt", &table);
}

/// The acceptance diff — COM clean vs COM under the demo storm — pinned
/// as a golden: the interrupt row must carry a DRIFT(vs) verdict.
#[test]
fn storm_diff_golden_flags_interrupt_drift() {
    let base = InspectRequest {
        scheme: Scheme::Com,
        ..InspectRequest::default()
    };
    let table = diff_requests(&base, &stormy(Scheme::Com, 1));
    let interrupt_row = table
        .lines()
        .find(|l| l.starts_with("interrupt"))
        .expect("interrupt row");
    assert!(interrupt_row.ends_with("DRIFT(vs)"), "{interrupt_row}");
    check("inspect_diff_storm.txt", &table);
}

/// A summary survives the `--save`/`--baseline` JSON round trip bitwise,
/// so a file-based diff equals a live one.
#[test]
fn saved_summary_diffs_identically_to_live() {
    let result = run(&stormy(Scheme::Com, 1));
    let live = TelemetrySummary::from_result(&result).expect("telemetry on");
    let reloaded = TelemetrySummary::parse(&live.to_json()).expect("round trip");
    assert_eq!(reloaded, live);
}

/// Telescoping invariant, end to end through the executor: each routine's
/// series folds to the run's ledger total bitwise, windows partition the
/// run, and the workload watchdog counters are exact.
#[test]
fn stack_series_fold_to_ledger_totals_bitwise() {
    for scheme in Scheme::ALL {
        let result = run(&InspectRequest {
            scheme,
            ..InspectRequest::default()
        });
        let tel = result.telemetry.as_ref().expect("telemetry on");
        for &routine in &Routine::ALL {
            assert_eq!(
                tel.stacks.series(routine).fold_sum(),
                result.ledger.routine_total(routine).as_microjoules(),
                "{scheme} {routine}: windowed fold must reproduce the ledger"
            );
        }
        assert_eq!(tel.stacks.recorded(), 4, "{scheme}: all windows recorded");
    }
}
