//! Golden-file tests for the CSV exports.
//!
//! Each test renders a figure at the quick configuration (seed 42, two
//! windows) and compares the CSV against a checked-in golden file,
//! byte for byte. The fleet runs at four worker threads precisely so a
//! nondeterministic regression (result reordering, racy signal cache,
//! seed leakage between workers) shows up as a golden mismatch.
//!
//! To update after an intentional model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p iotse-bench --test golden
//! ```

use std::fs;
use std::path::PathBuf;

use iotse_bench::config::ExperimentConfig;
use iotse_bench::csv;
use iotse_bench::figures::{fig01, fig09, tables};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e} (run with UPDATE_GOLDEN=1)", name));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

fn cfg() -> ExperimentConfig {
    ExperimentConfig::quick().with_jobs(4)
}

#[test]
fn fig01_csv_matches_golden() {
    check("fig01.csv", &csv::fig01_csv(&fig01::run(&cfg())));
}

#[test]
fn fig09_csv_matches_golden() {
    check("fig09.csv", &csv::fig09_csv(&fig09::run(&cfg())));
}

#[test]
fn table2_csv_matches_golden() {
    check("table2.csv", &csv::table2_csv(&tables::table2(&cfg())));
}
