//! # iotse-bench — the figure/table reproduction harness
//!
//! One module per table and figure of *"Understanding Energy Efficiency in
//! IoT App Executions"* (ICDCS 2019). Each returns a typed result that the
//! `figures` binary renders, the Criterion benches time, and the tests
//! compare against the paper's numbers.
//!
//! # Examples
//!
//! ```
//! use iotse_bench::config::ExperimentConfig;
//! use iotse_bench::figures::fig04;
//!
//! let split = fig04::run(&ExperimentConfig::quick());
//! assert!((split.cpu_share - 0.77).abs() < 0.02); // the paper's 77%
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod csv;
pub mod diff;
pub mod export;
pub mod figures;
pub mod inspect;
pub mod report;
pub mod scenario;
pub mod stopwatch;
pub mod suite;
pub mod sweeps;

pub use config::ExperimentConfig;
