//! The bench suite's stable report schema (`BENCH_5.json`).
//!
//! One [`BenchEntry`] per measured case: `(section, workload, scheme)`
//! identifies the case; `wall_ns_*` carry the stopwatch timing; the fifteen
//! **deterministic cost counters** — `events`, `bus_bytes`, `allocs`,
//! `alloc_bytes`, `cache_hits`, `cache_misses`, `faults_injected`,
//! `samples_dropped`, `bytes_corrupted`, `alerts_fired`, `series_points`,
//! `detector_evals`, `scenarios_run`, `expectations_evaluated`,
//! `expectations_failed` — are bitwise-reproducible
//! (simulation events and payload bytes are pure functions of the scenario;
//! heap counts come from the `bench` binary's counting allocator over a
//! single-threaded run; cache counters read the compute-cache statistics
//! after a from-clear run; fault counters replay the seeded fault plan;
//! telemetry counters fold the recorded series and alert stream; scenario
//! counters grade the committed `scenarios/` corpus)
//! and are therefore CI-gateable with **zero** tolerance, while wall time
//! is only advisory (shared runners make it noisy).
//!
//! Schema history: v1 (`BENCH_4.json`) carried the first four counters;
//! v2 added `cache_hits`/`cache_misses`; v3 adds the three fault counters
//! with the `robustness` section; v4 adds the three telemetry counters
//! with the `telemetry` section; v5 adds the three scenario-corpus
//! counters with the `scenarios` section. Bumps are compatible — counters
//! missing from an older file parse as 0.
//!
//! Serialization is hand-rolled JSON over the in-tree [`Json`] kernel — the
//! same std-only discipline as the Chrome-trace and Prometheus exporters —
//! so the output is deterministic byte-for-byte: object keys sort
//! alphabetically, entries keep suite order.

use iotse_apps::kernels::json::Json;

/// Version tag written into every report; bump on schema changes.
pub const SCHEMA_VERSION: u64 = 5;

/// One measured case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    /// Suite section: `executor`, `kernel`, `fleet` or `overhead`.
    pub section: String,
    /// Workload label (app list or kernel name).
    pub workload: String,
    /// Scheme label (`baseline`…, `jobs-4`, `kernel`, `instrumented`).
    pub scheme: String,
    /// Median wall time per iteration, nanoseconds. Advisory only.
    pub wall_ns_median: u64,
    /// Fastest iteration, nanoseconds. Advisory only.
    pub wall_ns_min: u64,
    /// Slowest iteration, nanoseconds. Advisory only.
    pub wall_ns_max: u64,
    /// Timed iterations behind the median.
    pub iters: u64,
    /// Simulation events executed in one run of the case. Deterministic.
    pub events: u64,
    /// MCU→CPU payload bytes moved in one run of the case. Deterministic.
    pub bus_bytes: u64,
    /// Heap allocations in one steady-state run. Deterministic (0 when the
    /// case runs on worker threads, where counting would race).
    pub allocs: u64,
    /// Heap bytes requested in one steady-state run. Deterministic (0 when
    /// not measured; see [`BenchEntry::allocs`]).
    pub alloc_bytes: u64,
    /// Compute-cache hits during one from-clear run. Deterministic (0 for
    /// sections that do not reset the cache; only `compute_cache` cases
    /// measure it). Absent in schema-1 files, parsed as 0.
    pub cache_hits: u64,
    /// Compute-cache misses during one from-clear run. Deterministic; see
    /// [`BenchEntry::cache_hits`].
    pub cache_misses: u64,
    /// Fault firings during one run (0 outside the `robustness` section).
    /// Deterministic: the fault plan replays from seeded streams. Absent
    /// in pre-v3 files, parsed as 0.
    pub faults_injected: u64,
    /// Sampling events lost to dropout in one run. Deterministic; see
    /// [`BenchEntry::faults_injected`].
    pub samples_dropped: u64,
    /// Payload bytes corrupted on the wire in one run. Deterministic; see
    /// [`BenchEntry::faults_injected`].
    pub bytes_corrupted: u64,
    /// Telemetry alerts fired in one run (0 outside the `telemetry`
    /// section). Deterministic: detectors are pure folds over the series.
    /// Absent in pre-v4 files, parsed as 0.
    pub alerts_fired: u64,
    /// Time-series points recorded in one run (energy stacks + app QoS
    /// series). Deterministic; see [`BenchEntry::alerts_fired`].
    pub series_points: u64,
    /// Detector/watchdog update calls in one run. Deterministic; see
    /// [`BenchEntry::alerts_fired`].
    pub detector_evals: u64,
    /// Scenario files graded in one run (0 outside the `scenarios`
    /// section). Deterministic: the committed corpus runs on a jobs-1
    /// fleet. Absent in pre-v5 files, parsed as 0.
    pub scenarios_run: u64,
    /// Expectation rows graded across the corpus in one run.
    /// Deterministic; see [`BenchEntry::scenarios_run`].
    pub expectations_evaluated: u64,
    /// Expectation rows that failed (0 for a healthy committed corpus —
    /// the gate pins it at 0). Deterministic; see
    /// [`BenchEntry::scenarios_run`].
    pub expectations_failed: u64,
}

impl BenchEntry {
    /// The case identity used for baseline matching.
    #[must_use]
    pub fn case_id(&self) -> String {
        format!("{}/{}/{}", self.section, self.workload, self.scheme)
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("section", Json::String(self.section.clone())),
            ("workload", Json::String(self.workload.clone())),
            ("scheme", Json::String(self.scheme.clone())),
            ("wall_ns_median", from_u64(self.wall_ns_median)),
            ("wall_ns_min", from_u64(self.wall_ns_min)),
            ("wall_ns_max", from_u64(self.wall_ns_max)),
            ("iters", from_u64(self.iters)),
            ("events", from_u64(self.events)),
            ("bus_bytes", from_u64(self.bus_bytes)),
            ("allocs", from_u64(self.allocs)),
            ("alloc_bytes", from_u64(self.alloc_bytes)),
            ("cache_hits", from_u64(self.cache_hits)),
            ("cache_misses", from_u64(self.cache_misses)),
            ("faults_injected", from_u64(self.faults_injected)),
            ("samples_dropped", from_u64(self.samples_dropped)),
            ("bytes_corrupted", from_u64(self.bytes_corrupted)),
            ("alerts_fired", from_u64(self.alerts_fired)),
            ("series_points", from_u64(self.series_points)),
            ("detector_evals", from_u64(self.detector_evals)),
            ("scenarios_run", from_u64(self.scenarios_run)),
            (
                "expectations_evaluated",
                from_u64(self.expectations_evaluated),
            ),
            ("expectations_failed", from_u64(self.expectations_failed)),
        ])
    }
}

/// A full suite report: schema tag plus entries in suite order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BenchReport {
    /// The schema version the file was written with.
    pub schema: u64,
    /// One entry per case, in suite order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// An empty report at the current schema version.
    #[must_use]
    pub fn new() -> Self {
        BenchReport {
            schema: SCHEMA_VERSION,
            entries: Vec::new(),
        }
    }

    /// The entry with `case_id`, if present.
    #[must_use]
    pub fn entry(&self, case_id: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.case_id() == case_id)
    }

    /// Serializes the report to deterministic JSON: one compact line per
    /// entry (diff-friendly for the committed baseline), trailing newline
    /// included so the file is POSIX-clean.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut text = String::new();
        text.push_str("{\n");
        text.push_str(&format!("  \"schema\": {},\n", self.schema));
        text.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            text.push_str("    ");
            text.push_str(&e.to_json().to_text());
            text.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        text.push_str("  ]\n}\n");
        text
    }

    /// Parses a report previously written by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, a missing field, or a counter
    /// that does not fit `u64`.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let doc = Json::parse(text).map_err(|e| format!("bench report: {e:?}"))?;
        let schema = field_u64(&doc, "schema")?;
        let entries = doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("bench report: missing entries array")?
            .iter()
            .map(parse_entry)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport { schema, entries })
    }

    /// Exact-match diff of the fifteen deterministic counters against
    /// `baseline`: any missing case, extra case, or counter mismatch
    /// produces one line. Empty means the gate passes.
    #[must_use]
    pub fn diff_counters(&self, baseline: &BenchReport) -> Vec<String> {
        let mut diffs = Vec::new();
        for base in &baseline.entries {
            let id = base.case_id();
            match self.entry(&id) {
                None => diffs.push(format!("{id}: case missing from current report")),
                Some(cur) => {
                    for (field, b, c) in [
                        ("events", base.events, cur.events),
                        ("bus_bytes", base.bus_bytes, cur.bus_bytes),
                        ("allocs", base.allocs, cur.allocs),
                        ("alloc_bytes", base.alloc_bytes, cur.alloc_bytes),
                        ("cache_hits", base.cache_hits, cur.cache_hits),
                        ("cache_misses", base.cache_misses, cur.cache_misses),
                        ("faults_injected", base.faults_injected, cur.faults_injected),
                        ("samples_dropped", base.samples_dropped, cur.samples_dropped),
                        ("bytes_corrupted", base.bytes_corrupted, cur.bytes_corrupted),
                        ("alerts_fired", base.alerts_fired, cur.alerts_fired),
                        ("series_points", base.series_points, cur.series_points),
                        ("detector_evals", base.detector_evals, cur.detector_evals),
                        ("scenarios_run", base.scenarios_run, cur.scenarios_run),
                        (
                            "expectations_evaluated",
                            base.expectations_evaluated,
                            cur.expectations_evaluated,
                        ),
                        (
                            "expectations_failed",
                            base.expectations_failed,
                            cur.expectations_failed,
                        ),
                    ] {
                        if b != c {
                            diffs.push(format!("{id}: {field} {b} -> {c}"));
                        }
                    }
                }
            }
        }
        for cur in &self.entries {
            if baseline.entry(&cur.case_id()).is_none() {
                diffs.push(format!("{}: case missing from baseline", cur.case_id()));
            }
        }
        diffs
    }

    /// Advisory wall-time comparison: one line per case whose median moved
    /// by more than `tolerance` (0.3 = ±30%) relative to `baseline`. Cases
    /// absent from either side are skipped — [`BenchReport::diff_counters`]
    /// already reports those.
    #[must_use]
    pub fn wall_advisories(&self, baseline: &BenchReport, tolerance: f64) -> Vec<String> {
        let mut warnings = Vec::new();
        for base in &baseline.entries {
            let Some(cur) = self.entry(&base.case_id()) else {
                continue;
            };
            if base.wall_ns_median == 0 {
                continue;
            }
            let ratio = to_f64(cur.wall_ns_median) / to_f64(base.wall_ns_median);
            if (ratio - 1.0).abs() > tolerance {
                warnings.push(format!(
                    "{}: wall median {} ns -> {} ns ({:+.1}%)",
                    base.case_id(),
                    base.wall_ns_median,
                    cur.wall_ns_median,
                    (ratio - 1.0) * 100.0
                ));
            }
        }
        warnings
    }
}

/// `u64` → JSON number. Counters and nanosecond medians stay far below
/// 2^53, where `f64` is exact; this asserts it rather than silently
/// rounding.
fn from_u64(v: u64) -> Json {
    assert!(v < (1 << 53), "bench counter {v} exceeds f64 exactness");
    Json::Number(to_f64(v))
}

#[allow(clippy::cast_precision_loss)] // lint: guarded by the 2^53 assert above
fn to_f64(v: u64) -> f64 {
    v as f64
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    let x = doc
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("bench report: missing numeric field '{key}'"))?;
    if x < 0.0 || x.fract() != 0.0 || x >= (1u64 << 53) as f64 {
        return Err(format!("bench report: field '{key}' = {x} is not a u64"));
    }
    // lint: the range/fract checks above make the cast exact
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(x as u64)
}

/// Like [`field_u64`], but a missing field reads as 0 — the compatibility
/// rule for counters added after schema 1.
fn field_u64_or_zero(doc: &Json, key: &str) -> Result<u64, String> {
    if doc.get(key).is_none() {
        return Ok(0);
    }
    field_u64(doc, key)
}

fn field_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("bench report: missing string field '{key}'"))
}

fn parse_entry(doc: &Json) -> Result<BenchEntry, String> {
    Ok(BenchEntry {
        section: field_str(doc, "section")?,
        workload: field_str(doc, "workload")?,
        scheme: field_str(doc, "scheme")?,
        wall_ns_median: field_u64(doc, "wall_ns_median")?,
        wall_ns_min: field_u64(doc, "wall_ns_min")?,
        wall_ns_max: field_u64(doc, "wall_ns_max")?,
        iters: field_u64(doc, "iters")?,
        events: field_u64(doc, "events")?,
        bus_bytes: field_u64(doc, "bus_bytes")?,
        allocs: field_u64(doc, "allocs")?,
        alloc_bytes: field_u64(doc, "alloc_bytes")?,
        cache_hits: field_u64_or_zero(doc, "cache_hits")?,
        cache_misses: field_u64_or_zero(doc, "cache_misses")?,
        faults_injected: field_u64_or_zero(doc, "faults_injected")?,
        samples_dropped: field_u64_or_zero(doc, "samples_dropped")?,
        bytes_corrupted: field_u64_or_zero(doc, "bytes_corrupted")?,
        alerts_fired: field_u64_or_zero(doc, "alerts_fired")?,
        series_points: field_u64_or_zero(doc, "series_points")?,
        detector_evals: field_u64_or_zero(doc, "detector_evals")?,
        scenarios_run: field_u64_or_zero(doc, "scenarios_run")?,
        expectations_evaluated: field_u64_or_zero(doc, "expectations_evaluated")?,
        expectations_failed: field_u64_or_zero(doc, "expectations_failed")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(section: &str, scheme: &str, events: u64) -> BenchEntry {
        BenchEntry {
            section: section.into(),
            workload: "A2".into(),
            scheme: scheme.into(),
            wall_ns_median: 1_000,
            wall_ns_min: 900,
            wall_ns_max: 1_500,
            iters: 10,
            events,
            bus_bytes: 2_400,
            allocs: 37,
            alloc_bytes: 8_192,
            cache_hits: 5,
            cache_misses: 3,
            faults_injected: 17,
            samples_dropped: 4,
            bytes_corrupted: 96,
            alerts_fired: 2,
            series_points: 14,
            detector_evals: 12,
            scenarios_run: 11,
            expectations_evaluated: 27,
            expectations_failed: 0,
        }
    }

    fn report() -> BenchReport {
        BenchReport {
            schema: SCHEMA_VERSION,
            entries: vec![
                entry("executor", "baseline", 400),
                entry("kernel", "kernel", 0),
            ],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = report();
        let text = r.to_json();
        let back = BenchReport::parse(&text).expect("parses");
        assert_eq!(back, r);
        // Serialization is deterministic.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn schema_1_files_parse_with_zero_cache_counters() {
        // A v1 baseline has no cache_hits/cache_misses keys; both default
        // to 0 so old reports stay diffable against new builds.
        let v1 = r#"{"schema": 1, "entries": [
            {"section":"kernel","workload":"A4","scheme":"kernel",
             "wall_ns_median":10,"wall_ns_min":9,"wall_ns_max":11,"iters":3,
             "events":0,"bus_bytes":0,"allocs":42,"alloc_bytes":1024}
        ]}"#;
        let r = BenchReport::parse(v1).expect("v1 parses");
        assert_eq!(r.schema, 1);
        assert_eq!(r.entries[0].cache_hits, 0);
        assert_eq!(r.entries[0].cache_misses, 0);
    }

    #[test]
    fn pre_v3_files_parse_with_zero_fault_counters() {
        // A v2 baseline predates the robustness section; all three fault
        // counters default to 0 so it stays diffable against v3 builds.
        let v2 = r#"{"schema": 2, "entries": [
            {"section":"executor","workload":"A2+A7","scheme":"baseline",
             "wall_ns_median":10,"wall_ns_min":9,"wall_ns_max":11,"iters":3,
             "events":4000,"bus_bytes":48000,"allocs":0,"alloc_bytes":0,
             "cache_hits":0,"cache_misses":0}
        ]}"#;
        let r = BenchReport::parse(v2).expect("v2 parses");
        assert_eq!(r.schema, 2);
        assert_eq!(r.entries[0].faults_injected, 0);
        assert_eq!(r.entries[0].samples_dropped, 0);
        assert_eq!(r.entries[0].bytes_corrupted, 0);
    }

    #[test]
    fn pre_v4_files_parse_with_zero_telemetry_counters() {
        // A v3 baseline predates the telemetry section; all three telemetry
        // counters default to 0 so it stays diffable against v4 builds.
        let v3 = r#"{"schema": 3, "entries": [
            {"section":"robustness","workload":"A2+A7@demo-faults","scheme":"com",
             "wall_ns_median":10,"wall_ns_min":9,"wall_ns_max":11,"iters":3,
             "events":4000,"bus_bytes":48000,"allocs":0,"alloc_bytes":0,
             "cache_hits":0,"cache_misses":0,
             "faults_injected":17,"samples_dropped":4,"bytes_corrupted":96}
        ]}"#;
        let r = BenchReport::parse(v3).expect("v3 parses");
        assert_eq!(r.schema, 3);
        assert_eq!(r.entries[0].alerts_fired, 0);
        assert_eq!(r.entries[0].series_points, 0);
        assert_eq!(r.entries[0].detector_evals, 0);
    }

    #[test]
    fn pre_v5_files_parse_with_zero_scenario_counters() {
        // A v4 baseline predates the scenarios section; all three scenario
        // counters default to 0 so it stays diffable against v5 builds.
        let v4 = r#"{"schema": 4, "entries": [
            {"section":"telemetry","workload":"A2+A7@demo-faults","scheme":"instrumented",
             "wall_ns_median":10,"wall_ns_min":9,"wall_ns_max":11,"iters":3,
             "events":4000,"bus_bytes":48000,"allocs":0,"alloc_bytes":0,
             "cache_hits":0,"cache_misses":0,
             "faults_injected":17,"samples_dropped":4,"bytes_corrupted":96,
             "alerts_fired":2,"series_points":14,"detector_evals":12}
        ]}"#;
        let r = BenchReport::parse(v4).expect("v4 parses");
        assert_eq!(r.schema, 4);
        assert_eq!(r.entries[0].scenarios_run, 0);
        assert_eq!(r.entries[0].expectations_evaluated, 0);
        assert_eq!(r.entries[0].expectations_failed, 0);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse("{}").is_err());
        assert!(BenchReport::parse(r#"{"schema": 1}"#).is_err());
        assert!(BenchReport::parse(r#"{"schema": 1.5, "entries": []}"#).is_err());
        assert!(BenchReport::parse(r#"{"schema": -1, "entries": []}"#).is_err());
    }

    #[test]
    fn counter_diff_is_exact_and_bidirectional() {
        let base = report();
        assert!(base.diff_counters(&base).is_empty(), "self-diff is clean");

        let mut moved = report();
        moved.entries[0].events += 1;
        moved.entries[1].alloc_bytes = 0;
        moved.entries[1].cache_hits = 0;
        moved.entries[1].faults_injected = 18;
        let diffs = moved.diff_counters(&base);
        assert_eq!(diffs.len(), 4, "{diffs:?}");
        assert!(diffs[0].contains("events 400 -> 401"));
        assert!(diffs[1].contains("alloc_bytes 8192 -> 0"));
        assert!(diffs[2].contains("cache_hits 5 -> 0"));
        assert!(diffs[3].contains("faults_injected 17 -> 18"));

        // Wall-time drift alone does NOT trip the counter gate.
        let mut slow = report();
        slow.entries[0].wall_ns_median *= 10;
        assert!(slow.diff_counters(&base).is_empty());

        // Missing and extra cases are both reported.
        let mut shrunk = report();
        shrunk.entries.pop();
        assert_eq!(shrunk.diff_counters(&base).len(), 1);
        assert_eq!(base.diff_counters(&shrunk).len(), 1);
    }

    #[test]
    fn wall_advisories_respect_tolerance() {
        let base = report();
        let mut cur = report();
        cur.entries[0].wall_ns_median = 1_250; // +25%: inside ±30%
        assert!(cur.wall_advisories(&base, 0.3).is_empty());
        cur.entries[0].wall_ns_median = 1_400; // +40%: outside
        let w = cur.wall_advisories(&base, 0.3);
        assert_eq!(w.len(), 1, "{w:?}");
        assert!(w[0].contains("+40.0%"), "{w:?}");
    }
}
