//! A dependency-free micro-benchmark harness.
//!
//! The workspace is `std`-only (the container has no registry access), so
//! the `benches/` targets time themselves with [`std::time::Instant`]
//! instead of Criterion: warm up, run until a time budget or iteration cap
//! is hit, and report the median — robust enough to spot hot-path
//! regressions without statistical machinery.

use std::time::{Duration, Instant};

/// How long one benchmark is allowed to sample for.
const BUDGET: Duration = Duration::from_millis(300);
/// Minimum and maximum sample counts.
const MIN_ITERS: usize = 10;
const MAX_ITERS: usize = 10_000;

/// Times `f` and prints `group/name: median … (n=…)`.
pub fn bench<T>(group: &str, name: &str, mut f: impl FnMut() -> T) {
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let mut times = Vec::new();
    let start = Instant::now();
    while (start.elapsed() < BUDGET || times.len() < MIN_ITERS) && times.len() < MAX_ITERS {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!(
        "{group}/{name}: median {median:?} (n={}, total {:?})",
        times.len(),
        start.elapsed()
    );
}
