//! A dependency-free micro-benchmark harness.
//!
//! The workspace is `std`-only (the container has no registry access), so
//! the `benches/` targets and the `bench` binary time themselves with
//! [`std::time::Instant`] instead of Criterion: warm up, run until a time
//! budget or iteration cap is hit, and report the **median** with the
//! min/max spread — the median is robust to the scheduling outliers shared
//! CI runners produce, which a mean would smear into every number.
//!
//! This module is the only non-test place in the workspace allowed to touch
//! the wall clock (enforced by `iotse-lint`'s IOTSE-W01 rule); everything
//! else observes time through the simulated clock.

use std::time::{Duration, Instant};

/// How long one benchmark is allowed to sample for by default.
pub const DEFAULT_BUDGET: Duration = Duration::from_millis(300);
/// Default minimum sample count.
pub const DEFAULT_MIN_ITERS: usize = 10;
/// Default maximum sample count.
pub const DEFAULT_MAX_ITERS: usize = 10_000;

/// The timing summary of one benchmarked closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Median-of-k wall time per iteration.
    pub median: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Slowest observed iteration.
    pub max: Duration,
    /// Number of timed iterations.
    pub n: usize,
    /// Total wall time spent sampling (including warmup).
    pub total: Duration,
}

/// Sampling limits for [`measure_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleBudget {
    /// Wall-time budget for the sampling loop.
    pub budget: Duration,
    /// Sample at least this many iterations even past the budget.
    pub min_iters: usize,
    /// Never sample more than this many iterations.
    pub max_iters: usize,
}

impl Default for SampleBudget {
    fn default() -> Self {
        SampleBudget {
            budget: DEFAULT_BUDGET,
            min_iters: DEFAULT_MIN_ITERS,
            max_iters: DEFAULT_MAX_ITERS,
        }
    }
}

impl SampleBudget {
    /// A short budget for smoke runs (`bench --quick` and the test suite):
    /// the deterministic counters are identical either way, only the wall
    /// numbers get noisier.
    #[must_use]
    pub fn quick() -> Self {
        SampleBudget {
            budget: Duration::from_millis(20),
            min_iters: 3,
            max_iters: 100,
        }
    }
}

/// The median of a sample set: the middle element for odd counts, the mean
/// of the two middle elements for even counts. `samples` need not be
/// sorted; an empty slice yields [`Duration::ZERO`].
#[must_use]
pub fn median(samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    }
}

/// Times `f` under `limits`: 3 warmup calls, then sample until the budget
/// or iteration caps are hit.
pub fn measure_with<T>(limits: SampleBudget, mut f: impl FnMut() -> T) -> Measurement {
    let start = Instant::now();
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let mut times = Vec::new();
    let sampling = Instant::now();
    while (sampling.elapsed() < limits.budget || times.len() < limits.min_iters)
        && times.len() < limits.max_iters
    {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    Measurement {
        median: median(&times),
        min: times.iter().copied().min().unwrap_or(Duration::ZERO),
        max: times.iter().copied().max().unwrap_or(Duration::ZERO),
        n: times.len(),
        total: start.elapsed(),
    }
}

/// Times `f` with the default budget.
pub fn measure<T>(f: impl FnMut() -> T) -> Measurement {
    measure_with(SampleBudget::default(), f)
}

/// Times `f` and prints `group/name: median … (min …, max …, n=…)`.
pub fn bench<T>(group: &str, name: &str, f: impl FnMut() -> T) {
    let m = measure(f);
    println!(
        "{group}/{name}: median {:?} (min {:?}, max {:?}, n={}, total {:?})",
        m.median, m.min, m.max, m.n, m.total
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn median_math_is_pinned() {
        // Odd count: the middle element.
        assert_eq!(median(&[ms(5), ms(1), ms(9)]), ms(5));
        // Even count: mean of the two middle elements.
        assert_eq!(median(&[ms(1), ms(3), ms(5), ms(100)]), ms(4));
        // Order independence.
        assert_eq!(median(&[ms(100), ms(5), ms(3), ms(1)]), ms(4));
        // Degenerate cases.
        assert_eq!(median(&[]), Duration::ZERO);
        assert_eq!(median(&[ms(7)]), ms(7));
        // A single outlier cannot drag the median (it would drag a mean).
        assert_eq!(median(&[ms(2), ms(2), ms(2), ms(2), ms(10_000)]), ms(2));
    }

    #[test]
    fn measure_respects_iteration_caps() {
        let limits = SampleBudget {
            budget: Duration::from_millis(5),
            min_iters: 4,
            max_iters: 6,
        };
        let mut calls = 0u32;
        let m = measure_with(limits, || calls += 1);
        assert!(m.n >= 4 && m.n <= 6, "n={}", m.n);
        assert_eq!(calls as usize, m.n + 3, "3 warmup calls plus samples");
        assert!(m.min <= m.median && m.median <= m.max);
    }
}
