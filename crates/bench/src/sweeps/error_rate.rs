//! Failure-injection sweep: Task-I availability errors.
//!
//! §II-B allows a sensor's availability check to fail ("the MCU stops
//! reading and throws an error message"). This sweep injects failures at
//! increasing rates and measures both the energy overhead of the retries
//! and whether the step counter still answers correctly — robustness the
//! paper assumes but never tests.

use std::fmt;

use iotse_core::{AppId, AppOutput, Scenario, Scheme};
use iotse_sensors::world::WorldConfig;

use crate::config::ExperimentConfig;

/// Error rates swept.
pub const RATES: [f64; 4] = [0.0, 0.05, 0.15, 0.30];

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorPoint {
    /// Injected Task-I failure probability.
    pub rate: f64,
    /// Sensor read attempts (including retries).
    pub reads: u64,
    /// Total energy, mJ.
    pub energy_mj: f64,
    /// Steps the kernel reported over the run.
    pub steps: u32,
    /// Ground-truth steps over the run.
    pub true_steps: u32,
}

/// The sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorSweep {
    /// One point per rate.
    pub points: Vec<ErrorPoint>,
}

/// Runs the sweep on the step counter under Batching.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> ErrorSweep {
    // One scenario per error rate, all run as one fleet.
    let scenarios = RATES
        .iter()
        .map(|&rate| {
            let world = WorldConfig {
                sensor_error_rate: rate,
                ..WorldConfig::default()
            };
            Scenario::new(
                Scheme::Batching,
                iotse_apps::catalog::apps(&[AppId::A2], cfg.seed),
            )
            .windows(cfg.windows)
            .seed(cfg.seed)
            .world(world)
        })
        .collect();
    let points = RATES
        .iter()
        .zip(cfg.run_fleet(scenarios))
        .map(|(&rate, r)| {
            let steps = r
                .app(AppId::A2)
                .expect("ran")
                .windows
                .iter()
                .map(|w| match w.output {
                    AppOutput::Steps(n) => n,
                    _ => 0,
                })
                .sum();
            ErrorPoint {
                rate,
                reads: r.sensor_reads,
                energy_mj: r.total_energy().as_millijoules(),
                steps,
                true_steps: 2 * cfg.windows, // default 2 Hz walker
            }
        })
        .collect();
    ErrorSweep { points }
}

impl fmt::Display for ErrorSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Failure injection: Task-I availability errors (A2, Batching)"
        )?;
        writeln!(
            f,
            "  rate    reads (incl. retries)   energy (mJ)   steps / truth"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "  {:4.0}%   {:>8}                {:10.1}   {} / {}",
                p.rate * 100.0,
                p.reads,
                p.energy_mj,
                p.steps,
                p.true_steps
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retries_grow_with_the_error_rate() {
        let sweep = run(&ExperimentConfig::quick());
        for w in sweep.points.windows(2) {
            assert!(
                w[1].reads > w[0].reads,
                "retries must grow: {:?}",
                sweep.points
            );
            assert!(
                w[1].energy_mj >= w[0].energy_mj,
                "retries cost energy: {:?}",
                sweep.points
            );
        }
        // Expected retry volume: reads ≈ n / (1 − rate).
        let last = sweep.points.last().expect("points");
        let base = sweep.points.first().expect("points");
        let expected = base.reads as f64 / (1.0 - last.rate);
        assert!(
            (last.reads as f64 - expected).abs() < expected * 0.05,
            "reads {} vs expected {expected}",
            last.reads
        );
    }

    #[test]
    fn the_kernel_survives_heavy_error_injection() {
        let sweep = run(&ExperimentConfig::quick());
        for p in &sweep.points {
            assert!(
                p.steps.abs_diff(p.true_steps) <= 1,
                "rate {}: {} steps vs {} true",
                p.rate,
                p.steps,
                p.true_steps
            );
        }
    }
}
