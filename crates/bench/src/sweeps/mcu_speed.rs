//! MCU-speed ablation: where does COM stop paying?
//!
//! §IV-F explains A3/A8's slowdowns by the MCU's slower kernel execution.
//! This sweep scales each app's MCU compute time and locates the
//! crossover — the generalization of the paper's
//! `(21.7 − 2.21) < (48 + 192)` inequality.

use std::fmt;

use iotse_core::{AppId, Scenario, Scheme};

use crate::config::ExperimentConfig;
use crate::sweeps::ScaledMcu;

/// MCU compute-time multipliers swept.
pub const FACTORS: [f64; 6] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McuSpeedPoint {
    /// MCU compute-time multiplier.
    pub factor: f64,
    /// COM speedup over Baseline at this factor.
    pub speedup: f64,
    /// COM energy saving at this factor.
    pub saving: f64,
}

/// The sweep result for one app.
#[derive(Debug, Clone, PartialEq)]
pub struct McuSpeedSweep {
    /// The app swept.
    pub id: AppId,
    /// One point per factor.
    pub points: Vec<McuSpeedPoint>,
}

impl McuSpeedSweep {
    /// The largest swept factor whose COM speedup is still ≥ 1 (`None` if
    /// even the fastest MCU loses).
    #[must_use]
    pub fn crossover(&self) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.speedup >= 1.0)
            .map(|p| p.factor)
            .fold(None, |acc, f| Some(acc.map_or(f, |a: f64| a.max(f))))
    }
}

/// Runs the sweep for `id`. The baseline and all six COM points run as one
/// fleet on `cfg.jobs` threads.
#[must_use]
pub fn run(cfg: &ExperimentConfig, id: AppId) -> McuSpeedSweep {
    let mut scenarios = vec![cfg.scenario(Scheme::Baseline, &[id])];
    scenarios.extend(FACTORS.iter().map(|&factor| {
        let app = ScaledMcu::new(iotse_apps::catalog::app(id, cfg.seed), factor);
        Scenario::new(Scheme::Com, vec![Box::new(app)])
            .windows(cfg.windows)
            .seed(cfg.seed)
    }));
    let mut results = cfg.run_fleet(scenarios).into_iter();
    let baseline = results.next().expect("baseline ran");
    let points = FACTORS
        .iter()
        .zip(results)
        .map(|(&factor, com)| McuSpeedPoint {
            factor,
            speedup: com.speedup_vs(&baseline, id).unwrap_or(0.0),
            saving: com.savings_vs(&baseline),
        })
        .collect();
    McuSpeedSweep { id, points }
}

impl fmt::Display for McuSpeedSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: MCU speed vs COM benefit for {}", self.id)?;
        writeln!(f, "  mcu-time   speedup   energy saving")?;
        for p in &self.points {
            writeln!(
                f,
                "  {:6.2}x   {:6.2}x   {:9.1}%",
                p.factor,
                p.speedup,
                p.saving * 100.0
            )?;
        }
        match self.crossover() {
            Some(c) => writeln!(
                f,
                "  COM stays faster up to {c:.2}x the calibrated MCU time"
            ),
            None => writeln!(f, "  COM is slower at every swept factor"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_decreases_monotonically_with_mcu_time() {
        let sweep = run(&ExperimentConfig::quick(), AppId::A2);
        for w in sweep.points.windows(2) {
            assert!(
                w[0].speedup >= w[1].speedup,
                "slower MCU cannot speed COM up: {:?}",
                sweep.points
            );
        }
    }

    #[test]
    fn a2_tolerates_a_much_slower_mcu_a8_does_not() {
        // The paper's asymmetry: A2's per-sample overheads dwarf its
        // compute, A8's do not.
        let cfg = ExperimentConfig::quick();
        let a2 = run(&cfg, AppId::A2)
            .crossover()
            .expect("A2 has a crossover");
        let a8 = run(&cfg, AppId::A8).crossover();
        assert!(a2 >= 8.0, "A2 crossover {a2}");
        // If a8 is None it is already slower at 0.25× — consistent with
        // Fig 13's 0.8×.
        if let Some(c) = a8 {
            assert!(c < a2, "A8 crossover {c} must be tighter than A2's {a2}");
        }
    }

    #[test]
    fn energy_saving_is_robust_to_mcu_speed() {
        // Even a slow MCU saves energy (the CPU sleeps regardless); only
        // *performance* crosses over. §IV-E1's point.
        let sweep = run(&ExperimentConfig::quick(), AppId::A8);
        for p in &sweep.points {
            assert!(
                p.saving > 0.2,
                "factor {}: saving {:.3}",
                p.factor,
                p.saving
            );
        }
    }
}
