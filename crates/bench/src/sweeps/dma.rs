//! The §IV-F future-work experiment: add a DMA engine to the interconnect.
//!
//! The paper: *"The energy consumption of data transfer is high, mainly
//! because there is no DMA or shared-memory hardware support and both CPU
//! and MCU have to be involved during the transfers. As our future work,
//! we plan to explore hardware optimizations to address the energy
//! inefficiencies in heavy-weight workloads."* This sweep runs that
//! experiment.

use std::fmt;

use iotse_core::calibration::Calibration;
use iotse_core::{AppId, Scenario, Scheme};

use crate::config::ExperimentConfig;

/// One scenario × scheme pair, with and without DMA.
#[derive(Debug, Clone, PartialEq)]
pub struct DmaPoint {
    /// Scenario label.
    pub label: String,
    /// Scheme run.
    pub scheme: Scheme,
    /// Energy without DMA, mJ.
    pub without_mj: f64,
    /// Energy with DMA, mJ.
    pub with_mj: f64,
}

impl DmaPoint {
    /// Fractional saving DMA adds to this scheme.
    #[must_use]
    pub fn dma_saving(&self) -> f64 {
        1.0 - self.with_mj / self.without_mj
    }
}

/// The DMA experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct DmaSweep {
    /// All points.
    pub points: Vec<DmaPoint>,
}

/// Runs the experiment over a light app (A2), the heavy app alone (A11)
/// and the paper's mixed heavy scenario (A11+A6).
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> DmaSweep {
    let cells: [(&str, &[AppId]); 3] = [
        ("A2", &[AppId::A2]),
        ("A11", &[AppId::A11]),
        ("A11+A6", &[AppId::A11, AppId::A6]),
    ];
    // 3 scenarios × 3 schemes × {no-DMA, DMA} = 18 runs, one fleet.
    let mut results = cfg
        .run_fleet(
            cells
                .iter()
                .flat_map(|&(_, apps)| {
                    [Scheme::Baseline, Scheme::Batching, Scheme::Bcom]
                        .into_iter()
                        .flat_map(move |scheme| {
                            [Calibration::paper(), Calibration::paper().with_dma()].map(|cal| {
                                Scenario::new(scheme, iotse_apps::catalog::apps(apps, cfg.seed))
                                    .windows(cfg.windows)
                                    .seed(cfg.seed)
                                    .calibration(cal)
                            })
                        })
                })
                .collect(),
        )
        .into_iter();
    let mut points = Vec::new();
    for (label, _) in cells {
        for scheme in [Scheme::Baseline, Scheme::Batching, Scheme::Bcom] {
            let without = results.next().expect("no-DMA ran");
            let with = results.next().expect("DMA ran");
            points.push(DmaPoint {
                label: label.to_string(),
                scheme,
                without_mj: without.total_energy().as_millijoules(),
                with_mj: with.total_energy().as_millijoules(),
            });
        }
    }
    DmaSweep { points }
}

impl fmt::Display for DmaSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Future work (§IV-F): adding DMA to the interconnect")?;
        writeln!(
            f,
            "  scenario  scheme     no-DMA (mJ)   DMA (mJ)   DMA adds"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "  {:8}  {:9}  {:10.1}  {:10.1}   {:6.1}%",
                p.label,
                p.scheme.to_string(),
                p.without_mj,
                p.with_mj,
                p.dma_saving() * 100.0
            )?;
        }
        writeln!(
            f,
            "  (DMA pays where transfers are long and sleepable-through: the"
        )?;
        writeln!(
            f,
            "   bulk flushes of Batching; saturated heavy baselines also gain"
        )?;
        writeln!(f, "   by shedding transfer busy-time)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point<'a>(sweep: &'a DmaSweep, label: &str, scheme: Scheme) -> &'a DmaPoint {
        sweep
            .points
            .iter()
            .find(|p| p.label == label && p.scheme == scheme)
            .expect("point exists")
    }

    #[test]
    fn dma_never_costs_energy() {
        let sweep = run(&ExperimentConfig::quick());
        for p in &sweep.points {
            assert!(
                p.dma_saving() >= -1e-9,
                "{} {}: DMA must not cost, saving {:.4}",
                p.label,
                p.scheme,
                p.dma_saving()
            );
        }
    }

    #[test]
    fn dma_helps_bulk_flushes_far_more_than_per_sample_flows() {
        // A Batching flush is one long transfer the CPU can now sleep
        // through; Baseline's per-sample transfers are too short to matter.
        let sweep = run(&ExperimentConfig::quick());
        let batched = point(&sweep, "A2", Scheme::Batching).dma_saving();
        let baseline = point(&sweep, "A2", Scheme::Baseline).dma_saving();
        assert!(
            batched > baseline * 3.0,
            "batched {batched:.3} must dwarf baseline {baseline:.3}"
        );
        assert!(
            batched > 0.10,
            "DMA must visibly help a bulk flush: {batched:.3}"
        );
    }

    #[test]
    fn dma_visibly_helps_the_heavy_scenario() {
        // The paper's future-work motivation: heavy-weight workloads.
        let sweep = run(&ExperimentConfig::quick());
        for scheme in [Scheme::Baseline, Scheme::Batching, Scheme::Bcom] {
            let saving = point(&sweep, "A11+A6", scheme).dma_saving();
            assert!(saving > 0.03, "{scheme}: {saving:.3}");
        }
    }
}
