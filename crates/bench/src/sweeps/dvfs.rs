//! Race-to-sleep vs slow-and-steady (DVFS) ablation.
//!
//! The paper's platform races at full clock and sleeps (its reference \[35\]
//! is literally titled *race-to-sleep*). This sweep asks whether that was
//! right: scale the CPU clock by `s` (compute stretches by `1/s`, active
//! power scales ≈ cubically with frequency·voltage²), run the
//! compute-heavy A8 under Batching, and compare.

use std::fmt;

use iotse_core::calibration::Calibration;
use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_core::{Scenario, Scheme};
use iotse_sim::time::SimDuration;

use crate::config::ExperimentConfig;

/// Clock-scale factors swept (1.0 = the Pi 3B's shipping operating point).
pub const SPEEDS: [f64; 5] = [0.5, 0.6, 0.8, 1.0, 1.2];

/// Exponent of the power-vs-frequency model (`P ∝ s^3`, the classic
/// `f·V²` approximation with voltage tracking frequency).
pub const POWER_EXPONENT: f64 = 3.0;

/// Floor below which active power cannot fall (uncore, DRAM, board).
pub const STATIC_FLOOR_W: f64 = 1.2;

/// Wraps a workload with its CPU compute time stretched by `1/speed`.
struct ScaledCpu {
    inner: Box<dyn Workload>,
    speed: f64,
}

impl Workload for ScaledCpu {
    fn id(&self) -> AppId {
        self.inner.id()
    }
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn window(&self) -> SimDuration {
        self.inner.window()
    }
    fn sensors(&self) -> Vec<SensorUsage> {
        self.inner.sensors()
    }
    fn resources(&self) -> ResourceProfile {
        let r = self.inner.resources();
        ResourceProfile {
            cpu_compute: r.cpu_compute.mul_f64(1.0 / self.speed),
            ..r
        }
    }
    fn compute(&mut self, data: &WindowData) -> AppOutput {
        self.inner.compute(data)
    }
}

/// CPU active power at clock scale `s`.
#[must_use]
pub fn scaled_active_power_w(speed: f64) -> f64 {
    let nominal = 5.0;
    let dynamic = nominal - STATIC_FLOOR_W;
    STATIC_FLOOR_W + dynamic * speed.powf(POWER_EXPONENT)
}

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsPoint {
    /// Clock scale.
    pub speed: f64,
    /// Active power at this scale, watts.
    pub active_w: f64,
    /// Total energy for the A8 Batching scenario, mJ.
    pub energy_mj: f64,
    /// QoS violations observed.
    pub qos_violations: usize,
}

/// The sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsSweep {
    /// One point per speed.
    pub points: Vec<DvfsPoint>,
}

impl DvfsSweep {
    /// The QoS-feasible point with the least energy.
    #[must_use]
    pub fn best(&self) -> Option<&DvfsPoint> {
        self.points
            .iter()
            .filter(|p| p.qos_violations == 0)
            .min_by(|a, b| a.energy_mj.partial_cmp(&b.energy_mj).expect("finite"))
    }
}

/// Runs the sweep (A8 under Batching — the most compute-bound light app).
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> DvfsSweep {
    // One scenario per operating point, all run as one fleet.
    let scenarios = SPEEDS
        .iter()
        .map(|&speed| {
            let mut cal = Calibration::paper();
            cal.cpu_active = iotse_energy::Power::from_watts(scaled_active_power_w(speed));
            // Keep the break-even consistent with the new active power.
            let implied = cal.transition_energy().as_joules()
                / (cal.cpu_active - cal.cpu_sleep).as_watts().max(0.1);
            cal.sleep_break_even = SimDuration::from_secs_f64(implied);
            let app = ScaledCpu {
                inner: iotse_apps::catalog::app(AppId::A8, cfg.seed),
                speed,
            };
            Scenario::new(Scheme::Batching, vec![Box::new(app)])
                .windows(cfg.windows)
                .seed(cfg.seed)
                .calibration(cal)
        })
        .collect();
    let points = SPEEDS
        .iter()
        .zip(cfg.run_fleet(scenarios))
        .map(|(&speed, r)| DvfsPoint {
            speed,
            active_w: scaled_active_power_w(speed),
            energy_mj: r.total_energy().as_millijoules(),
            qos_violations: r.qos_violations(),
        })
        .collect();
    DvfsSweep { points }
}

impl fmt::Display for DvfsSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation: DVFS operating point vs race-to-sleep (A8, Batching)"
        )?;
        writeln!(f, "  clock   active power   energy (mJ)   QoS misses")?;
        for p in &self.points {
            writeln!(
                f,
                "  {:4.1}x   {:9.2} W   {:11.1}   {}",
                p.speed, p.active_w, p.energy_mj, p.qos_violations
            )?;
        }
        if let Some(best) = self.best() {
            writeln!(f, "  best QoS-feasible point: {:.1}x clock", best.speed)?;
        }
        writeln!(
            f,
            "  (cubic power model with a {STATIC_FLOOR_W} W static floor)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_model_is_sane() {
        assert!((scaled_active_power_w(1.0) - 5.0).abs() < 1e-9);
        assert!(scaled_active_power_w(0.5) > STATIC_FLOOR_W);
        assert!(scaled_active_power_w(1.2) > 5.0);
    }

    #[test]
    fn results_are_qos_feasible_at_nominal_speed() {
        let sweep = run(&ExperimentConfig::quick());
        let nominal = sweep
            .points
            .iter()
            .find(|p| p.speed == 1.0)
            .expect("nominal");
        assert_eq!(nominal.qos_violations, 0);
        assert!(sweep.best().is_some());
    }

    #[test]
    fn overclocking_costs_energy() {
        // At 1.2× the cubic dynamic power outweighs the shorter busy time
        // for a workload that is mostly *not* compute.
        let sweep = run(&ExperimentConfig::quick());
        let nominal = sweep
            .points
            .iter()
            .find(|p| p.speed == 1.0)
            .expect("nominal");
        let fast = sweep.points.iter().find(|p| p.speed == 1.2).expect("fast");
        assert!(
            fast.energy_mj > nominal.energy_mj * 0.99,
            "{fast:?} vs {nominal:?}"
        );
    }

    #[test]
    fn some_downscaling_beats_racing_under_batching() {
        // With a static floor and cubic dynamics, the energy-optimal clock
        // for a batched workload sits below 1.0 — the interesting finding
        // this ablation documents.
        let sweep = run(&ExperimentConfig::quick());
        let nominal = sweep
            .points
            .iter()
            .find(|p| p.speed == 1.0)
            .expect("nominal");
        let best = sweep.best().expect("a feasible point");
        assert!(
            best.energy_mj <= nominal.energy_mj,
            "best {best:?} vs nominal {nominal:?}"
        );
    }
}
