//! Ablation and sensitivity sweeps — experiments beyond the paper's
//! figures that probe the design choices DESIGN.md calls out: the sleep
//! transition cost behind Batching, the MCU speed behind COM's crossover,
//! the §IV-F future-work DMA engine, the DVFS operating point vs
//! race-to-sleep, and robustness to sensor failures.

pub mod dma;
pub mod dvfs;
pub mod error_rate;
pub mod mcu_speed;
pub mod transition;

use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_sim::time::SimDuration;

/// Wraps a workload with its MCU compute time scaled by a factor —
/// the knob behind the COM-crossover sweep.
pub struct ScaledMcu {
    inner: Box<dyn Workload>,
    factor: f64,
}

impl ScaledMcu {
    /// Wraps `inner`, scaling its MCU compute time by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    #[must_use]
    pub fn new(inner: Box<dyn Workload>, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        ScaledMcu { inner, factor }
    }
}

impl Workload for ScaledMcu {
    fn id(&self) -> AppId {
        self.inner.id()
    }
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn window(&self) -> SimDuration {
        self.inner.window()
    }
    fn sensors(&self) -> Vec<SensorUsage> {
        self.inner.sensors()
    }
    fn resources(&self) -> ResourceProfile {
        let r = self.inner.resources();
        ResourceProfile {
            mcu_compute: r.mcu_compute.mul_f64(self.factor),
            ..r
        }
    }
    fn compute(&mut self, data: &WindowData) -> AppOutput {
        self.inner.compute(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_apps::catalog;

    #[test]
    fn scaled_mcu_only_touches_mcu_compute() {
        let plain = catalog::app(AppId::A2, 1);
        let scaled = ScaledMcu::new(catalog::app(AppId::A2, 1), 3.0);
        let a = plain.resources();
        let b = scaled.resources();
        assert_eq!(a.cpu_compute, b.cpu_compute);
        assert_eq!(a.heap_bytes, b.heap_bytes);
        assert_eq!(b.mcu_compute, a.mcu_compute.mul_f64(3.0));
        assert_eq!(scaled.id(), AppId::A2);
        assert_eq!(scaled.sensors(), plain.sensors());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_mcu_rejects_bad_factor() {
        let _ = ScaledMcu::new(catalog::app(AppId::A2, 1), 0.0);
    }
}
