//! Sleep-transition-cost ablation.
//!
//! Batching's entire benefit rests on the §III-A economics: a 4 mJ
//! transition amortized over a long sleep. This sweep scales the
//! transition time (keeping the break-even consistent) and watches
//! Batching's saving erode — on a platform with expensive C-state entry,
//! batching low-rate apps stops paying.

use std::fmt;

use iotse_core::calibration::Calibration;
use iotse_core::{AppId, Scheme};

use crate::config::ExperimentConfig;

/// The transition-time multipliers swept.
pub const FACTORS: [f64; 6] = [0.25, 1.0, 4.0, 16.0, 64.0, 256.0];

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionPoint {
    /// Transition-time multiplier over the paper's 1.6 ms.
    pub factor: f64,
    /// Step-counter (1 kHz) Batching saving at this cost.
    pub a2_saving: f64,
    /// arduinoJSON (10 Hz) Batching saving at this cost.
    pub a3_saving: f64,
}

/// The sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionSweep {
    /// One point per factor.
    pub points: Vec<TransitionPoint>,
}

/// Calibration with the transition scaled and the break-even kept
/// consistent (`E_transition / (P_active − P_sleep)`).
#[must_use]
pub fn scaled_calibration(factor: f64) -> Calibration {
    let mut cal = Calibration::paper();
    cal.cpu_transition_time = cal.cpu_transition_time.mul_f64(factor);
    let implied = cal.transition_energy().as_joules() / (cal.cpu_active - cal.cpu_sleep).as_watts();
    cal.sleep_break_even = iotse_sim::time::SimDuration::from_secs_f64(implied);
    cal
}

/// Runs the sweep. All 24 scenarios (6 factors × 2 apps × 2 schemes) run
/// as one fleet on `cfg.jobs` threads.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> TransitionSweep {
    let scenario = |id: AppId, cal: &Calibration, scheme: Scheme| {
        iotse_core::Scenario::new(scheme, iotse_apps::catalog::apps(&[id], cfg.seed))
            .windows(cfg.windows)
            .seed(cfg.seed)
            .calibration(cal.clone())
    };
    let mut results = cfg
        .run_fleet(
            FACTORS
                .iter()
                .flat_map(|&factor| {
                    let cal = scaled_calibration(factor);
                    [AppId::A2, AppId::A3].into_iter().flat_map(move |id| {
                        [Scheme::Batching, Scheme::Baseline]
                            .map(|scheme| scenario(id, &cal, scheme))
                    })
                })
                .collect(),
        )
        .into_iter();
    let mut saving = || {
        let batching = results.next().expect("batching ran");
        let baseline = results.next().expect("baseline ran");
        batching.savings_vs(&baseline)
    };
    let points = FACTORS
        .iter()
        .map(|&factor| TransitionPoint {
            factor,
            a2_saving: saving(),
            a3_saving: saving(),
        })
        .collect();
    TransitionSweep { points }
}

impl fmt::Display for TransitionSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: sleep-transition cost vs Batching saving")?;
        writeln!(f, "  factor   transition   A2 (1 kHz)   A3 (10 Hz)")?;
        for p in &self.points {
            writeln!(
                f,
                "  {:6.2}x  {:>9}   {:9.1}%   {:9.1}%",
                p.factor,
                scaled_calibration(p.factor).cpu_transition_time,
                p.a2_saving * 100.0,
                p.a3_saving * 100.0
            )?;
        }
        writeln!(f, "  (the paper's platform is factor 1.00: 1.6 ms, 4 mJ)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_erode_as_transitions_get_expensive() {
        let sweep = run(&ExperimentConfig::quick());
        let first = sweep.points.first().expect("points");
        let last = sweep.points.last().expect("points");
        assert!(first.a2_saving > last.a2_saving, "A2 saving must erode");
        assert!(first.a3_saving > last.a3_saving, "A3 saving must erode");
        // At the paper's costs batching pays well for the 1 kHz app…
        let paper = sweep
            .points
            .iter()
            .find(|p| p.factor == 1.0)
            .expect("factor 1");
        assert!(paper.a2_saving > 0.4, "{:.3}", paper.a2_saving);
        // …and even a ~0.4 s transition only erodes it by single digits —
        // batching is robust as long as the transition fits the window.
        assert!(
            paper.a2_saving - last.a2_saving > 0.04,
            "{:.3}",
            last.a2_saving
        );
        assert!(
            paper.a3_saving - last.a3_saving > 0.08,
            "{:.3}",
            last.a3_saving
        );
    }

    #[test]
    fn scaled_calibration_stays_valid() {
        for f in FACTORS {
            scaled_calibration(f).validate().expect("consistent");
        }
    }
}
