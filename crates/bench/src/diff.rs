//! Run-diff regression tooling: compare two telemetry-carrying runs.
//!
//! The `inspect diff` subcommand compares a *base* run against a *vs* run
//! — scheme vs scheme, seed vs seed, clean vs faulted, or a saved
//! baseline JSON vs the current build — and prints a ranked table of
//! per-routine energy deltas with each side's drift verdict. Both sides
//! reduce to a [`TelemetrySummary`] first, so a run from ten minutes ago
//! (saved with `--save`) diffs exactly like a live one.
//!
//! Everything here is a pure function of the two summaries: the table is
//! byte-identical across repeated runs and `--jobs` levels (CI diffs the
//! jobs-1 and jobs-8 renderings directly), and a run diffed against
//! itself reports zero deltas everywhere (golden-pinned in
//! `tests/telemetry.rs`). Serialization rides the in-tree [`Json`]
//! kernel's shortest-round-trip number form, so a summary survives a
//! save/load cycle bitwise.

use std::fmt::Write as _;

use iotse_apps::kernels::json::Json;
use iotse_core::RunResult;
use iotse_energy::attribution::Routine;

use crate::export::routine_key;
use crate::inspect::{run, InspectRequest};

/// One routine's share of a run, as the diff table sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutineSummary {
    /// Short routine key (`interrupt`, `app_compute`, …).
    pub routine: String,
    /// The routine's total energy over the run, µJ (bitwise equal to the
    /// ledger total — the stack series fold exactly).
    pub total_uj: f64,
    /// CUSUM drift alerts the run's online detector raised on this
    /// routine's windowed series.
    pub drift_alerts: u64,
}

/// Everything `inspect diff` needs from one side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    /// Human-readable side label, e.g. `com seed=42` or `com seed=42 +faults`.
    pub label: String,
    /// Windows on the telemetry grid.
    pub windows: u32,
    /// Per-routine totals and verdicts, [`Routine::ALL`] order.
    pub routines: Vec<RoutineSummary>,
    /// Budget-watchdog alerts over the run.
    pub budget_alerts: u64,
    /// Detector/watchdog update calls over the run.
    pub detector_evals: u64,
}

impl TelemetrySummary {
    /// Reduces a telemetry-carrying run to its diffable summary. Returns
    /// `None` if the run was executed without `with_telemetry()`.
    #[must_use]
    pub fn from_result(result: &RunResult) -> Option<TelemetrySummary> {
        let tel = result.telemetry.as_ref()?;
        let drift = tel.drift_counts();
        let routines = Routine::ALL
            .iter()
            .enumerate()
            .map(|(i, &routine)| RoutineSummary {
                routine: routine_key(routine).to_string(),
                total_uj: tel.stacks.series(routine).fold_sum(),
                drift_alerts: drift[i],
            })
            .collect();
        let faulted = if result.faults.faults_injected > 0 {
            " +faults"
        } else {
            ""
        };
        Some(TelemetrySummary {
            label: format!("{} seed={}{}", result.scheme, result.seed, faulted),
            windows: tel.stacks.windows(),
            routines,
            budget_alerts: tel.budget_alerts() as u64,
            detector_evals: tel.detector_evals,
        })
    }

    /// Total drift alerts across all routines.
    #[must_use]
    pub fn drift_alerts(&self) -> u64 {
        self.routines.iter().map(|r| r.drift_alerts).sum()
    }

    /// Sum over the four workload routines (everything but `idle`).
    #[must_use]
    pub fn workload_uj(&self) -> f64 {
        self.routines
            .iter()
            .filter(|r| r.routine != "idle")
            .map(|r| r.total_uj)
            .sum()
    }

    /// Serializes the summary as one line of deterministic JSON (plus a
    /// trailing newline) — the `--save`/`--baseline` file format.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut text = Json::object([
            ("label", Json::String(self.label.clone())),
            ("windows", Json::Number(f64::from(self.windows))),
            (
                "routines",
                Json::array(self.routines.iter().map(|r| {
                    Json::object([
                        ("routine", Json::String(r.routine.clone())),
                        ("total_uj", Json::Number(r.total_uj)),
                        (
                            "drift_alerts",
                            // lint: alert counts are tiny (<= windows * routines)
                            #[allow(clippy::cast_precision_loss)]
                            Json::Number(r.drift_alerts as f64),
                        ),
                    ])
                })),
            ),
            (
                "budget_alerts",
                // lint: alert counts are tiny (<= windows)
                #[allow(clippy::cast_precision_loss)]
                Json::Number(self.budget_alerts as f64),
            ),
            (
                "detector_evals",
                // lint: eval counts are tiny (windows * (routines + 1))
                #[allow(clippy::cast_precision_loss)]
                Json::Number(self.detector_evals as f64),
            ),
        ])
        .to_text();
        text.push('\n');
        text
    }

    /// Parses a summary written by [`TelemetrySummary::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a missing field.
    pub fn parse(text: &str) -> Result<TelemetrySummary, String> {
        let doc = Json::parse(text).map_err(|e| format!("telemetry summary: {e:?}"))?;
        let routines = doc
            .get("routines")
            .and_then(Json::as_array)
            .ok_or("telemetry summary: missing routines array")?
            .iter()
            .map(|r| {
                Ok(RoutineSummary {
                    routine: str_field(r, "routine")?,
                    total_uj: num_field(r, "total_uj")?,
                    drift_alerts: u64_field(r, "drift_alerts")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(TelemetrySummary {
            label: str_field(&doc, "label")?,
            // lint: window counts are small positive integers
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            windows: num_field(&doc, "windows")? as u32,
            routines,
            budget_alerts: u64_field(&doc, "budget_alerts")?,
            detector_evals: u64_field(&doc, "detector_evals")?,
        })
    }
}

fn num_field(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("telemetry summary: missing numeric field '{key}'"))
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
    let x = num_field(doc, key)?;
    if x < 0.0 || x.fract() != 0.0 {
        return Err(format!(
            "telemetry summary: field '{key}' = {x} is not a count"
        ));
    }
    // lint: the range/fract checks above make the cast exact
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(x as u64)
}

fn str_field(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("telemetry summary: missing string field '{key}'"))
}

/// The drift verdict column for one routine row.
fn verdict(base_drift: u64, vs_drift: u64) -> &'static str {
    match (base_drift > 0, vs_drift > 0) {
        (false, false) => "ok",
        (false, true) => "DRIFT(vs)",
        (true, false) => "DRIFT(base)",
        (true, true) => "DRIFT(both)",
    }
}

/// Renders the ranked per-routine delta table between two summaries.
///
/// Rows sort by `|delta|` descending (stable, so exact ties keep
/// [`Routine::ALL`] order); the footer carries the workload totals and
/// each side's alert counts. A summary diffed against itself prints
/// all-zero deltas and `ok` verdicts.
#[must_use]
pub fn render_diff(base: &TelemetrySummary, vs: &TelemetrySummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "run diff: base [{}] vs [{}]", base.label, vs.label);
    let _ = writeln!(
        out,
        "{:<16} {:>16} {:>16} {:>16} {:>9} {:>12}",
        "routine", "base_uj", "vs_uj", "delta_uj", "delta_pct", "verdict"
    );
    let mut rows: Vec<(&RoutineSummary, &RoutineSummary)> = base
        .routines
        .iter()
        .map(|b| {
            let v = vs
                .routines
                .iter()
                .find(|v| v.routine == b.routine)
                .unwrap_or(b);
            (b, v)
        })
        .collect();
    rows.sort_by(|a, b| {
        let da = (a.1.total_uj - a.0.total_uj).abs();
        let db = (b.1.total_uj - b.0.total_uj).abs();
        db.total_cmp(&da)
    });
    for (b, v) in rows {
        let delta = v.total_uj - b.total_uj;
        let pct = if b.total_uj == 0.0 {
            if delta == 0.0 {
                "0.0".to_string()
            } else {
                "inf".to_string()
            }
        } else {
            format!("{:+.1}", delta / b.total_uj * 100.0)
        };
        let _ = writeln!(
            out,
            "{:<16} {:>16.3} {:>16.3} {:>+16.3} {:>9} {:>12}",
            b.routine,
            b.total_uj,
            v.total_uj,
            delta,
            pct,
            verdict(b.drift_alerts, v.drift_alerts)
        );
    }
    let wb = base.workload_uj();
    let wv = vs.workload_uj();
    let _ = writeln!(
        out,
        "{:<16} {:>16.3} {:>16.3} {:>+16.3}",
        "workload",
        wb,
        wv,
        wv - wb
    );
    let _ = writeln!(
        out,
        "alerts: base {} drift / {} budget, vs {} drift / {} budget",
        base.drift_alerts(),
        base.budget_alerts,
        vs.drift_alerts(),
        vs.budget_alerts
    );
    out
}

/// Runs both requests and renders their diff — the whole `inspect diff`
/// subcommand as a library call, so tests can compare outputs across
/// `--jobs` levels without spawning processes.
///
/// # Panics
///
/// Panics if either run carries no telemetry ([`run`] always enables it).
#[must_use]
pub fn diff_requests(base: &InspectRequest, vs: &InspectRequest) -> String {
    let base_summary =
        TelemetrySummary::from_result(&run(base)).expect("inspect runs carry telemetry");
    let vs_summary = TelemetrySummary::from_result(&run(vs)).expect("inspect runs carry telemetry");
    render_diff(&base_summary, &vs_summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_core::Scheme;

    fn summary(interrupt_uj: f64, drift: u64) -> TelemetrySummary {
        TelemetrySummary {
            label: "test seed=1".into(),
            windows: 4,
            routines: Routine::ALL
                .iter()
                .map(|&r| RoutineSummary {
                    routine: routine_key(r).to_string(),
                    total_uj: if r == Routine::Interrupt {
                        interrupt_uj
                    } else {
                        100.0
                    },
                    drift_alerts: if r == Routine::Interrupt { drift } else { 0 },
                })
                .collect(),
            budget_alerts: 0,
            detector_evals: 20,
        }
    }

    #[test]
    fn summary_json_round_trips_exactly() {
        let s = summary(0.1 + 0.2, 1); // non-representable decimal on purpose
        let text = s.to_json();
        let back = TelemetrySummary::parse(&text).expect("parses");
        assert_eq!(back, s, "shortest-round-trip floats must survive");
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(TelemetrySummary::parse("not json").is_err());
        assert!(TelemetrySummary::parse("{}").is_err());
        assert!(TelemetrySummary::parse(r#"{"label":"x","windows":1}"#).is_err());
    }

    #[test]
    fn self_diff_is_all_zero() {
        let s = summary(5000.0, 0);
        let table = render_diff(&s, &s);
        for line in table.lines().skip(2).take(5) {
            assert!(line.contains("+0.000"), "nonzero delta in {line}");
            assert!(line.ends_with("ok"), "unexpected verdict in {line}");
        }
        assert!(table.contains("alerts: base 0 drift / 0 budget, vs 0 drift / 0 budget"));
    }

    #[test]
    fn diff_ranks_by_delta_and_flags_drift() {
        let base = summary(1000.0, 0);
        let vs = summary(3_201_000.0, 1);
        let table = render_diff(&base, &vs);
        let first_row = table.lines().nth(2).expect("first data row");
        assert!(
            first_row.starts_with("interrupt"),
            "largest delta must rank first: {first_row}"
        );
        assert!(first_row.ends_with("DRIFT(vs)"), "{first_row}");
        assert!(table.contains("alerts: base 0 drift / 0 budget, vs 1 drift / 0 budget"));
    }

    #[test]
    fn live_diff_against_itself_reports_zero_deltas() {
        let req = InspectRequest {
            scheme: Scheme::Com,
            windows: 2,
            ..InspectRequest::default()
        };
        let table = diff_requests(&req, &req);
        for line in table.lines().skip(2).take(5) {
            assert!(line.contains("+0.000"), "nonzero delta in {line}");
        }
    }
}
