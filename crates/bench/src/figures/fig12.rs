//! Figure 12 — scenarios involving the heavy-weight speech-to-text app:
//! (a) A11 alone (Baseline vs Batching), (b) A11+A6 and (c) A11+A6+A1
//! under Baseline / BEAM / Batching / BCOM.

use std::fmt;

use iotse_core::{AppId, Scheme};
use iotse_energy::attribution::Breakdown;

use crate::config::ExperimentConfig;

/// One scenario panel.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Panel {
    /// The apps run concurrently.
    pub combo: Vec<AppId>,
    /// `(scheme, breakdown)` bars in figure order.
    pub bars: Vec<(Scheme, Breakdown)>,
}

impl Fig12Panel {
    /// Saving of `scheme` relative to the panel's Baseline bar.
    #[must_use]
    pub fn saving(&self, scheme: Scheme) -> Option<f64> {
        let baseline = self.bars.first()?.1.total();
        let bar = self.bars.iter().find(|(s, _)| *s == scheme)?.1.total();
        Some(1.0 - bar.ratio_of(baseline))
    }

    /// A compact label like `"A11+A6"`.
    #[must_use]
    pub fn label(&self) -> String {
        self.combo
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// The Figure 12 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12 {
    /// Panels (a), (b), (c).
    pub panels: Vec<Fig12Panel>,
}

/// Reproduces Figure 12.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Fig12 {
    const MULTI_SCHEMES: [Scheme; 4] = [
        Scheme::Baseline,
        Scheme::Beam,
        Scheme::Batching,
        Scheme::Bcom,
    ];
    // (combo, schemes) per panel; all ten scenarios run as one fleet.
    let panels_spec: Vec<(Vec<AppId>, Vec<Scheme>)> = vec![
        (vec![AppId::A11], vec![Scheme::Baseline, Scheme::Batching]),
        (vec![AppId::A11, AppId::A6], MULTI_SCHEMES.to_vec()),
        (
            vec![AppId::A11, AppId::A6, AppId::A1],
            MULTI_SCHEMES.to_vec(),
        ),
    ];
    let mut results = cfg
        .run_fleet(
            panels_spec
                .iter()
                .flat_map(|(combo, schemes)| schemes.iter().map(|&s| cfg.scenario(s, combo)))
                .collect(),
        )
        .into_iter();
    let panels = panels_spec
        .into_iter()
        .map(|(combo, schemes)| Fig12Panel {
            bars: schemes
                .into_iter()
                .map(|s| (s, results.next().expect("scenario ran").breakdown()))
                .collect(),
            combo,
        })
        .collect();
    Fig12 { panels }
}

impl fmt::Display for Fig12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 12: heavy-weight (A11) scenarios")?;
        for p in &self.panels {
            write!(f, "  {:12}", p.label())?;
            for (scheme, b) in &p.bars {
                let saving = p.saving(*scheme).unwrap_or(0.0);
                write!(
                    f,
                    "  {scheme}={:8.1} mJ ({:+5.1}%)",
                    b.total().as_millijoules(),
                    -saving * 100.0
                )?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "  paper: A11 alone Batching -5%; A11+A6 BCOM -9%; A11+A6+A1 BCOM -10%"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_savings_are_modest_and_ordered() {
        let fig = run(&ExperimentConfig::quick());
        // (a) Batching saves something, but far less than on light apps.
        let alone = fig.panels[0].saving(Scheme::Batching).expect("bar");
        assert!(
            alone > 0.0 && alone < 0.45,
            "A11 alone batching saving {alone:.3}"
        );
        // (b)/(c): BEAM < Batching < BCOM, the paper's ordering.
        for p in &fig.panels[1..] {
            let beam = p.saving(Scheme::Beam).expect("beam");
            let batching = p.saving(Scheme::Batching).expect("batching");
            let bcom = p.saving(Scheme::Bcom).expect("bcom");
            assert!(
                beam < batching,
                "{}: beam {beam:.3} < batching {batching:.3}",
                p.label()
            );
            assert!(
                batching < bcom,
                "{}: batching {batching:.3} < bcom {bcom:.3}",
                p.label()
            );
        }
    }

    #[test]
    fn compute_dominates_a11_baseline() {
        // Figure 12a: the app-specific routine is the biggest share of
        // A11's Baseline energy (the paper measured 78%).
        let fig = run(&ExperimentConfig::quick());
        let baseline = fig.panels[0].bars[0].1;
        let share = baseline.app_compute.ratio_of(baseline.total());
        assert!(share > 0.5, "compute share {share:.3}");
    }

    #[test]
    fn adding_more_light_apps_helps_bcom() {
        // Offloading A6 and A1 frees more of the hub: panel (c)'s BCOM
        // saving exceeds panel (b)'s.
        let fig = run(&ExperimentConfig::quick());
        let b = fig.panels[1].saving(Scheme::Bcom).expect("bar");
        let c = fig.panels[2].saving(Scheme::Bcom).expect("bar");
        assert!(c > b, "{c:.3} must exceed {b:.3}");
    }
}
