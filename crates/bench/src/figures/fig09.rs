//! Figure 9 — step-counter energy breakdown across all three single-app
//! schemes: Baseline, Batching, COM.

use std::fmt;

use iotse_core::{AppId, Scheme};
use iotse_energy::attribution::Breakdown;
use iotse_energy::report::{breakdown_chart, BreakdownRow};

use crate::config::ExperimentConfig;

/// The Figure 9 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig09 {
    /// `(scheme, breakdown)` for Baseline, Batching, COM.
    pub bars: Vec<(Scheme, Breakdown)>,
}

impl Fig09 {
    /// Saving of `scheme` relative to Baseline.
    #[must_use]
    pub fn saving(&self, scheme: Scheme) -> f64 {
        let baseline = self.bars[0].1.total();
        let bar = self
            .bars
            .iter()
            .find(|(s, _)| *s == scheme)
            .map(|(_, b)| b.total())
            .unwrap_or(baseline);
        1.0 - bar.ratio_of(baseline)
    }
}

/// Reproduces Figure 9.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Fig09 {
    let results = cfg.run_fleet(
        Scheme::SINGLE_APP
            .iter()
            .map(|&scheme| cfg.scenario(scheme, &[AppId::A2]))
            .collect(),
    );
    let bars = Scheme::SINGLE_APP
        .iter()
        .zip(results)
        .map(|(&scheme, r)| (scheme, r.breakdown()))
        .collect();
    Fig09 { bars }
}

impl fmt::Display for Fig09 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 9: step-counter breakdown, Baseline / Batching / COM"
        )?;
        let reference = self.bars[0].1.total();
        let rows: Vec<BreakdownRow> = self
            .bars
            .iter()
            .map(|(s, b)| BreakdownRow {
                label: s.to_string(),
                breakdown: *b,
            })
            .collect();
        write!(f, "{}", breakdown_chart("", &rows, reference, 60))?;
        writeln!(
            f,
            "  savings: Batching {:.1}%, COM {:.1}%   (paper: ~50% / 73%+)",
            self.saving(Scheme::Batching) * 100.0,
            self.saving(Scheme::Com) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn com_beats_batching_beats_baseline() {
        let fig = run(&ExperimentConfig::quick());
        let totals: Vec<f64> = fig
            .bars
            .iter()
            .map(|(_, b)| b.total().as_millijoules())
            .collect();
        assert!(totals[1] < totals[0], "Batching saves");
        assert!(totals[2] < totals[1], "COM saves more");
        assert!(
            fig.saving(Scheme::Com) > 0.75,
            "COM saving {:.3}",
            fig.saving(Scheme::Com)
        );
    }

    #[test]
    fn com_compute_share_grows_like_the_paper_says() {
        // §III-B4: the app-specific routine becomes the visible share under
        // COM (the slower MCU computes while the CPU sleeps on its behalf).
        let fig = run(&ExperimentConfig::quick());
        let com = fig.bars[2].1;
        let share = com.app_compute.ratio_of(com.total());
        let baseline_share = fig.bars[0].1.app_compute.ratio_of(fig.bars[0].1.total());
        assert!(share > baseline_share * 5.0, "COM compute share {share:.3}");
    }
}
