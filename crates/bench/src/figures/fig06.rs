//! Figure 6 — per-app memory usage (heap + stack) and MIPS.

use std::fmt;

use iotse_core::AppId;
use iotse_energy::report::value_chart;

use crate::config::ExperimentConfig;

/// One Figure 6 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig06Row {
    /// The app.
    pub id: AppId,
    /// Heap bytes.
    pub heap_bytes: usize,
    /// Stack bytes.
    pub stack_bytes: usize,
    /// Required MIPS.
    pub mips: f64,
}

/// The Figure 6 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig06 {
    /// A1–A10 rows.
    pub rows: Vec<Fig06Row>,
}

impl Fig06 {
    /// Mean total memory in KB (paper: 26.2).
    #[must_use]
    pub fn mean_memory_kb(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| (r.heap_bytes + r.stack_bytes) as f64 / 1024.0)
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Mean MIPS (paper: 47.45).
    #[must_use]
    pub fn mean_mips(&self) -> f64 {
        self.rows.iter().map(|r| r.mips).sum::<f64>() / self.rows.len() as f64
    }
}

/// Reproduces Figure 6 from the app resource profiles.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Fig06 {
    let rows = iotse_apps::catalog::light_apps(cfg.seed)
        .iter()
        .map(|a| {
            let r = a.resources();
            Fig06Row {
                id: a.id(),
                heap_bytes: r.heap_bytes,
                stack_bytes: r.stack_bytes,
                mips: r.mips,
            }
        })
        .collect();
    Fig06 { rows }
}

impl fmt::Display for Fig06 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 6: memory usage and MIPS per app")?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:4} heap={:6} B  stack={:4} B  mips={:7.2}",
                r.id.to_string(),
                r.heap_bytes,
                r.stack_bytes,
                r.mips
            )?;
        }
        writeln!(
            f,
            "  mean memory = {:.1} KB (paper: 26.2), mean MIPS = {:.2} (paper: 47.45)",
            self.mean_memory_kb(),
            self.mean_mips()
        )?;
        let mips_rows: Vec<(String, f64)> = self
            .rows
            .iter()
            .map(|r| (r.id.to_string(), r.mips))
            .collect();
        write!(f, "{}", value_chart("  MIPS:", &mips_rows, "MIPS", 50))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_match_the_paper() {
        let fig = run(&ExperimentConfig::quick());
        assert_eq!(fig.rows.len(), 10);
        assert!(
            (fig.mean_memory_kb() - 26.2).abs() < 0.3,
            "{}",
            fig.mean_memory_kb()
        );
        assert!((fig.mean_mips() - 47.45).abs() < 0.5, "{}", fig.mean_mips());
    }

    #[test]
    fn stack_is_small_relative_to_heap() {
        // Figure 6: 25.8 KB heap vs 0.4 KB stack on average.
        let fig = run(&ExperimentConfig::quick());
        for r in &fig.rows {
            assert!(r.stack_bytes * 10 < r.heap_bytes, "{:?}", r.id);
        }
    }
}
