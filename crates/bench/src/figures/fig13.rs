//! Figure 13 — per-app performance speedup of COM over Baseline
//! (paper: 1.88× on average; A3 and A8 slow down).

use std::fmt;

use iotse_core::{AppId, Scheme};
use iotse_energy::report::value_chart;

use crate::config::ExperimentConfig;

/// The Figure 13 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13 {
    /// `(app, speedup)` in app order.
    pub speedups: Vec<(AppId, f64)>,
}

impl Fig13 {
    /// Mean speedup (paper: 1.88×).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.speedups.iter().map(|&(_, s)| s).sum::<f64>() / self.speedups.len() as f64
    }

    /// The speedup of one app.
    #[must_use]
    pub fn of(&self, id: AppId) -> Option<f64> {
        self.speedups
            .iter()
            .find(|&&(a, _)| a == id)
            .map(|&(_, s)| s)
    }
}

/// Reproduces Figure 13.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Fig13 {
    let mut results = cfg
        .run_fleet(
            AppId::LIGHT
                .iter()
                .flat_map(|&id| {
                    [Scheme::Baseline, Scheme::Com]
                        .into_iter()
                        .map(move |scheme| cfg.scenario(scheme, &[id]))
                })
                .collect(),
        )
        .into_iter();
    let speedups = AppId::LIGHT
        .iter()
        .map(|&id| {
            let baseline = results.next().expect("baseline ran");
            let com = results.next().expect("com ran");
            (id, com.speedup_vs(&baseline, id).expect("both ran"))
        })
        .collect();
    Fig13 { speedups }
}

impl fmt::Display for Fig13 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 13: COM speedup over Baseline (processing time per window)"
        )?;
        let rows: Vec<(String, f64)> = self
            .speedups
            .iter()
            .map(|&(id, s)| (id.to_string(), s))
            .collect();
        write!(f, "{}", value_chart("", &rows, "x", 50))?;
        writeln!(
            f,
            "  mean = {:.2}x   (paper: 1.88x; A3 0.9x and A8 0.8x slow down)",
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_speedup_is_near_the_paper() {
        let fig = run(&ExperimentConfig::quick());
        let mean = fig.mean();
        assert!(
            (1.5..=2.2).contains(&mean),
            "mean speedup {mean:.2} (paper 1.88)"
        );
    }

    #[test]
    fn a3_and_a8_slow_down_everything_else_speeds_up() {
        let fig = run(&ExperimentConfig::quick());
        assert!(fig.of(AppId::A3).expect("A3") < 1.0, "A3 must slow down");
        assert!(fig.of(AppId::A8).expect("A8") < 1.0, "A8 must slow down");
        for &(id, s) in &fig.speedups {
            if id != AppId::A3 && id != AppId::A8 {
                assert!(s >= 1.0, "{id} should not slow down, got {s:.2}");
            }
        }
    }

    #[test]
    fn a8_matches_the_papers_point_eight() {
        let fig = run(&ExperimentConfig::quick());
        let a8 = fig.of(AppId::A8).expect("A8");
        assert!((a8 - 0.8).abs() < 0.05, "A8 speedup {a8:.3} (paper 0.8)");
    }
}
