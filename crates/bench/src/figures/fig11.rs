//! Figure 11 — the 14 sensor-sharing multi-app combinations under
//! Baseline, BEAM and BCOM (paper: BEAM saves 29% on average, offloading
//! ~70%).

use std::fmt;

use iotse_core::{AppId, Scheme};
use iotse_energy::attribution::Breakdown;

use crate::config::ExperimentConfig;

/// One combination's results.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// The apps run concurrently.
    pub combo: Vec<AppId>,
    /// Baseline breakdown.
    pub baseline: Breakdown,
    /// BEAM breakdown.
    pub beam: Breakdown,
    /// BCOM breakdown.
    pub bcom: Breakdown,
}

impl Fig11Row {
    /// BEAM saving vs Baseline.
    #[must_use]
    pub fn beam_saving(&self) -> f64 {
        1.0 - self.beam.total().ratio_of(self.baseline.total())
    }

    /// BCOM saving vs Baseline.
    #[must_use]
    pub fn bcom_saving(&self) -> f64 {
        1.0 - self.bcom.total().ratio_of(self.baseline.total())
    }

    /// A compact label like `"A2+A7"`.
    #[must_use]
    pub fn label(&self) -> String {
        self.combo
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// The Figure 11 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// The 14 combination rows, in the paper's order.
    pub rows: Vec<Fig11Row>,
}

impl Fig11 {
    /// Mean BEAM saving (paper: 29%).
    #[must_use]
    pub fn mean_beam_saving(&self) -> f64 {
        self.rows.iter().map(Fig11Row::beam_saving).sum::<f64>() / self.rows.len() as f64
    }

    /// Mean BCOM saving (paper: ~70%).
    #[must_use]
    pub fn mean_bcom_saving(&self) -> f64 {
        self.rows.iter().map(Fig11Row::bcom_saving).sum::<f64>() / self.rows.len() as f64
    }
}

/// Reproduces Figure 11. The 42 scenarios (14 combinations × 3 schemes)
/// run as one fleet on `cfg.jobs` threads.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Fig11 {
    let combos = iotse_apps::figure11_combinations();
    let mut results = cfg
        .run_fleet(
            combos
                .iter()
                .flat_map(|combo| {
                    [Scheme::Baseline, Scheme::Beam, Scheme::Bcom]
                        .into_iter()
                        .map(|scheme| cfg.scenario(scheme, combo))
                })
                .collect(),
        )
        .into_iter();
    let rows = combos
        .into_iter()
        .map(|combo| Fig11Row {
            baseline: results.next().expect("baseline ran").breakdown(),
            beam: results.next().expect("beam ran").breakdown(),
            bcom: results.next().expect("bcom ran").breakdown(),
            combo,
        })
        .collect();
    Fig11 { rows }
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 11: multi-app combinations, Baseline / BEAM / BCOM"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:15} baseline={:9.1} mJ  BEAM saves {:5.1}%  BCOM saves {:5.1}%",
                r.label(),
                r.baseline.total().as_millijoules(),
                r.beam_saving() * 100.0,
                r.bcom_saving() * 100.0
            )?;
        }
        writeln!(
            f,
            "  means: BEAM {:.1}% (paper 29%), BCOM {:.1}% (paper ~70%)",
            self.mean_beam_saving() * 100.0,
            self.mean_bcom_saving() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beam_always_saves_but_less_than_bcom() {
        let fig = run(&ExperimentConfig::quick());
        assert_eq!(fig.rows.len(), 14);
        for r in &fig.rows {
            assert!(r.beam_saving() >= 0.0, "{}: BEAM must not cost", r.label());
            assert!(
                r.bcom_saving() > r.beam_saving(),
                "{}: BCOM {:.3} must beat BEAM {:.3}",
                r.label(),
                r.bcom_saving(),
                r.beam_saving()
            );
        }
    }

    #[test]
    fn means_land_in_the_papers_neighbourhood() {
        let fig = run(&ExperimentConfig::quick());
        let beam = fig.mean_beam_saving();
        let bcom = fig.mean_bcom_saving();
        assert!(
            (0.10..=0.40).contains(&beam),
            "BEAM mean {beam:.3} (paper 0.29)"
        );
        assert!(
            (0.55..=0.90).contains(&bcom),
            "BCOM mean {bcom:.3} (paper ~0.70)"
        );
    }

    #[test]
    fn more_sharing_means_more_beam_savings() {
        // A2+A7 share their single sensor completely; A3+A5 share nothing
        // at a common rate. The paper's spread (48.2% vs 8.46%) must keep
        // its direction.
        let fig = run(&ExperimentConfig::quick());
        let by_label = |label: &str| {
            fig.rows
                .iter()
                .find(|r| r.label() == label)
                .unwrap_or_else(|| panic!("{label} present"))
                .beam_saving()
        };
        assert!(
            by_label("A2+A7") > by_label("A3+A5"),
            "full sharing must beat no sharing"
        );
    }
}
