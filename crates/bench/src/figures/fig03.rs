//! Figure 3 — absolute energy breakdown of (1) Step-Counter alone,
//! (2) M2X alone, (3) SC+M2X Baseline, (4) SC+M2X under BEAM.
//!
//! The paper measured 1902 mJ / 9071 mJ / 10 973 mJ and a ≈ 9% BEAM saving;
//! absolute joules depend on the testbed, so the reproduction targets the
//! orderings and the BEAM saving.

use std::fmt;

use iotse_core::{AppId, Scheme};
use iotse_energy::attribution::Breakdown;
use iotse_energy::report::{breakdown_chart, BreakdownRow};

use crate::config::ExperimentConfig;

/// The Figure 3 result: four labeled breakdowns (energy per window, mJ).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig03 {
    /// `(label, breakdown)` in figure order.
    pub bars: Vec<(String, Breakdown)>,
    /// The BEAM saving over the concurrent Baseline.
    pub beam_saving: f64,
}

/// Reproduces Figure 3.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Fig03 {
    let [sc, m2x, both, beam]: [_; 4] = cfg
        .run_cells(&[
            (Scheme::Baseline, &[AppId::A2]),
            (Scheme::Baseline, &[AppId::A4]),
            (Scheme::Baseline, &[AppId::A2, AppId::A4]),
            (Scheme::Beam, &[AppId::A2, AppId::A4]),
        ])
        .try_into()
        .expect("four cells");
    let beam_saving = beam.savings_vs(&both);
    let per_window = |b: Breakdown| -> Breakdown {
        Breakdown {
            data_collection: b.data_collection / f64::from(cfg.windows),
            interrupt: b.interrupt / f64::from(cfg.windows),
            data_transfer: b.data_transfer / f64::from(cfg.windows),
            app_compute: b.app_compute / f64::from(cfg.windows),
        }
    };
    Fig03 {
        bars: vec![
            ("SC".into(), per_window(sc.breakdown())),
            ("M2X".into(), per_window(m2x.breakdown())),
            ("SC+M2X: Baseline".into(), per_window(both.breakdown())),
            ("SC+M2X: BEAM".into(), per_window(beam.breakdown())),
        ],
        beam_saving,
    }
}

impl fmt::Display for Fig03 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 3: energy per window, SC / M2X / SC+M2X / +BEAM")?;
        for (label, b) in &self.bars {
            writeln!(
                f,
                "  {label:18} total={:9.1} mJ  (coll {:7.1}, int {:7.1}, tx {:8.1}, comp {:6.1})",
                b.total().as_millijoules(),
                b.data_collection.as_millijoules(),
                b.interrupt.as_millijoules(),
                b.data_transfer.as_millijoules(),
                b.app_compute.as_millijoules(),
            )?;
        }
        let reference = self.bars[2].1.total();
        let rows: Vec<BreakdownRow> = self
            .bars
            .iter()
            .map(|(l, b)| BreakdownRow {
                label: l.clone(),
                breakdown: *b,
            })
            .collect();
        write!(
            f,
            "{}",
            breakdown_chart("  normalized to SC+M2X Baseline:", &rows, reference, 50)
        )?;
        writeln!(
            f,
            "  BEAM saving over Baseline: {:.1}%   (paper: ~9%)",
            self.beam_saving * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_match_the_paper() {
        let fig = run(&ExperimentConfig::quick());
        let total = |i: usize| fig.bars[i].1.total().as_millijoules();
        // M2X alone costs more than SC alone; running both costs more than
        // either; BEAM saves a little.
        assert!(total(1) > total(0), "M2X must exceed SC");
        assert!(total(2) > total(1), "concurrent exceeds each alone");
        assert!(total(3) < total(2), "BEAM must save");
        assert!(
            (0.02..=0.25).contains(&fig.beam_saving),
            "BEAM saving {:.3} outside the plausible band",
            fig.beam_saving
        );
    }

    #[test]
    fn transfer_dominates_every_bar() {
        // §II-C: 70–80% of energy goes to data transfers in all scenarios.
        let fig = run(&ExperimentConfig::quick());
        for (label, b) in &fig.bars {
            let share = b.data_transfer.ratio_of(b.total());
            assert!(share > 0.5, "{label}: transfer share {share}");
        }
    }
}
