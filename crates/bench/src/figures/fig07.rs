//! Figure 7 — step-counter energy breakdown: Baseline vs Batching,
//! normalized to the Baseline total.

use std::fmt;

use iotse_core::{AppId, Scheme};
use iotse_energy::attribution::Breakdown;
use iotse_energy::report::{breakdown_chart, BreakdownRow};

use crate::config::ExperimentConfig;

/// The Figure 7 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig07 {
    /// Baseline breakdown.
    pub baseline: Breakdown,
    /// Batching breakdown.
    pub batching: Breakdown,
    /// Batching CPU sleep fraction (paper: 93%).
    pub batching_sleep_fraction: f64,
    /// Interrupts per run: Baseline.
    pub baseline_interrupts: u64,
    /// Interrupts per run: Batching.
    pub batching_interrupts: u64,
}

impl Fig07 {
    /// Total energy saving of Batching vs Baseline.
    #[must_use]
    pub fn saving(&self) -> f64 {
        1.0 - self.batching.total().ratio_of(self.baseline.total())
    }
}

/// Reproduces Figure 7.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Fig07 {
    let [baseline, batching]: [_; 2] = cfg
        .run_cells(&[
            (Scheme::Baseline, &[AppId::A2]),
            (Scheme::Batching, &[AppId::A2]),
        ])
        .try_into()
        .expect("two cells");
    Fig07 {
        baseline: baseline.breakdown(),
        batching: batching.breakdown(),
        batching_sleep_fraction: batching.cpu.sleep_fraction(),
        baseline_interrupts: baseline.interrupts,
        batching_interrupts: batching.interrupts,
    }
}

impl fmt::Display for Fig07 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 7: step-counter breakdown, Baseline vs Batching")?;
        let rows = vec![
            BreakdownRow {
                label: "Baseline".into(),
                breakdown: self.baseline,
            },
            BreakdownRow {
                label: "Batching".into(),
                breakdown: self.batching,
            },
        ];
        write!(
            f,
            "{}",
            breakdown_chart("", &rows, self.baseline.total(), 60)
        )?;
        writeln!(
            f,
            "  interrupts {} -> {} ; CPU sleeps {:.0}% of the time; saving {:.1}%   (paper: ~50-63%)",
            self.baseline_interrupts,
            self.batching_interrupts,
            self.batching_sleep_fraction * 100.0,
            self.saving() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_cuts_interrupts_1000_to_1() {
        let cfg = ExperimentConfig::quick();
        let fig = run(&cfg);
        assert_eq!(fig.baseline_interrupts, u64::from(cfg.windows) * 1000);
        assert_eq!(fig.batching_interrupts, u64::from(cfg.windows));
    }

    #[test]
    fn saving_and_sleep_match_the_paper_band() {
        let fig = run(&ExperimentConfig::quick());
        assert!(
            (0.45..=0.70).contains(&fig.saving()),
            "saving {:.3}",
            fig.saving()
        );
        assert!(
            fig.batching_sleep_fraction > 0.85,
            "{:.3}",
            fig.batching_sleep_fraction
        );
        // Interrupt energy nearly vanishes; transfer stays dominant.
        assert!(
            fig.batching.interrupt.as_millijoules()
                < fig.baseline.interrupt.as_millijoules() * 0.05
        );
        assert!(fig.batching.data_transfer.ratio_of(fig.batching.total()) > 0.5);
    }
}
