//! Figure 5 — CPU/MCU power-state timelines: Baseline vs Batching for the
//! step counter. In Baseline the CPU never leaves active mode; in Batching
//! it sleeps until the window's single bulk flush.

use std::fmt;

use iotse_core::cpu::CpuPhase;
use iotse_core::mcu::McuPhase;
use iotse_core::{AppId, Scenario, Scheme};
use iotse_sim::time::SimTime;

use crate::config::ExperimentConfig;

/// One device's timeline as `(start, phase-name)` change points.
pub type Timeline = Vec<(SimTime, &'static str)>;

/// The Figure 5 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig05 {
    /// Run length represented by the timelines.
    pub horizon: SimTime,
    /// Baseline CPU timeline.
    pub baseline_cpu: Timeline,
    /// Baseline MCU timeline.
    pub baseline_mcu: Timeline,
    /// Batching CPU timeline.
    pub batching_cpu: Timeline,
    /// Batching MCU timeline.
    pub batching_mcu: Timeline,
    /// Fraction of time the Batching CPU spent asleep (paper: 93%).
    pub batching_cpu_sleep_fraction: f64,
    /// Fraction of time the Baseline CPU spent asleep (paper: 0%).
    pub baseline_cpu_sleep_fraction: f64,
}

/// Reproduces Figure 5 (single step-counter app, timeline recording on).
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Fig05 {
    let scenario = |scheme: Scheme| {
        Scenario::new(scheme, iotse_apps::catalog::apps(&[AppId::A2], cfg.seed))
            .windows(cfg.windows)
            .seed(cfg.seed)
            .with_timeline()
    };
    let [baseline, batching]: [_; 2] = cfg
        .run_fleet(vec![scenario(Scheme::Baseline), scenario(Scheme::Batching)])
        .try_into()
        .expect("two scenarios");
    let cpu_names = |tl: &[(SimTime, CpuPhase)]| -> Timeline {
        tl.iter().map(|&(t, p)| (t, p.name())).collect()
    };
    let mcu_names = |tl: &[(SimTime, McuPhase)]| -> Timeline {
        tl.iter().map(|&(t, p)| (t, p.name())).collect()
    };
    Fig05 {
        horizon: SimTime::ZERO + baseline.duration,
        baseline_cpu: cpu_names(baseline.cpu_timeline.as_deref().expect("timeline on")),
        baseline_mcu: mcu_names(baseline.mcu_timeline.as_deref().expect("timeline on")),
        batching_cpu: cpu_names(batching.cpu_timeline.as_deref().expect("timeline on")),
        batching_mcu: mcu_names(batching.mcu_timeline.as_deref().expect("timeline on")),
        batching_cpu_sleep_fraction: batching.cpu.sleep_fraction(),
        baseline_cpu_sleep_fraction: baseline.cpu.sleep_fraction(),
    }
}

/// Renders a timeline as a fixed-width strip: one glyph per time slot
/// (`#` busy, `.` idle-active, `t` transition, `s` sleep, `z` deep sleep).
#[must_use]
pub fn render_strip(timeline: &Timeline, horizon: SimTime, width: usize) -> String {
    let glyph = |name: &str| match name {
        "busy" => '#',
        "idle-active" | "idle" => '.',
        "transition" => 't',
        "sleep" => 's',
        "deep-sleep" => 'z',
        _ => '?',
    };
    let mut out = String::with_capacity(width);
    let total = horizon.as_nanos().max(1);
    for slot in 0..width {
        let t = SimTime::from_nanos(total * slot as u64 / width as u64);
        // The phase in effect at t: last change point at or before t.
        let name = timeline
            .iter()
            .take_while(|&&(start, _)| start <= t)
            .last()
            .map_or("?", |&(_, n)| n);
        out.push(glyph(name));
    }
    out
}

impl fmt::Display for Fig05 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 5: power-state timelines over {} (step counter)",
            self.horizon
        )?;
        writeln!(
            f,
            "  legend: # busy, . idle-active, t transition, s sleep, z deep-sleep"
        )?;
        writeln!(
            f,
            "  (a) Baseline CPU : {}",
            render_strip(&self.baseline_cpu, self.horizon, 100)
        )?;
        writeln!(
            f,
            "      Baseline MCU : {}",
            render_strip(&self.baseline_mcu, self.horizon, 100)
        )?;
        writeln!(
            f,
            "  (b) Batching CPU : {}",
            render_strip(&self.batching_cpu, self.horizon, 100)
        )?;
        writeln!(
            f,
            "      Batching MCU : {}",
            render_strip(&self.batching_mcu, self.horizon, 100)
        )?;
        writeln!(
            f,
            "  CPU sleep fraction: Baseline {:.0}%, Batching {:.0}%   (paper: 0% / 93%)",
            self.baseline_cpu_sleep_fraction * 100.0,
            self.batching_cpu_sleep_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_cpu_never_sleeps_batching_mostly_sleeps() {
        let fig = run(&ExperimentConfig::quick());
        assert_eq!(
            fig.baseline_cpu_sleep_fraction, 0.0,
            "Figure 5a: always active"
        );
        assert!(
            fig.batching_cpu_sleep_fraction > 0.85,
            "Figure 5b: sleeps ~93%, got {:.2}",
            fig.batching_cpu_sleep_fraction
        );
        // And the baseline timeline indeed contains no sleep states.
        assert!(fig
            .baseline_cpu
            .iter()
            .all(|&(_, n)| n != "sleep" && n != "deep-sleep"));
        assert!(fig.batching_cpu.iter().any(|&(_, n)| n == "sleep"));
    }

    #[test]
    fn strips_render_at_requested_width() {
        let fig = run(&ExperimentConfig::quick());
        let strip = render_strip(&fig.batching_cpu, fig.horizon, 80);
        assert_eq!(strip.chars().count(), 80);
        assert!(
            strip.contains('s'),
            "batching strip must show sleep: {strip}"
        );
        assert!(!strip.contains('?'), "unknown phases rendered: {strip}");
    }
}
