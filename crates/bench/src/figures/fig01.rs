//! Figure 1 — energy of an idle hub vs. the 10-app baseline average
//! (the paper's ≈ 9.5× motivation).

use std::fmt;

use iotse_core::{AppId, Scenario, Scheme};
use iotse_sim::time::SimDuration;

use crate::config::ExperimentConfig;

/// The Figure 1 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig01 {
    /// Average power of each A1–A10 Baseline run, watts.
    pub per_app_watts: Vec<(AppId, f64)>,
    /// Mean baseline power, watts.
    pub baseline_watts: f64,
    /// Idle-hub power, watts.
    pub idle_watts: f64,
}

impl Fig01 {
    /// The headline ratio (the paper measured ≈ 9.5×).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.baseline_watts / self.idle_watts
    }
}

/// Reproduces Figure 1. The idle run and the ten per-app baselines run as
/// one fleet on `cfg.jobs` threads.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Fig01 {
    let mut scenarios =
        vec![Scenario::idle(SimDuration::from_secs(u64::from(cfg.windows))).seed(cfg.seed)];
    scenarios.extend(
        AppId::LIGHT
            .iter()
            .map(|&id| cfg.scenario(Scheme::Baseline, &[id])),
    );
    let mut results = cfg.run_fleet(scenarios).into_iter();
    let idle = results.next().expect("idle ran");
    let per_app_watts: Vec<(AppId, f64)> = AppId::LIGHT
        .iter()
        .zip(results)
        .map(|(&id, r)| (id, r.average_power().as_watts()))
        .collect();
    let baseline_watts =
        per_app_watts.iter().map(|&(_, w)| w).sum::<f64>() / per_app_watts.len() as f64;
    Fig01 {
        per_app_watts,
        baseline_watts,
        idle_watts: idle.average_power().as_watts(),
    }
}

impl fmt::Display for Fig01 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 1: idle hub vs 10-app Baseline average")?;
        writeln!(f, "  baseline mean power : {:.3} W", self.baseline_watts)?;
        writeln!(f, "  idle hub power      : {:.3} W", self.idle_watts)?;
        writeln!(
            f,
            "  ratio               : {:.1}x   (paper: 9.5x)",
            self.ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_ratio_band() {
        let fig = run(&ExperimentConfig::quick());
        assert!(
            (8.0..=11.5).contains(&fig.ratio()),
            "idle ratio {} outside the paper band",
            fig.ratio()
        );
        assert_eq!(fig.per_app_watts.len(), 10);
        let text = fig.to_string();
        assert!(text.contains("Figure 1"));
    }
}
