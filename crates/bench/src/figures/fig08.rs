//! Figure 8 — step-counter per-window timing breakdown: Baseline vs COM.
//!
//! The paper's bars: Baseline 100 (collection) + 48 (interrupt) + 192
//! (transfer) + 2.21 (compute) ms; COM 100 + 21.7 ms.

use std::fmt;

use iotse_core::result::RoutineDurations;
use iotse_core::{AppId, Scheme};

use crate::config::ExperimentConfig;

/// The Figure 8 result: mean per-window routine durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig08 {
    /// Baseline routine durations.
    pub baseline: RoutineDurations,
    /// COM routine durations.
    pub com: RoutineDurations,
}

impl Fig08 {
    /// The performance ratio Baseline/COM (the paper's speedup argument:
    /// `(21.7 − 2.21) < (48 + 192)` makes COM faster).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.baseline.total().as_secs_f64() / self.com.total().as_secs_f64()
    }
}

/// Reproduces Figure 8.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Fig08 {
    let [baseline, com]: [_; 2] = cfg
        .run_cells(&[
            (Scheme::Baseline, &[AppId::A2]),
            (Scheme::Com, &[AppId::A2]),
        ])
        .try_into()
        .expect("two cells");
    Fig08 {
        baseline: baseline.app(AppId::A2).expect("ran").mean_routines(),
        com: com.app(AppId::A2).expect("ran").mean_routines(),
    }
}

fn row(f: &mut fmt::Formatter<'_>, label: &str, d: &RoutineDurations) -> fmt::Result {
    writeln!(
        f,
        "  {label:9} coll={:7.2} ms  int={:6.2} ms  tx={:7.2} ms  comp={:6.2} ms  total={:7.2} ms",
        d.data_collection.as_millis_f64(),
        d.interrupt.as_millis_f64(),
        d.data_transfer.as_millis_f64(),
        d.app_compute.as_millis_f64(),
        d.total().as_millis_f64(),
    )
}

impl fmt::Display for Fig08 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 8: step-counter timing per window, Baseline vs COM"
        )?;
        row(f, "Baseline", &self.baseline)?;
        row(f, "COM", &self.com)?;
        writeln!(
            f,
            "  paper:    Baseline 100 + 48 + 192 + 2.21 ms; COM 100 + 21.7 ms"
        )?;
        writeln!(f, "  speedup = {:.2}x", self.speedup())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_bars_match_the_papers_milliseconds() {
        let fig = run(&ExperimentConfig::quick());
        let b = fig.baseline;
        assert!(
            (b.data_collection.as_millis_f64() - 100.0).abs() < 2.0,
            "collection"
        );
        assert!(
            (b.interrupt.as_millis_f64() - 48.0).abs() < 1.0,
            "interrupt"
        );
        assert!(
            (b.data_transfer.as_millis_f64() - 192.0).abs() < 3.0,
            "transfer"
        );
        assert!(
            (b.app_compute.as_millis_f64() - 2.21).abs() < 0.1,
            "compute"
        );
    }

    #[test]
    fn com_eliminates_interrupts_and_transfers() {
        let fig = run(&ExperimentConfig::quick());
        let c = fig.com;
        assert!((c.data_collection.as_millis_f64() - 100.0).abs() < 2.0);
        assert!((c.app_compute.as_millis_f64() - 21.7).abs() < 0.5);
        // One result interrupt + a 4-byte transfer remain: well under 1 ms.
        assert!(
            c.interrupt.as_millis_f64() < 0.2,
            "{}",
            c.interrupt.as_millis_f64()
        );
        assert!(
            c.data_transfer.as_millis_f64() < 0.5,
            "{}",
            c.data_transfer.as_millis_f64()
        );
        // The paper's inequality: COM is faster despite the slower MCU.
        assert!(fig.speedup() > 2.0, "speedup {:.2}", fig.speedup());
    }
}
