//! Tables I and II.
//!
//! Table I is the sensor catalog printed back out; Table II's derived
//! columns (sensor data volume, interrupt counts) are **measured from
//! simulation** — the executor's counters must reproduce the paper's
//! numbers, which is the strongest end-to-end check of the data path.

use std::fmt;

use iotse_core::{AppId, Scheme};

use crate::config::ExperimentConfig;

/// The Table I result (a formatted view over the catalog).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Formatted rows.
    pub rows: Vec<String>,
}

/// Reproduces Table I.
#[must_use]
pub fn table1() -> Table1 {
    let rows = iotse_sensors::catalog::all()
        .into_iter()
        .map(|s| {
            format!(
                "{:7} {:14} {:13} read={:>9} power(min/typ/max)={:>7.2}/{:>7.2}/{:>7.2} mW out=[{}] max={} qos={} {}",
                s.id.to_string(),
                s.name,
                s.bus.to_string(),
                s.read_time.to_string(),
                s.power_min.as_milliwatts(),
                s.power_typical.as_milliwatts(),
                s.power_max.as_milliwatts(),
                s.payload,
                s.max_rate_hz.map_or("-".into(), |h| format!("{h} Hz")),
                s.qos_rate_hz.map_or("-".into(), |h| format!("{h} Hz")),
                if s.mcu_friendly { "MCU-friendly" } else { "MCU-unfriendly" },
            )
        })
        .collect();
    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I: sensor specifications")?;
        for r in &self.rows {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// One measured Table II row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// The app.
    pub id: AppId,
    /// App name.
    pub name: String,
    /// Sensors used (Table II "Sensor Used").
    pub sensors: Vec<String>,
    /// Declared sensor data per window, KB.
    pub declared_kb: f64,
    /// Measured bytes moved per window under Baseline.
    pub measured_bytes: u64,
    /// Measured interrupts per window under Baseline.
    pub measured_interrupts: u64,
}

/// The Table II result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// A1–A11 rows.
    pub rows: Vec<Table2Row>,
}

/// Reproduces Table II by running each app one window under Baseline and
/// reading the executor's counters.
#[must_use]
pub fn table2(cfg: &ExperimentConfig) -> Table2 {
    let one_window = ExperimentConfig { windows: 1, ..*cfg };
    let results = one_window.run_fleet(
        AppId::ALL
            .iter()
            .map(|&id| one_window.scenario(Scheme::Baseline, &[id]))
            .collect(),
    );
    let rows = AppId::ALL
        .iter()
        .zip(results)
        .map(|(&id, r)| {
            let app = iotse_apps::catalog::app(id, cfg.seed);
            let declared_kb = iotse_core::workload::window_bytes(app.as_ref()) as f64 / 1024.0;
            let sensors = app.sensors().iter().map(|u| u.sensor.to_string()).collect();
            let name = app.name().to_string();
            Table2Row {
                id,
                name,
                sensors,
                declared_kb,
                measured_bytes: r.bytes_transferred,
                measured_interrupts: r.interrupts,
            }
        })
        .collect();
    Table2 { rows }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table II: workload features (measured under Baseline, one window)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:4} {:32} sensors=[{}] data={:6.2} KB interrupts={}",
                r.id.to_string(),
                r.name,
                r.sensors.join(","),
                r.measured_bytes as f64 / 1024.0,
                r.measured_interrupts,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_prints_all_rows() {
        let t = table1();
        assert_eq!(t.rows.len(), 11);
        let text = t.to_string();
        assert!(text.contains("Accelerometer"));
        assert!(text.contains("MCU-unfriendly"));
    }

    #[test]
    fn measured_counters_match_declared_table2() {
        // The end-to-end data-path check: simulation counters must equal
        // the paper's Table II for every app.
        let t = table2(&ExperimentConfig::quick());
        let expected: &[(AppId, u64, f64)] = &[
            (AppId::A1, 2000, 11.72),
            (AppId::A2, 1000, 11.72),
            (AppId::A3, 20, 0.16),
            (AppId::A4, 2220, 20.47),
            (AppId::A5, 1221, 36.66),
            (AppId::A6, 2000, 11.72),
            (AppId::A7, 1000, 11.72),
            (AppId::A8, 1000, 3.91),
            (AppId::A9, 1, 24.0),
            (AppId::A10, 1, 0.5),
            (AppId::A11, 1000, 5.86),
        ];
        for (id, interrupts, kb) in expected {
            let row = t.rows.iter().find(|r| r.id == *id).expect("row");
            assert_eq!(row.measured_interrupts, *interrupts, "{id} interrupts");
            let measured_kb = row.measured_bytes as f64 / 1024.0;
            assert!(
                (measured_kb - kb).abs() < 0.01,
                "{id}: {measured_kb:.2} vs {kb}"
            );
            assert!((row.declared_kb - kb).abs() < 0.01, "{id} declared");
        }
    }
}
