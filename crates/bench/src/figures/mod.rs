//! One module per paper figure/table, each exposing `run(&ExperimentConfig)`
//! returning a typed result with a `Display` rendering.

pub mod fig01;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod tables;
