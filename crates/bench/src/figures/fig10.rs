//! Figure 10 — normalized energy breakdown of all ten light-weight apps
//! under Baseline, Batching and COM (the paper's headline single-app
//! result: Batching saves 52% on average, COM 85%).

use std::fmt;

use iotse_core::{AppId, Scheme};
use iotse_energy::attribution::Breakdown;
use iotse_energy::report::{breakdown_chart, BreakdownRow};

use crate::config::ExperimentConfig;

/// One app's three bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// The app.
    pub id: AppId,
    /// Baseline breakdown.
    pub baseline: Breakdown,
    /// Batching breakdown.
    pub batching: Breakdown,
    /// COM breakdown.
    pub com: Breakdown,
}

impl Fig10Row {
    /// Batching saving vs Baseline.
    #[must_use]
    pub fn batching_saving(&self) -> f64 {
        1.0 - self.batching.total().ratio_of(self.baseline.total())
    }

    /// COM saving vs Baseline.
    #[must_use]
    pub fn com_saving(&self) -> f64 {
        1.0 - self.com.total().ratio_of(self.baseline.total())
    }
}

/// The Figure 10 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// A1–A10 rows.
    pub rows: Vec<Fig10Row>,
}

impl Fig10 {
    /// Mean Batching saving (paper: 52%).
    #[must_use]
    pub fn mean_batching_saving(&self) -> f64 {
        self.rows.iter().map(Fig10Row::batching_saving).sum::<f64>() / self.rows.len() as f64
    }

    /// Mean COM saving (paper: 85%).
    #[must_use]
    pub fn mean_com_saving(&self) -> f64 {
        self.rows.iter().map(Fig10Row::com_saving).sum::<f64>() / self.rows.len() as f64
    }
}

/// Reproduces Figure 10. The 30 scenarios (10 apps × 3 schemes) run as one
/// fleet on `cfg.jobs` threads.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Fig10 {
    let cells: Vec<_> = AppId::LIGHT
        .iter()
        .flat_map(|&id| {
            [Scheme::Baseline, Scheme::Batching, Scheme::Com]
                .into_iter()
                .map(move |scheme| (scheme, id))
        })
        .collect();
    let mut results = cfg
        .run_fleet(
            cells
                .iter()
                .map(|&(scheme, id)| cfg.scenario(scheme, &[id]))
                .collect(),
        )
        .into_iter();
    let rows = AppId::LIGHT
        .iter()
        .map(|&id| Fig10Row {
            id,
            baseline: results.next().expect("baseline ran").breakdown(),
            batching: results.next().expect("batching ran").breakdown(),
            com: results.next().expect("com ran").breakdown(),
        })
        .collect();
    Fig10 { rows }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 10: normalized breakdown per app x scheme (lower is better)"
        )?;
        for r in &self.rows {
            let rows = vec![
                BreakdownRow {
                    label: format!("{} Baseline", r.id),
                    breakdown: r.baseline,
                },
                BreakdownRow {
                    label: format!("{} Batching", r.id),
                    breakdown: r.batching,
                },
                BreakdownRow {
                    label: format!("{} COM", r.id),
                    breakdown: r.com,
                },
            ];
            write!(f, "{}", breakdown_chart("", &rows, r.baseline.total(), 50))?;
        }
        writeln!(
            f,
            "  mean savings: Batching {:.1}% (paper 52%), COM {:.1}% (paper 85%)",
            self.mean_batching_saving() * 100.0,
            self.mean_com_saving() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_savings_are_in_the_papers_neighbourhood() {
        let fig = run(&ExperimentConfig::quick());
        let batching = fig.mean_batching_saving();
        let com = fig.mean_com_saving();
        assert!(
            (0.45..=0.65).contains(&batching),
            "Batching mean {batching:.3} (paper 0.52)"
        );
        assert!(
            (0.78..=0.92).contains(&com),
            "COM mean {com:.3} (paper 0.85)"
        );
    }

    #[test]
    fn com_beats_batching_for_every_app() {
        let fig = run(&ExperimentConfig::quick());
        for r in &fig.rows {
            assert!(
                r.com_saving() > r.batching_saving(),
                "{}: COM {:.3} vs Batching {:.3}",
                r.id,
                r.com_saving(),
                r.batching_saving()
            );
        }
    }

    #[test]
    fn transfer_dominates_every_baseline_bar() {
        // §IV-E1: the data-transfer routine is ~81% of Baseline energy.
        let fig = run(&ExperimentConfig::quick());
        for r in &fig.rows {
            let share = r.baseline.data_transfer.ratio_of(r.baseline.total());
            assert!(share > 0.6, "{}: transfer share {share:.3}", r.id);
        }
    }
}
