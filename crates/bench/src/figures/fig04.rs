//! Figure 4 — who spends the data-transfer energy: CPU (77%), MCU (13%),
//! or the physical medium (10%).
//!
//! The paper's point: both processors are held hostage for the whole
//! transfer (no DMA), so ~90% of transfer-interval energy is the two
//! processors and only ~10% moves bits. The reproduction measures the
//! per-device energy over the actual transfer intervals of a Step-Counter
//! Baseline run.

use std::fmt;

use iotse_core::calibration::Calibration;
use iotse_core::{AppId, Scheme};
use iotse_sim::time::SimDuration;

use crate::config::ExperimentConfig;

/// The Figure 4 result: shares of transfer-interval energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig04 {
    /// Total time the bus was driven.
    pub transfer_busy: SimDuration,
    /// CPU share of transfer-interval energy.
    pub cpu_share: f64,
    /// MCU share.
    pub mcu_share: f64,
    /// Physical-medium (bus) share.
    pub link_share: f64,
}

/// Reproduces Figure 4 from a Step-Counter Baseline run.
#[must_use]
pub fn run(cfg: &ExperimentConfig) -> Fig04 {
    let r = cfg.run(Scheme::Baseline, &[AppId::A2]);
    let cal = Calibration::paper();
    // Total bus-driven time, from the per-window processing accounting.
    let transfer_busy: SimDuration = r
        .app(AppId::A2)
        .expect("A2 ran")
        .windows
        .iter()
        .map(|w| w.processing.data_transfer)
        .sum();
    // During a transfer, all three draw simultaneously (§IV-F: no DMA —
    // "both CPU and MCU have to be involved during the transfers").
    let cpu = cal.cpu_active * transfer_busy;
    let mcu = cal.mcu_active * transfer_busy;
    let link = cal.link_active * transfer_busy;
    let total = cpu + mcu + link;
    Fig04 {
        transfer_busy,
        cpu_share: cpu.ratio_of(total),
        mcu_share: mcu.ratio_of(total),
        link_share: link.ratio_of(total),
    }
}

impl fmt::Display for Fig04 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4: data-transfer energy split (Step-Counter Baseline)"
        )?;
        writeln!(f, "  bus driven for      : {}", self.transfer_busy)?;
        writeln!(
            f,
            "  CPU waiting/driving : {:5.1}%   (paper: 77%)",
            self.cpu_share * 100.0
        )?;
        writeln!(
            f,
            "  MCU participation   : {:5.1}%   (paper: 13%)",
            self.mcu_share * 100.0
        )?;
        writeln!(
            f,
            "  physical transfer   : {:5.1}%   (paper: 10%)",
            self.link_share * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_matches_the_paper() {
        let fig = run(&ExperimentConfig::quick());
        assert!(
            (fig.cpu_share - 0.77).abs() < 0.02,
            "cpu {:.3}",
            fig.cpu_share
        );
        assert!(
            (fig.mcu_share - 0.13).abs() < 0.02,
            "mcu {:.3}",
            fig.mcu_share
        );
        assert!(
            (fig.link_share - 0.10).abs() < 0.02,
            "link {:.3}",
            fig.link_share
        );
        let total = fig.cpu_share + fig.mcu_share + fig.link_share;
        assert!(
            (total - 1.0).abs() < 1e-6,
            "shares must sum to 1, got {total}"
        );
    }

    #[test]
    fn bus_time_matches_per_sample_cost() {
        // 1000 samples × 0.192 ms per window (Figure 8).
        let cfg = ExperimentConfig::quick();
        let fig = run(&cfg);
        let per_window = fig.transfer_busy.as_millis_f64() / f64::from(cfg.windows);
        assert!(
            (per_window - 192.0).abs() < 2.0,
            "per-window bus time {per_window} ms"
        );
    }
}
