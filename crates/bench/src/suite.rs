//! The deterministic microbenchmark suite behind the `bench` binary.
//!
//! Nine sections, mirroring the questions the ROADMAP's "fast as the
//! hardware allows" goal keeps asking:
//!
//! * **executor** — full-scenario event throughput per scheme (the
//!   `figures`-equivalent load: real Table II apps through the real
//!   executor).
//! * **queue** — raw event-engine schedule+drain throughput of dense
//!   periodic ticks at 1k/100k/1M pending events, the timer wheel vs the
//!   reference binary heap (see `iotse_sim::queue`), with the fired-event
//!   count gated exactly.
//! * **kernel** — per-kernel runtime of all eleven Table 2 workloads,
//!   computing over a real sensor window sampled from [`PhysicalWorld`].
//! * **fleet** — scaling of the scenario fleet at 1/2/4/8 worker threads.
//! * **overhead** — the cost of full observability (trace + metrics +
//!   timelines) against a bare run of the same scenario.
//! * **compute_cache** — the five-scheme fleet over the two heaviest
//!   memoizable kernels (A4 JPEG, A9 DTW) from a cleared compute cache,
//!   cache on vs off, with deterministic hit/miss counters.
//! * **robustness** — the suite scenario under the committed demo fault
//!   scripts, per scheme, with exact-gated fault counters
//!   (`faults_injected`, `samples_dropped`, `bytes_corrupted`).
//! * **telemetry** — the suite scenario per scheme with windowed
//!   telemetry on under the demo faults, with exact-gated telemetry
//!   counters (`alerts_fired`, `series_points`, `detector_evals`); the
//!   `overhead` section's `telemetry` case prices the recording path's
//!   wall time.
//! * **scenarios** — the committed `scenarios/` corpus swept on a jobs-1
//!   fleet, with exact-gated grading counters (`scenarios_run`,
//!   `expectations_evaluated`, `expectations_failed` — the last pinned at
//!   0: a failing committed scenario is a regression by definition).
//!
//! Every case reports wall time (advisory) plus the deterministic cost
//! counters of [`crate::report`]. Heap counting needs the `bench` binary's
//! `GlobalAlloc` wrapper, which cannot live in this `#![forbid(unsafe_code)]`
//! library — so [`run_suite`] takes the counter as a *probe* closure and
//! stays fully testable without it.

use std::collections::BTreeMap;

use iotse_apps::catalog;
use iotse_core::runner::Fleet;
use iotse_core::workload::{WindowData, Workload};
use iotse_core::{AppId, RunResult, Scenario, Scheme};
use iotse_sensors::world::{PhysicalWorld, WorldConfig};
use iotse_sim::engine::{Engine, RunOutcome};
use iotse_sim::rng::SeedTree;
use iotse_sim::time::{SimDuration, SimTime};

use crate::report::{BenchEntry, BenchReport};
use crate::stopwatch::{measure_with, SampleBudget};

/// The seed every suite case runs under.
pub const SUITE_SEED: u64 = 42;
/// Windows per scenario case — small enough for CI, large enough to hit
/// every flush/complete path.
pub const SUITE_WINDOWS: u32 = 2;
/// Fleet rungs measured by the `fleet` section.
pub const FLEET_RUNGS: [usize; 4] = [1, 2, 4, 8];
/// The app pair used by scenario cases (shares a sensor under BEAM).
pub const SUITE_APPS: [AppId; 2] = [AppId::A2, AppId::A7];
/// The app pair behind the `compute_cache` section: the two heaviest
/// memoizable Table 2 kernels, where cross-scheme reuse pays most.
pub const CACHE_APPS: [AppId; 2] = [AppId::A4, AppId::A9];
/// Pending-event rungs measured by the `queue` section.
pub const QUEUE_RUNGS: [(usize, &str); 3] = [
    (1_000, "pending-1k"),
    (100_000, "pending-100k"),
    (1_000_000, "pending-1m"),
];
/// Devices sharing each tick instant in the `queue` section — same-instant
/// ties exercise the engine's batched same-tick drain.
const QUEUE_DEVICES: usize = 4;

/// The deterministic output of one case run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseOutput {
    /// Simulation events executed.
    pub events: u64,
    /// MCU→CPU payload bytes moved.
    pub bus_bytes: u64,
    /// Compute-cache hits (nonzero only for `compute_cache` cases, which
    /// run from a cleared cache).
    pub cache_hits: u64,
    /// Compute-cache misses (see [`CaseOutput::cache_hits`]).
    pub cache_misses: u64,
    /// Fault firings (nonzero only for `robustness` cases).
    pub faults_injected: u64,
    /// Sampling events lost to dropout (see [`CaseOutput::faults_injected`]).
    pub samples_dropped: u64,
    /// Wire bytes corrupted (see [`CaseOutput::faults_injected`]).
    pub bytes_corrupted: u64,
    /// Telemetry alerts fired (nonzero only for `telemetry` cases).
    pub alerts_fired: u64,
    /// Time-series points recorded (see [`CaseOutput::alerts_fired`]).
    pub series_points: u64,
    /// Detector/watchdog update calls (see [`CaseOutput::alerts_fired`]).
    pub detector_evals: u64,
    /// Scenario files graded (nonzero only for `scenarios` cases).
    pub scenarios_run: u64,
    /// Expectation rows graded (see [`CaseOutput::scenarios_run`]).
    pub expectations_evaluated: u64,
    /// Expectation rows failed (see [`CaseOutput::scenarios_run`]).
    pub expectations_failed: u64,
}

impl CaseOutput {
    /// No simulated traffic (kernel-only cases).
    pub const NONE: CaseOutput = CaseOutput {
        events: 0,
        bus_bytes: 0,
        cache_hits: 0,
        cache_misses: 0,
        faults_injected: 0,
        samples_dropped: 0,
        bytes_corrupted: 0,
        alerts_fired: 0,
        series_points: 0,
        detector_evals: 0,
        scenarios_run: 0,
        expectations_evaluated: 0,
        expectations_failed: 0,
    };

    fn of(result: &RunResult) -> CaseOutput {
        let (alerts_fired, series_points, detector_evals) =
            result.telemetry.as_ref().map_or((0, 0, 0), |t| {
                (t.alerts.len() as u64, t.points_recorded(), t.detector_evals)
            });
        CaseOutput {
            events: result.events_executed,
            bus_bytes: result.bytes_transferred,
            faults_injected: result.faults.faults_injected,
            samples_dropped: result.faults.samples_dropped,
            bytes_corrupted: result.faults.bytes_corrupted,
            alerts_fired,
            series_points,
            detector_evals,
            ..CaseOutput::NONE
        }
    }

    fn accumulate(results: &[RunResult]) -> CaseOutput {
        results
            .iter()
            .map(CaseOutput::of)
            .fold(CaseOutput::NONE, |acc, c| CaseOutput {
                events: acc.events + c.events,
                bus_bytes: acc.bus_bytes + c.bus_bytes,
                faults_injected: acc.faults_injected + c.faults_injected,
                samples_dropped: acc.samples_dropped + c.samples_dropped,
                bytes_corrupted: acc.bytes_corrupted + c.bytes_corrupted,
                alerts_fired: acc.alerts_fired + c.alerts_fired,
                series_points: acc.series_points + c.series_points,
                detector_evals: acc.detector_evals + c.detector_evals,
                ..acc
            })
    }
}

/// One benchmarkable case.
pub struct Case {
    /// Suite section (`executor`, `queue`, `kernel`, `fleet`, `overhead`,
    /// `compute_cache`, `robustness`, `telemetry`, `scenarios`).
    pub section: &'static str,
    /// Workload label.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// `true` if the case runs entirely on the calling thread, so heap
    /// counting is deterministic. Multi-threaded cases record 0 allocations
    /// (worker-thread interleaving would make the count racy).
    pub count_allocs: bool,
    /// Runs the case once, returning its deterministic counters.
    pub run: Box<dyn FnMut() -> CaseOutput>,
}

impl std::fmt::Debug for Case {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Case")
            .field("section", &self.section)
            .field("workload", &self.workload)
            .field("scheme", &self.scheme)
            .field("count_allocs", &self.count_allocs)
            .finish()
    }
}

fn scenario(scheme: Scheme) -> Scenario {
    Scenario::new(scheme, catalog::apps(&SUITE_APPS, SUITE_SEED))
        .windows(SUITE_WINDOWS)
        .seed(SUITE_SEED)
}

/// Samples one real window of `app`'s sensors from a fresh world — the
/// input the kernel cases compute over (same acquisition the executor
/// would do, minus the energy accounting).
fn window_input(app: &dyn Workload, seed: u64) -> WindowData {
    let seeds = SeedTree::new(seed);
    let mut world = PhysicalWorld::new(&seeds, WorldConfig::default());
    let window = app.window();
    let start = SimTime::ZERO;
    let mut data = WindowData {
        window: 0,
        start,
        end: start + window,
        samples: BTreeMap::new(),
    };
    for u in app.sensors() {
        let interval = window / u64::from(u.samples_per_window);
        for i in 0..u.samples_per_window {
            let t = start + interval * u64::from(i);
            if let Ok(s) = world.read(u.sensor, t) {
                data.samples.entry(s.sensor).or_default().push(s);
            }
        }
    }
    data
}

/// Builds every suite case, in report order.
#[must_use]
pub fn cases() -> Vec<Case> {
    let mut out = Vec::new();

    // (a) Executor event throughput per scheme.
    for scheme in Scheme::ALL {
        out.push(Case {
            section: "executor",
            workload: "A2+A7".into(),
            scheme: scheme.to_string().to_ascii_lowercase(),
            count_allocs: true,
            run: Box::new(move || CaseOutput::of(&scenario(scheme).run())),
        });
    }

    // (b) Raw event-engine throughput: schedule + drain n periodic ticks
    // (QUEUE_DEVICES per instant, 1 ms apart — the paper's dominant
    // traffic shape), timer wheel vs reference heap. The engine drains to
    // empty, so `events` is exactly n and the baseline gates it bitwise.
    fn queue_tick(fired: &mut u64, _: &mut Engine<u64>, _: u64, _: u64) {
        *fired += 1;
    }
    for (n, label) in QUEUE_RUNGS {
        for (backend, reference) in [("wheel", false), ("heap", true)] {
            out.push(Case {
                section: "queue",
                workload: label.into(),
                scheme: backend.into(),
                count_allocs: true,
                run: Box::new(move || {
                    let mut engine: Engine<u64> = if reference {
                        Engine::reference_with_capacity(n)
                    } else {
                        Engine::with_capacity(n)
                    };
                    engine.schedule_call_batch(
                        "bench_tick",
                        queue_tick,
                        (0..n).map(|i| {
                            let t = SimTime::ZERO
                                + SimDuration::from_micros(1_000) * ((i / QUEUE_DEVICES) as u64);
                            (t, i as u64, 0)
                        }),
                    );
                    let mut fired = 0u64;
                    let outcome = engine.run(&mut fired);
                    assert!(matches!(outcome, RunOutcome::Drained));
                    assert_eq!(fired, n as u64, "queue case lost events");
                    CaseOutput {
                        events: engine.events_executed(),
                        ..CaseOutput::NONE
                    }
                }),
            });
        }
    }

    // (c) Per-kernel runtimes for all eleven Table 2 workloads.
    for id in AppId::ALL {
        let mut app = catalog::app(id, SUITE_SEED);
        let input = window_input(app.as_ref(), SUITE_SEED);
        out.push(Case {
            section: "kernel",
            workload: id.to_string(),
            scheme: "kernel".into(),
            count_allocs: true,
            run: Box::new(move || {
                std::hint::black_box(app.compute(&input));
                CaseOutput::NONE
            }),
        });
    }

    // (d) Fleet scaling: the five-scheme scenario set across worker counts.
    for jobs in FLEET_RUNGS {
        out.push(Case {
            section: "fleet",
            workload: "5-schemes-A2+A7".into(),
            scheme: format!("jobs-{jobs}"),
            count_allocs: jobs == 1, // Fleet(1) runs on the calling thread
            run: Box::new(move || {
                let scenarios: Vec<Scenario> = Scheme::ALL.iter().map(|&s| scenario(s)).collect();
                CaseOutput::accumulate(&Fleet::new(jobs).run(scenarios))
            }),
        });
    }

    // (e) Instrumentation overhead: bare vs. fully-observed run, plus the
    // telemetry layer alone — its wall cost is the advisory price of the
    // windowed recording path.
    #[derive(Clone, Copy)]
    enum Instrumentation {
        Bare,
        Full,
        Telemetry,
    }
    for (label, mode) in [
        ("bare", Instrumentation::Bare),
        ("instrumented", Instrumentation::Full),
        ("telemetry", Instrumentation::Telemetry),
    ] {
        out.push(Case {
            section: "overhead",
            workload: "A2+A7@batching".into(),
            scheme: label.into(),
            count_allocs: true,
            run: Box::new(move || {
                let s = match mode {
                    Instrumentation::Bare => scenario(Scheme::Batching),
                    Instrumentation::Full => scenario(Scheme::Batching)
                        .with_trace()
                        .with_metrics()
                        .with_timeline(),
                    Instrumentation::Telemetry => scenario(Scheme::Batching).with_telemetry(),
                };
                CaseOutput::of(&s.run())
            }),
        });
    }

    // (f) Cross-scheme memoization: the five-scheme fleet over the two
    // heaviest memoizable kernels, always from a cleared compute cache so
    // the hit/miss counters are a pure function of the scenario set.
    for (label, cached) in [("on", true), ("off", false)] {
        out.push(Case {
            section: "compute_cache",
            workload: "5-schemes-A4+A9".into(),
            scheme: label.into(),
            count_allocs: true,
            run: Box::new(move || {
                iotse_core::compute_cache::clear();
                let scenarios: Vec<Scenario> = Scheme::ALL
                    .iter()
                    .map(|&s| {
                        let s = Scenario::new(s, catalog::apps(&CACHE_APPS, SUITE_SEED))
                            .windows(SUITE_WINDOWS)
                            .seed(SUITE_SEED);
                        if cached {
                            s
                        } else {
                            s.without_compute_cache()
                        }
                    })
                    .collect();
                let mut output = CaseOutput::accumulate(&Fleet::new(1).run(scenarios));
                let stats = iotse_core::compute_cache::stats();
                output.cache_hits = stats.hits;
                output.cache_misses = stats.misses;
                output
            }),
        });
    }

    // (g) Robustness: the suite scenario per scheme under the committed
    // demo fault scripts (every fault kind fires). The fault counters are
    // a pure replay of the seeded plan, so the baseline gates them exactly.
    for scheme in Scheme::ALL {
        out.push(Case {
            section: "robustness",
            workload: "A2+A7@demo-faults".into(),
            scheme: scheme.to_string().to_ascii_lowercase(),
            count_allocs: true,
            run: Box::new(move || {
                CaseOutput::of(
                    &scenario(scheme)
                        .faults(iotse_core::robustness::demo_scripts())
                        .run(),
                )
            }),
        });
    }

    // (h) Windowed telemetry: the suite scenario per scheme with telemetry
    // on and the demo fault scripts injected, so the interrupt-storm window
    // exercises the CUSUM detectors. Alerts, points and evals are pure
    // folds over the deterministic series — the baseline gates them exactly
    // (COM/BCOM fire on the storm, BEAM stays quiet; see EXPERIMENTS.md).
    for scheme in Scheme::ALL {
        out.push(Case {
            section: "telemetry",
            workload: "A2+A7@demo-faults".into(),
            scheme: scheme.to_string().to_ascii_lowercase(),
            count_allocs: true,
            run: Box::new(move || {
                CaseOutput::of(
                    &scenario(scheme)
                        .with_telemetry()
                        .faults(iotse_core::robustness::demo_scripts())
                        .run(),
                )
            }),
        });
    }

    // (i) Scenario corpus: every committed scenarios/*.toml graded on a
    // jobs-1 fleet. The counters are a pure function of the corpus and the
    // model, so the baseline gates them exactly — a scenario that starts
    // failing its own expectations moves expectations_failed off 0 and
    // trips the gate even before the CI `scenarios` job runs.
    out.push(Case {
        section: "scenarios",
        workload: "corpus".into(),
        scheme: "check".into(),
        count_allocs: true,
        run: Box::new(move || {
            let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
            let reports = crate::scenario::check_dir(&dir, 1).expect("scenario corpus sweep");
            let c = crate::scenario::counters(&reports);
            CaseOutput {
                scenarios_run: c.scenarios_run,
                expectations_evaluated: c.expectations_evaluated,
                expectations_failed: c.expectations_failed,
                ..CaseOutput::NONE
            }
        }),
    });

    out
}

/// Runs every case and assembles the report.
///
/// `probe` returns the process's cumulative `(allocations, bytes)` — the
/// `bench` binary wires its counting allocator in here; tests may pass a
/// constant probe (alloc columns then read 0). Per case: one warm-up run
/// (also the counter source — the output is asserted identical to the
/// counted run's), one counted steady-state run, then the stopwatch loop
/// under `limits`.
///
/// `prewarm_jobs` sizes a fleet that runs the scenario set once before
/// measuring, building the shared signal-cache artifacts in parallel; it
/// cannot affect any counter (gated runs execute on the calling thread
/// against a warm cache either way).
///
/// # Panics
///
/// Panics if a case's two runs disagree on the deterministic counters —
/// that would mean the simulator itself lost determinism, and no report
/// should be written from such a build.
#[must_use]
pub fn run_suite(
    limits: SampleBudget,
    prewarm_jobs: usize,
    probe: &dyn Fn() -> (u64, u64),
) -> BenchReport {
    run_suite_filtered(limits, prewarm_jobs, probe, None)
}

/// Like [`run_suite`], but restricted to one suite section when `section`
/// is `Some` (the binary's `--section` flag). The filtered report carries
/// only that section's entries; gating diffs the committed baseline
/// filtered the same way.
///
/// # Panics
///
/// Panics under the same counter-drift condition as [`run_suite`].
#[must_use]
pub fn run_suite_filtered(
    limits: SampleBudget,
    prewarm_jobs: usize,
    probe: &dyn Fn() -> (u64, u64),
    section: Option<&str>,
) -> BenchReport {
    // Parallel cache warm-up (counter-neutral, see above).
    let scenarios: Vec<Scenario> = Scheme::ALL.iter().map(|&s| scenario(s)).collect();
    let _ = Fleet::new(prewarm_jobs.max(1)).run(scenarios);

    let mut report = BenchReport::new();
    for mut case in cases()
        .into_iter()
        .filter(|c| section.is_none_or(|s| c.section == s))
    {
        let warm = (case.run)();
        let (allocs, alloc_bytes) = if case.count_allocs {
            let (a0, b0) = probe();
            let counted = (case.run)();
            let (a1, b1) = probe();
            assert_eq!(
                counted, warm,
                "{}/{}/{}: counters drifted between runs",
                case.section, case.workload, case.scheme
            );
            (a1 - a0, b1 - b0)
        } else {
            (0, 0)
        };
        let m = measure_with(limits, || (case.run)());
        report.entries.push(BenchEntry {
            section: case.section.to_string(),
            workload: case.workload,
            scheme: case.scheme,
            wall_ns_median: duration_ns(m.median),
            wall_ns_min: duration_ns(m.min),
            wall_ns_max: duration_ns(m.max),
            iters: m.n as u64,
            events: warm.events,
            bus_bytes: warm.bus_bytes,
            allocs,
            alloc_bytes,
            cache_hits: warm.cache_hits,
            cache_misses: warm.cache_misses,
            faults_injected: warm.faults_injected,
            samples_dropped: warm.samples_dropped,
            bytes_corrupted: warm.bytes_corrupted,
            alerts_fired: warm.alerts_fired,
            series_points: warm.series_points,
            detector_evals: warm.detector_evals,
            scenarios_run: warm.scenarios_run,
            expectations_evaluated: warm.expectations_evaluated,
            expectations_failed: warm.expectations_failed,
        });
    }
    report
}

/// Renders the report as the human-readable table the binary prints.
#[must_use]
pub fn render_table(report: &BenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<13} {:<18} {:<13} {:>12} {:>10} {:>10} {:>8} {:>12} {:>7} {:>7} {:>8} {:>8} {:>9} {:>7} {:>7} {:>6} {:>5} {:>7} {:>6}",
        "section",
        "workload",
        "scheme",
        "median_ns",
        "events",
        "bus_bytes",
        "allocs",
        "alloc_bytes",
        "hits",
        "misses",
        "faults",
        "dropped",
        "corrupted",
        "alerts",
        "points",
        "evals",
        "scen",
        "expects",
        "failed"
    );
    for e in &report.entries {
        let _ = writeln!(
            out,
            "{:<13} {:<18} {:<13} {:>12} {:>10} {:>10} {:>8} {:>12} {:>7} {:>7} {:>8} {:>8} {:>9} {:>7} {:>7} {:>6} {:>5} {:>7} {:>6}",
            e.section,
            e.workload,
            e.scheme,
            e.wall_ns_median,
            e.events,
            e.bus_bytes,
            e.allocs,
            e.alloc_bytes,
            e.cache_hits,
            e.cache_misses,
            e.faults_injected,
            e.samples_dropped,
            e.bytes_corrupted,
            e.alerts_fired,
            e.series_points,
            e.detector_evals,
            e.scenarios_run,
            e.expectations_evaluated,
            e.expectations_failed
        );
    }
    out
}

fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_every_section_scheme_and_app() {
        let cases = cases();
        assert_eq!(
            cases.iter().filter(|c| c.section == "executor").count(),
            Scheme::ALL.len()
        );
        assert_eq!(
            cases.iter().filter(|c| c.section == "queue").count(),
            QUEUE_RUNGS.len() * 2 // wheel + reference heap per rung
        );
        assert_eq!(
            cases.iter().filter(|c| c.section == "kernel").count(),
            AppId::ALL.len()
        );
        assert_eq!(
            cases.iter().filter(|c| c.section == "fleet").count(),
            FLEET_RUNGS.len()
        );
        assert_eq!(cases.iter().filter(|c| c.section == "overhead").count(), 3);
        assert_eq!(
            cases
                .iter()
                .filter(|c| c.section == "compute_cache")
                .count(),
            2
        );
        assert_eq!(
            cases.iter().filter(|c| c.section == "robustness").count(),
            Scheme::ALL.len()
        );
        assert_eq!(
            cases.iter().filter(|c| c.section == "telemetry").count(),
            Scheme::ALL.len()
        );
        assert_eq!(cases.iter().filter(|c| c.section == "scenarios").count(), 1);
        // Case ids are unique — the baseline gate matches on them.
        let mut ids: Vec<String> = cases
            .iter()
            .map(|c| format!("{}/{}/{}", c.section, c.workload, c.scheme))
            .collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), cases.len());
    }

    #[test]
    fn queue_cases_fire_every_scheduled_event_on_both_backends() {
        let mut queue_cases: Vec<_> = cases()
            .into_iter()
            .filter(|c| c.section == "queue" && c.workload == "pending-1k")
            .collect();
        assert_eq!(queue_cases.len(), 2);
        for case in &mut queue_cases {
            let out = (case.run)();
            assert_eq!(out.events, 1_000, "{}: wrong event count", case.scheme);
            assert_eq!((case.run)(), out, "queue case must replay bitwise");
        }
    }

    #[test]
    fn kernel_inputs_carry_real_samples() {
        for id in AppId::ALL {
            let app = catalog::app(id, SUITE_SEED);
            let input = window_input(app.as_ref(), SUITE_SEED);
            let expected: usize = app
                .sensors()
                .iter()
                .map(|u| u.samples_per_window as usize)
                .sum();
            let got: usize = input.samples.values().map(Vec::len).sum();
            assert_eq!(got, expected, "{id}: window input incomplete");
        }
    }

    #[test]
    fn compute_cache_cases_agree_on_simulation_traffic() {
        // Exact hit/miss counts are asserted in the end-to-end binary test
        // (tests/bench_suite.rs), where the suite owns the process; here
        // other tests share the global cache counters, so only the
        // cache-independent outputs are checked.
        let mut cached = cases()
            .into_iter()
            .filter(|c| c.section == "compute_cache")
            .collect::<Vec<_>>();
        assert_eq!(cached.len(), 2);
        let on = (cached[0].run)();
        let off = (cached[1].run)();
        assert_eq!(on.events, off.events, "caching must not change events");
        assert_eq!(on.bus_bytes, off.bus_bytes);
        assert!(on.events > 0, "fleet produced no simulation traffic");
    }

    #[test]
    fn robustness_cases_inject_and_replay_exactly() {
        let mut faulted: Vec<_> = cases()
            .into_iter()
            .filter(|c| c.section == "robustness")
            .collect();
        assert_eq!(faulted.len(), Scheme::ALL.len());
        let out = (faulted[0].run)();
        assert!(out.faults_injected > 0, "no faults fired");
        assert!(out.samples_dropped > 0, "dropout never fired");
        assert!(out.bytes_corrupted > 0, "corruption never fired");
        // The seeded plan replays bitwise.
        assert_eq!((faulted[0].run)(), out);
    }

    #[test]
    fn telemetry_cases_record_and_alert_deterministically() {
        let mut tel_cases: Vec<_> = cases()
            .into_iter()
            .filter(|c| c.section == "telemetry")
            .collect();
        assert_eq!(tel_cases.len(), Scheme::ALL.len());
        // scheme order mirrors Scheme::ALL: baseline, batching, com, beam, bcom
        let com = tel_cases
            .iter_mut()
            .find(|c| c.scheme == "com")
            .expect("com case");
        let out = (com.run)();
        assert!(out.series_points > 0, "no points recorded");
        assert!(out.detector_evals > 0, "no detector evals");
        assert!(out.alerts_fired > 0, "the storm must trip COM's detectors");
        // The stream is a pure fold: a second run is identical.
        assert_eq!((com.run)(), out);
        let beam = tel_cases
            .iter_mut()
            .find(|c| c.scheme == "beam")
            .expect("beam case");
        assert_eq!((beam.run)().alerts_fired, 0, "BEAM must stay quiet");
    }

    #[test]
    fn scenarios_case_sweeps_the_committed_corpus() {
        let mut case = cases()
            .into_iter()
            .find(|c| c.section == "scenarios")
            .expect("scenarios case");
        let out = (case.run)();
        assert!(out.scenarios_run >= 10, "corpus shrank: {out:?}");
        assert!(out.expectations_evaluated > out.scenarios_run);
        assert_eq!(out.expectations_failed, 0, "a committed scenario fails");
        // Grading is a pure function of the corpus: a second sweep agrees.
        assert_eq!((case.run)(), out);
    }

    #[test]
    fn section_filter_restricts_the_report() {
        let probe = || (0, 0);
        let r = run_suite_filtered(SampleBudget::quick(), 1, &probe, Some("robustness"));
        assert!(!r.entries.is_empty());
        assert!(r.entries.iter().all(|e| e.section == "robustness"));
    }

    #[test]
    fn executor_cases_report_simulation_traffic() {
        let mut case = cases().into_iter().next().expect("executor case");
        let out = (case.run)();
        assert!(out.events > 0, "no events recorded");
        assert!(out.bus_bytes > 0, "no bus traffic recorded");
        // Determinism: a second run is identical.
        assert_eq!((case.run)(), out);
    }
}
