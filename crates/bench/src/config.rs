//! Shared experiment configuration.

use iotse_apps::catalog;
use iotse_core::runner::Fleet;
use iotse_core::{AppId, RunResult, Scenario, Scheme};
use iotse_sensors::world::WorldConfig;

/// Configuration shared by every figure/table reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// The experiment seed (printed with every figure for replayability).
    pub seed: u64,
    /// Number of 1-second windows per scenario run.
    pub windows: u32,
    /// Worker threads for fleet execution (1 = fully sequential). Results
    /// are bitwise identical at any level — see `iotse_core::runner`.
    pub jobs: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 42,
            windows: 5,
            jobs: 1,
        }
    }
}

impl ExperimentConfig {
    /// A faster configuration for smoke tests and benches.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            windows: 2,
            ..ExperimentConfig::default()
        }
    }

    /// This configuration with `jobs` worker threads.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Builds an un-run scenario for `apps` under `scheme`.
    #[must_use]
    pub fn scenario(&self, scheme: Scheme, apps: &[AppId]) -> Scenario {
        Scenario::new(scheme, catalog::apps(apps, self.seed))
            .windows(self.windows)
            .seed(self.seed)
    }

    /// Builds an un-run scenario for `apps` under `scheme` in `world`.
    #[must_use]
    pub fn scenario_in_world(
        &self,
        scheme: Scheme,
        apps: &[AppId],
        world: WorldConfig,
    ) -> Scenario {
        self.scenario(scheme, apps).world(world)
    }

    /// Runs a fleet of scenarios on `self.jobs` threads; results come back
    /// in submission order regardless of completion order.
    #[must_use]
    pub fn run_fleet(&self, scenarios: Vec<Scenario>) -> Vec<RunResult> {
        Fleet::new(self.jobs).run(scenarios)
    }

    /// Runs `apps` under `scheme` with this configuration.
    #[must_use]
    pub fn run(&self, scheme: Scheme, apps: &[AppId]) -> RunResult {
        self.scenario(scheme, apps).run()
    }

    /// Runs a batch of `(scheme, apps)` cells on the fleet, one result per
    /// cell in order.
    #[must_use]
    pub fn run_cells(&self, cells: &[(Scheme, &[AppId])]) -> Vec<RunResult> {
        self.run_fleet(
            cells
                .iter()
                .map(|&(scheme, apps)| self.scenario(scheme, apps))
                .collect(),
        )
    }

    /// Runs `apps` under `scheme` with a customized world.
    #[must_use]
    pub fn run_in_world(&self, scheme: Scheme, apps: &[AppId], world: WorldConfig) -> RunResult {
        self.scenario_in_world(scheme, apps, world).run()
    }
}

/// Parses a scheme name (case-insensitive).
///
/// # Errors
///
/// Returns the unknown name.
pub fn parse_scheme(name: &str) -> Result<Scheme, String> {
    match name.to_ascii_lowercase().as_str() {
        "baseline" => Ok(Scheme::Baseline),
        "batching" => Ok(Scheme::Batching),
        "com" => Ok(Scheme::Com),
        "beam" => Ok(Scheme::Beam),
        "bcom" => Ok(Scheme::Bcom),
        other => Err(format!(
            "unknown scheme '{other}' (baseline|batching|com|beam|bcom)"
        )),
    }
}

/// Parses a comma- or plus-separated app list like `"A2,A7"` or `"a2+a11"`.
///
/// # Errors
///
/// Returns the first unknown app id, or an error for an empty list.
pub fn parse_app_list(list: &str) -> Result<Vec<AppId>, String> {
    let mut out = Vec::new();
    for part in list
        .split([',', '+'])
        .map(str::trim)
        .filter(|p| !p.is_empty())
    {
        let upper = part.to_ascii_uppercase();
        let id = AppId::ALL
            .iter()
            .copied()
            .find(|id| id.to_string() == upper)
            .ok_or_else(|| format!("unknown app '{part}' (A1..A11)"))?;
        out.push(id);
    }
    if out.is_empty() {
        return Err("empty app list".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_quick_differ_only_in_windows() {
        let d = ExperimentConfig::default();
        let q = ExperimentConfig::quick();
        assert_eq!(d.seed, q.seed);
        assert!(q.windows < d.windows);
    }

    #[test]
    fn run_helper_produces_a_result() {
        let r = ExperimentConfig::quick().run(Scheme::Baseline, &[AppId::A2]);
        assert_eq!(r.scheme, Scheme::Baseline);
        assert!(r.total_energy().as_millijoules() > 0.0);
    }

    #[test]
    fn scheme_parsing_accepts_any_case() {
        assert_eq!(parse_scheme("BCOM").unwrap(), Scheme::Bcom);
        assert_eq!(parse_scheme("beam").unwrap(), Scheme::Beam);
        assert!(parse_scheme("turbo").is_err());
    }

    #[test]
    fn app_list_parsing_accepts_both_separators() {
        assert_eq!(parse_app_list("A2,A7").unwrap(), vec![AppId::A2, AppId::A7]);
        assert_eq!(
            parse_app_list("a11+a6+a1").unwrap(),
            vec![AppId::A11, AppId::A6, AppId::A1]
        );
        assert!(parse_app_list("A99").is_err());
        assert!(parse_app_list("").is_err());
    }
}
