//! The observability drill-down behind the `inspect` binary.
//!
//! One scenario, full instrumentation (spans + metrics + phase timelines),
//! rendered in the format of your choice:
//!
//! * `chrome` — Chrome/Perfetto `trace_event` JSON ([`export::chrome_trace`]).
//! * `folded` — inferno-compatible collapsed energy stacks
//!   ([`iotse_energy::flame`]), pipe into a flamegraph renderer.
//! * `table` — the per-label self/total energy rollup in microjoules.
//! * `metrics` — the Prometheus text exposition ([`export::prometheus`]).
//! * `timeline` — Figure-5-style CPU/MCU power-state strips plus the span
//!   summary, for a terminal-only look at a run.
//!
//! Everything here is a pure function of the request, and the scenario runs
//! through the same [`Fleet`] as the experiment harness, so output is
//! byte-identical across repeated runs and `--jobs` levels (the determinism
//! tests and the CI gate diff these strings directly).
//!
//! [`export::chrome_trace`]: crate::export::chrome_trace
//! [`export::prometheus`]: crate::export::prometheus

use std::fmt::Write as _;

use iotse_core::runner::Fleet;
use iotse_core::{AppId, Calibration, RunResult, Scenario, Scheme};
use iotse_energy::flame;
use iotse_sim::faults::FaultScript;
use iotse_sim::time::SimTime;

use crate::export;
use crate::figures::fig05::{render_strip, Timeline};

/// Which rendering [`inspect`] should produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InspectFormat {
    /// Chrome/Perfetto `trace_event` JSON.
    Chrome,
    /// Collapsed energy stacks (inferno `folded` format).
    Folded,
    /// Per-label self/total energy table.
    Table,
    /// Prometheus text exposition of the run's metrics.
    Metrics,
    /// Power-state strips + span summary, for terminals.
    Timeline,
    /// Per-window per-routine energy stack table (windowed telemetry).
    Stacks,
    /// The run's detector alert stream, one line per alert.
    Alerts,
    /// Raw dump of every recorded time series, one line per point.
    Series,
}

impl InspectFormat {
    /// Every format, in CLI listing order.
    pub const ALL: [InspectFormat; 8] = [
        InspectFormat::Chrome,
        InspectFormat::Folded,
        InspectFormat::Table,
        InspectFormat::Metrics,
        InspectFormat::Timeline,
        InspectFormat::Stacks,
        InspectFormat::Alerts,
        InspectFormat::Series,
    ];

    /// Parses a format name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns the unknown name.
    pub fn parse(name: &str) -> Result<InspectFormat, String> {
        match name.to_ascii_lowercase().as_str() {
            "chrome" => Ok(InspectFormat::Chrome),
            "folded" => Ok(InspectFormat::Folded),
            "table" => Ok(InspectFormat::Table),
            "metrics" => Ok(InspectFormat::Metrics),
            "timeline" => Ok(InspectFormat::Timeline),
            "stacks" => Ok(InspectFormat::Stacks),
            "alerts" => Ok(InspectFormat::Alerts),
            "series" => Ok(InspectFormat::Series),
            other => Err(format!(
                "unknown format '{other}' \
                 (chrome|folded|table|metrics|timeline|stacks|alerts|series)"
            )),
        }
    }

    /// The CLI name of this format.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InspectFormat::Chrome => "chrome",
            InspectFormat::Folded => "folded",
            InspectFormat::Table => "table",
            InspectFormat::Metrics => "metrics",
            InspectFormat::Timeline => "timeline",
            InspectFormat::Stacks => "stacks",
            InspectFormat::Alerts => "alerts",
            InspectFormat::Series => "series",
        }
    }
}

/// One fully-instrumented scenario to run and render.
#[derive(Debug, Clone, PartialEq)]
pub struct InspectRequest {
    /// The execution scheme.
    pub scheme: Scheme,
    /// The Table II apps to run together.
    pub apps: Vec<AppId>,
    /// Number of 1-second windows.
    pub windows: u32,
    /// The experiment seed.
    pub seed: u64,
    /// Fleet worker threads (output is identical at any level).
    pub jobs: usize,
    /// Fault scripts to inject (empty by default — a fair-weather run).
    pub faults: Vec<FaultScript>,
}

impl Default for InspectRequest {
    /// Batching × step counter, 4 windows, seed 42, one worker, no faults.
    fn default() -> Self {
        InspectRequest {
            scheme: Scheme::Batching,
            apps: vec![AppId::A2],
            windows: 4,
            seed: 42,
            jobs: 1,
            faults: Vec::new(),
        }
    }
}

/// Runs the request's scenario with spans, metrics and phase timelines all
/// recording, through a [`Fleet`] of `jobs` workers.
#[must_use]
pub fn run(req: &InspectRequest) -> RunResult {
    let mut scenario = Scenario::new(req.scheme, iotse_apps::catalog::apps(&req.apps, req.seed))
        .windows(req.windows)
        .seed(req.seed)
        .with_trace()
        .with_timeline()
        .with_metrics()
        .with_telemetry();
    if !req.faults.is_empty() {
        scenario = scenario.faults(req.faults.clone());
    }
    let mut results = Fleet::new(req.jobs).run(vec![scenario]);
    // The fleet returns one result per scenario (E04 does not apply to bench).
    results.pop().expect("one scenario in, one result out")
}

/// Renders an instrumented [`RunResult`] in `format`.
#[must_use]
pub fn render(result: &RunResult, format: InspectFormat) -> String {
    match format {
        InspectFormat::Chrome => export::chrome_trace(result, &Calibration::paper()),
        InspectFormat::Folded => flame::fold(&result.trace).folded(),
        InspectFormat::Table => flame::fold(&result.trace).table(),
        InspectFormat::Metrics => {
            let mut text = result
                .metrics
                .as_ref()
                .map_or_else(String::new, export::prometheus);
            if let Some(tel) = &result.telemetry {
                text.push_str(&export::prometheus_telemetry(tel));
            }
            text
        }
        InspectFormat::Timeline => render_timeline(result),
        InspectFormat::Stacks => render_stacks(result),
        InspectFormat::Alerts => render_alerts(result),
        InspectFormat::Series => render_series(result),
    }
}

/// Runs `req` and renders the result — the whole `inspect` binary in one
/// call, kept as a library function so tests can diff outputs without
/// spawning processes.
#[must_use]
pub fn inspect(req: &InspectRequest, format: InspectFormat) -> String {
    render(&run(req), format)
}

/// The `timeline` rendering: Figure-5-style strips plus the span summary
/// and energy rollup.
fn render_timeline(result: &RunResult) -> String {
    let mut out = String::new();
    let horizon = SimTime::ZERO + result.duration;
    let _ = writeln!(
        out,
        "{} seed={} over {}",
        result.scheme, result.seed, result.duration
    );
    let _ = writeln!(
        out,
        "legend: # busy, . idle-active, t transition, s sleep, z deep-sleep"
    );
    if let (Some(cpu), Some(mcu)) = (&result.cpu_timeline, &result.mcu_timeline) {
        let cpu: Timeline = cpu.iter().map(|&(t, p)| (t, p.name())).collect();
        let mcu: Timeline = mcu.iter().map(|&(t, p)| (t, p.name())).collect();
        let _ = writeln!(out, "CPU : {}", render_strip(&cpu, horizon, 100));
        let _ = writeln!(out, "MCU : {}", render_strip(&mcu, horizon, 100));
    }
    let s = result.spans;
    let _ = writeln!(
        out,
        "spans: {} (depth {}), events: {}, attributed energy: {:.3} uJ",
        s.spans, s.max_depth, s.events, s.total_weight
    );
    out.push_str(&flame::fold(&result.trace).table());
    out
}

/// The `stacks` rendering: one row per window with the five routine
/// deltas (µJ), a workload column, and a totals footer that folds each
/// series — the footer equals the run's per-routine ledger totals bitwise.
fn render_stacks(result: &RunResult) -> String {
    use iotse_energy::attribution::Routine;

    let mut out = String::new();
    let Some(tel) = &result.telemetry else {
        let _ = writeln!(out, "telemetry not recorded (run with with_telemetry)");
        return out;
    };
    let stacks = &tel.stacks;
    let _ = writeln!(
        out,
        "windowed energy stacks (uJ) — {} seed={}, {} x {} windows",
        result.scheme,
        result.seed,
        stacks.windows(),
        stacks.base_window()
    );
    let _ = write!(out, "{:>6} {:>10}", "window", "t_ms");
    for &routine in &Routine::ALL {
        let _ = write!(out, " {:>16}", export::routine_key(routine));
    }
    let _ = writeln!(out, " {:>16}", "workload");
    let series = stacks.all_series();
    for w in 0..stacks.recorded() {
        let (at, _) = series[0].points()[w as usize];
        let _ = write!(out, "{:>6} {:>10.3}", w, at.as_millis_f64());
        let mut workload = 0.0;
        for (i, &routine) in Routine::ALL.iter().enumerate() {
            let v = series[i].points()[w as usize].1;
            if routine != Routine::Idle {
                workload += v;
            }
            let _ = write!(out, " {:>16.3}", v);
        }
        let _ = writeln!(out, " {:>16.3}", workload);
    }
    let _ = write!(out, "{:>6} {:>10}", "total", "");
    let mut workload = 0.0;
    for (i, &routine) in Routine::ALL.iter().enumerate() {
        let total = series[i].fold_sum();
        if routine != Routine::Idle {
            workload += total;
        }
        let _ = write!(out, " {:>16.3}", total);
    }
    let _ = writeln!(out, " {:>16.3}", workload);
    out
}

/// The `alerts` rendering: one line per detector alert, in evaluation
/// order, plus a count header.
fn render_alerts(result: &RunResult) -> String {
    let mut out = String::new();
    let Some(tel) = &result.telemetry else {
        let _ = writeln!(out, "telemetry not recorded (run with with_telemetry)");
        return out;
    };
    let _ = writeln!(
        out,
        "alerts — {} seed={}: {} ({} drift, {} budget) over {} detector evals",
        result.scheme,
        result.seed,
        tel.alerts.len(),
        tel.drift_alerts(),
        tel.budget_alerts(),
        tel.detector_evals
    );
    for alert in &tel.alerts {
        let _ = writeln!(out, "{alert}");
    }
    out
}

/// The `series` rendering: a raw dump of every recorded time series —
/// stack series first ([`Routine::ALL`] order), then each app's QoS
/// series — one `t_ms value` line per point.
fn render_series(result: &RunResult) -> String {
    let mut out = String::new();
    let Some(tel) = &result.telemetry else {
        let _ = writeln!(out, "telemetry not recorded (run with with_telemetry)");
        return out;
    };
    let mut dump = |label: String, series: &iotse_sim::timeseries::TimeSeries| {
        let _ = writeln!(
            out,
            "series {label} points={} dropped={}",
            series.len(),
            series.dropped()
        );
        for &(t, v) in series.points() {
            let _ = writeln!(out, "  {:.3} {v:.3}", t.as_millis_f64());
        }
    };
    for series in tel.stacks.all_series() {
        dump(series.name().to_string(), series);
    }
    for app in &tel.apps {
        dump(
            format!("{} app={}", app.slack_ms.name(), app.name),
            &app.slack_ms,
        );
        dump(
            format!("{} app={}", app.processing_ms.name(), app.name),
            &app.processing_ms,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parsing_round_trips() {
        for f in InspectFormat::ALL {
            assert_eq!(InspectFormat::parse(f.name()).unwrap(), f);
            assert_eq!(
                InspectFormat::parse(&f.name().to_ascii_uppercase()).unwrap(),
                f
            );
        }
        assert!(InspectFormat::parse("svg").is_err());
    }

    #[test]
    fn every_format_renders_nonempty() {
        let req = InspectRequest {
            windows: 1,
            ..InspectRequest::default()
        };
        let result = run(&req);
        for f in InspectFormat::ALL {
            assert!(
                !render(&result, f).is_empty(),
                "{} rendered empty",
                f.name()
            );
        }
    }

    #[test]
    fn folded_energy_equals_ledger_total_exactly() {
        let result = run(&InspectRequest::default());
        let graph = flame::fold(&result.trace);
        assert_eq!(
            graph.total_microjoules(),
            result.total_energy().as_microjoules(),
            "span fold must reproduce the ledger bitwise"
        );
    }

    #[test]
    fn timeline_shows_strips_and_summary() {
        let text = inspect(
            &InspectRequest {
                windows: 1,
                ..InspectRequest::default()
            },
            InspectFormat::Timeline,
        );
        assert!(text.contains("CPU : "));
        assert!(text.contains("MCU : "));
        assert!(text.contains("spans: "));
        assert!(text.contains("iotse_core_run"));
    }
}
