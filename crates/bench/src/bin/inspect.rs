//! Renders one fully-instrumented scenario run in an export format.
//!
//! ```text
//! inspect [--scheme S] [--apps A2,A5] [--windows N] [--seed N] [--jobs N]
//!         [--faults demo] [--format chrome|folded|table|metrics|timeline]
//! ```
//!
//! Output goes to stdout and is byte-identical across repeated runs and
//! `--jobs` levels (CI diffs it). Load `--format chrome` output into
//! <https://ui.perfetto.dev> or `chrome://tracing`; pipe `--format folded`
//! into any FlameGraph/inferno renderer.

use std::env;
use std::process::ExitCode;

use iotse_bench::config::{parse_app_list, parse_scheme};
use iotse_bench::inspect::{inspect, InspectFormat, InspectRequest};

const USAGE: &str = "usage: inspect [--scheme baseline|batching|com|beam|bcom] [--apps A2,A5]
               [--windows N] [--seed N] [--jobs N] [--faults demo]
               [--format chrome|folded|table|metrics|timeline]
defaults: --scheme batching --apps A2 --windows 4 --seed 42 --jobs 1 --format timeline
--faults demo injects the committed demo fault scripts (every fault kind)";

fn main() -> ExitCode {
    let mut req = InspectRequest::default();
    let mut format = InspectFormat::Timeline;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scheme" => match args.next().as_deref().map(parse_scheme) {
                Some(Ok(s)) => req.scheme = s,
                Some(Err(e)) => return fail(&e),
                None => return fail("--scheme needs a name"),
            },
            "--apps" => match args.next().as_deref().map(parse_app_list) {
                Some(Ok(apps)) => req.apps = apps,
                Some(Err(e)) => return fail(&e),
                None => return fail("--apps needs a list like A2,A5"),
            },
            "--windows" => match args.next().and_then(|v| v.parse().ok()) {
                Some(w) if w > 0 => req.windows = w,
                _ => return fail("--windows needs a positive integer"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => req.seed = seed,
                None => return fail("--seed needs an integer"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(j) if j > 0 => req.jobs = j,
                _ => return fail("--jobs needs a positive integer"),
            },
            "--faults" => match args.next().as_deref() {
                Some("demo") => req.faults = iotse_core::robustness::demo_scripts(),
                Some(other) => return fail(&format!("unknown fault set '{other}' (demo)")),
                None => return fail("--faults needs a set name (demo)"),
            },
            "--format" => match args.next().as_deref().map(InspectFormat::parse) {
                Some(Ok(f)) => format = f,
                Some(Err(e)) => return fail(&e),
                None => return fail("--format needs a name"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            unknown => return fail(&format!("unknown argument '{unknown}'\n{USAGE}")),
        }
    }
    print!("{}", inspect(&req, format));
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::FAILURE
}
