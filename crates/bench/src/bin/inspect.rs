//! Renders one fully-instrumented scenario run in an export format, or
//! diffs two runs (`inspect diff`).
//!
//! ```text
//! inspect [--scheme S] [--apps A2,A5] [--windows N] [--seed N] [--jobs N]
//!         [--faults demo]
//!         [--format chrome|folded|table|metrics|timeline|stacks|alerts|series]
//! inspect diff [common flags] [--vs-scheme S] [--vs-seed N] [--vs-faults demo]
//!              [--baseline FILE] [--save FILE]
//! ```
//!
//! Output goes to stdout and is byte-identical across repeated runs and
//! `--jobs` levels (CI diffs it). Load `--format chrome` output into
//! <https://ui.perfetto.dev> or `chrome://tracing`; pipe `--format folded`
//! into any FlameGraph/inferno renderer.
//!
//! `diff` runs the base scenario from the common flags and a *vs*
//! scenario that starts as a copy and picks up any `--vs-*` overrides,
//! then prints the ranked per-routine energy delta table with drift
//! verdicts. `--baseline FILE` replaces the base run with a summary saved
//! earlier via `--save FILE`, turning the diff into a regression check
//! against a pinned snapshot.

use std::env;
use std::process::ExitCode;

use iotse_bench::config::{parse_app_list, parse_scheme};
use iotse_bench::diff::{render_diff, TelemetrySummary};
use iotse_bench::inspect::{inspect, run, InspectFormat, InspectRequest};

const USAGE: &str = "usage: inspect [--scheme baseline|batching|com|beam|bcom] [--apps A2,A5]
               [--windows N] [--seed N] [--jobs N] [--faults demo]
               [--format chrome|folded|table|metrics|timeline|stacks|alerts|series]
       inspect diff [common flags] [--vs-scheme S] [--vs-seed N] [--vs-faults demo]
               [--baseline FILE] [--save FILE]
defaults: --scheme batching --apps A2 --windows 4 --seed 42 --jobs 1 --format timeline
--faults demo injects the committed demo fault scripts (every fault kind)
diff compares the base run against a copy with the --vs-* overrides applied
(or against a summary saved with --save when --baseline is given)";

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let diff_mode = args.first().is_some_and(|a| a == "diff");
    if diff_mode {
        args.remove(0);
    }

    let mut req = InspectRequest::default();
    let mut format = InspectFormat::Timeline;
    let mut vs_scheme = None;
    let mut vs_seed = None;
    let mut vs_faults = None;
    let mut baseline_path: Option<String> = None;
    let mut save_path: Option<String> = None;

    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scheme" => match args.next().as_deref().map(parse_scheme) {
                Some(Ok(s)) => req.scheme = s,
                Some(Err(e)) => return fail(&e),
                None => return fail("--scheme needs a name"),
            },
            "--apps" => match args.next().as_deref().map(parse_app_list) {
                Some(Ok(apps)) => req.apps = apps,
                Some(Err(e)) => return fail(&e),
                None => return fail("--apps needs a list like A2,A5"),
            },
            "--windows" => match args.next().and_then(|v| v.parse().ok()) {
                Some(w) if w > 0 => req.windows = w,
                _ => return fail("--windows needs a positive integer"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => req.seed = seed,
                None => return fail("--seed needs an integer"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(j) if j > 0 => req.jobs = j,
                _ => return fail("--jobs needs a positive integer"),
            },
            "--faults" => match args.next().as_deref() {
                Some("demo") => req.faults = iotse_core::robustness::demo_scripts(),
                Some(other) => return fail(&format!("unknown fault set '{other}' (demo)")),
                None => return fail("--faults needs a set name (demo)"),
            },
            "--format" if !diff_mode => match args.next().as_deref().map(InspectFormat::parse) {
                Some(Ok(f)) => format = f,
                Some(Err(e)) => return fail(&e),
                None => return fail("--format needs a name"),
            },
            "--vs-scheme" if diff_mode => match args.next().as_deref().map(parse_scheme) {
                Some(Ok(s)) => vs_scheme = Some(s),
                Some(Err(e)) => return fail(&e),
                None => return fail("--vs-scheme needs a name"),
            },
            "--vs-seed" if diff_mode => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => vs_seed = Some(seed),
                None => return fail("--vs-seed needs an integer"),
            },
            "--vs-faults" if diff_mode => match args.next().as_deref() {
                Some("demo") => vs_faults = Some(iotse_core::robustness::demo_scripts()),
                Some(other) => return fail(&format!("unknown fault set '{other}' (demo)")),
                None => return fail("--vs-faults needs a set name (demo)"),
            },
            "--baseline" if diff_mode => match args.next() {
                Some(path) => baseline_path = Some(path),
                None => return fail("--baseline needs a file path"),
            },
            "--save" if diff_mode => match args.next() {
                Some(path) => save_path = Some(path),
                None => return fail("--save needs a file path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            unknown => return fail(&format!("unknown argument '{unknown}'\n{USAGE}")),
        }
    }

    if !diff_mode {
        print!("{}", inspect(&req, format));
        return ExitCode::SUCCESS;
    }

    let mut vs_req = req.clone();
    if let Some(s) = vs_scheme {
        vs_req.scheme = s;
    }
    if let Some(seed) = vs_seed {
        vs_req.seed = seed;
    }
    if let Some(faults) = vs_faults {
        vs_req.faults = faults;
    }

    let vs = match TelemetrySummary::from_result(&run(&vs_req)) {
        Some(s) => s,
        None => return fail("vs run carried no telemetry"),
    };
    let base = if let Some(path) = &baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("cannot read baseline {path}: {e}")),
        };
        match TelemetrySummary::parse(&text) {
            Ok(s) => s,
            Err(e) => return fail(&e),
        }
    } else {
        match TelemetrySummary::from_result(&run(&req)) {
            Some(s) => s,
            None => return fail("base run carried no telemetry"),
        }
    };
    // --save pins the *current build's* run (the vs side), ready for a
    // later --baseline comparison.
    if let Some(path) = &save_path {
        if let Err(e) = std::fs::write(path, vs.to_json()) {
            return fail(&format!("cannot write {path}: {e}"));
        }
    }
    print!("{}", render_diff(&base, &vs));
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::FAILURE
}
