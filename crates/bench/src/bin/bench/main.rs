//! `bench` — the deterministic microbenchmark suite.
//!
//! ```text
//! cargo run --release -p iotse-bench --bin bench -- [--quick] [--jobs N]
//!     [--section NAME] [--out PATH] [--check PATH]
//! ```
//!
//! Runs the nine suite sections (executor, queue, kernel, fleet, overhead,
//! compute_cache, robustness, telemetry, scenarios), prints a table, and
//! optionally writes the
//! stable-schema JSON report (`--out`) or gates the deterministic counters
//! against a committed baseline (`--check`, exact match required; wall
//! time is advisory only — drift beyond ±30% prints a warning but never
//! fails). `--section` restricts the run (and the gate) to one section —
//! the CI robustness job uses `--section robustness`. A full (unfiltered)
//! baseline must carry the per-kernel alloc entries for A4 and A9 — the
//! scratch-engine kernels — so the zero-alloc steady state cannot be
//! silently dropped from the gate.

mod counting_alloc;

use std::process::ExitCode;

use iotse_bench::report::BenchReport;
use iotse_bench::stopwatch::SampleBudget;
use iotse_bench::suite;

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

/// Wall-time drift beyond this fraction of baseline prints an advisory.
const WALL_TOLERANCE: f64 = 0.30;

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench: {msg}");
    eprintln!("usage: bench [--quick] [--jobs N] [--section NAME] [--out PATH] [--check PATH]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut jobs = 1usize;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut section: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--jobs" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => jobs = n,
                _ => return fail("--jobs wants a positive integer"),
            },
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => return fail("--out wants a path"),
            },
            "--check" => match args.next() {
                Some(p) => check_path = Some(p),
                None => return fail("--check wants a path"),
            },
            "--section" => match args.next() {
                Some(s) => section = Some(s),
                None => return fail("--section wants a section name"),
            },
            other => return fail(&format!("unknown argument `{other}`")),
        }
    }

    let limits = if quick {
        SampleBudget::quick()
    } else {
        SampleBudget::default()
    };
    let report =
        suite::run_suite_filtered(limits, jobs, &counting_alloc::snapshot, section.as_deref());
    print!("{}", suite::render_table(&report));

    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            return fail(&format!("writing {path}: {e}"));
        }
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("reading {path}: {e}")),
        };
        let mut baseline = match BenchReport::parse(&text) {
            Ok(b) => b,
            Err(e) => return fail(&format!("parsing {path}: {e}")),
        };
        // A filtered run gates against the baseline filtered the same way.
        if let Some(s) = &section {
            baseline.entries.retain(|e| e.section == *s);
            if baseline.entries.is_empty() {
                return fail(&format!("{path} has no cases in section `{s}`"));
            }
        } else {
            // The scratch-engine kernels must stay under the exact-alloc
            // gate: a baseline without them could regress PR 5's
            // zero-alloc steady state without failing CI.
            for id in ["kernel/A4/kernel", "kernel/A9/kernel"] {
                if baseline.entry(id).is_none() {
                    return fail(&format!("{path} lacks the gated case {id}"));
                }
            }
        }
        for w in report.wall_advisories(&baseline, WALL_TOLERANCE) {
            eprintln!("warning: {w}");
        }
        let diffs = report.diff_counters(&baseline);
        if diffs.is_empty() {
            println!("counters match baseline ({} cases)", baseline.entries.len());
        } else {
            for d in &diffs {
                eprintln!("counter regression: {d}");
            }
            eprintln!(
                "bench: {} deterministic counter mismatch(es) vs {path}",
                diffs.len()
            );
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
