//! A counting `GlobalAlloc` wrapper around the system allocator.
//!
//! Every allocation in the process increments two global counters:
//! allocation count and bytes requested. Reads are just relaxed atomic
//! loads, so the [`snapshot`] probe the suite uses costs nothing that
//! would perturb a measurement. Frees are deliberately *not* tracked: the
//! suite gates on "allocator traffic caused by one run", and a
//! monotonically increasing pair of counters makes the per-run delta
//! trivially race-free when the run executes on the calling thread.
//!
//! Lives in the binary (not `iotse-bench`'s library) because implementing
//! `GlobalAlloc` requires `unsafe`, which the library forbids.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// The allocator: counts, then delegates to [`System`].
pub struct CountingAlloc;

// SAFETY: every method delegates to `System` with unchanged arguments; the
// counter updates are lock-free atomics, safe in any allocation context.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow/shrink is one more round-trip to the allocator; count the
        // full new size so buffer-doubling regressions show up in bytes.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Cumulative `(allocations, bytes requested)` since process start.
pub fn snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::snapshot;

    // The test harness runs tests on several threads sharing the global
    // counters, so assertions are lower bounds, never equalities.

    #[test]
    fn vec_allocation_is_counted() {
        let (a0, b0) = snapshot();
        let v: Vec<u8> = Vec::with_capacity(4096);
        std::hint::black_box(&v);
        let (a1, b1) = snapshot();
        assert!(a1 - a0 >= 1, "allocation not counted");
        assert!(b1 - b0 >= 4096, "bytes under-counted: {}", b1 - b0);
    }

    #[test]
    fn growth_reallocs_are_counted() {
        let mut v: Vec<u64> = Vec::with_capacity(1);
        let (a0, _) = snapshot();
        for i in 0..10_000u64 {
            v.push(i); // no size hint: capacity doubles repeatedly
        }
        std::hint::black_box(&v);
        let (a1, _) = snapshot();
        assert!(
            a1 - a0 >= 2,
            "doubling growth should re-allocate: {}",
            a1 - a0
        );
    }

    #[test]
    fn counters_are_monotonic_across_frees() {
        let v: Vec<u8> = vec![7; 1024];
        let (a0, b0) = snapshot();
        drop(v);
        let (a1, b1) = snapshot();
        assert!(a1 >= a0 && b1 >= b0, "free must not rewind counters");
    }

    #[test]
    fn zeroed_allocation_is_counted() {
        let (a0, b0) = snapshot();
        let v: Vec<u8> = vec![0; 2048]; // vec! of zeroes uses alloc_zeroed
        std::hint::black_box(&v);
        let (a1, b1) = snapshot();
        assert!(a1 - a0 >= 1);
        assert!(b1 - b0 >= 2048);
    }
}
