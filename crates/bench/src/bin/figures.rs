//! Regenerates every table and figure of the paper.
//!
//! ```text
//! figures [--seed N] [--windows N] [all|fig1|fig3|fig4|fig5|fig6|fig7|fig8|
//!          fig9|fig10|fig11|fig12|fig13|table1|table2|experiments]
//! ```
//!
//! `experiments` emits the paper-vs-measured Markdown table used in
//! EXPERIMENTS.md.

use std::env;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use iotse_bench::config::ExperimentConfig;
use iotse_bench::figures::{
    fig01, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12, fig13, tables,
};
use iotse_bench::sweeps::{dma, dvfs, error_rate, mcu_speed, transition};
use iotse_core::{Fleet, Scheme};

const USAGE: &str = "usage: figures [--seed N] [--windows N] [--jobs N] [--csv DIR] [TARGET...]
       figures run --apps A2,A7 --scheme beam [--seed N] [--windows N]
targets: all (default), fig1, fig3, fig4, fig5, fig6, fig7, fig8, fig9,
         fig10, fig11, fig12, fig13, table1, table2, experiments,
         sweeps (ablations: sweep-transition, sweep-mcu, sweep-dma,
                 sweep-dvfs, sweep-errors), repeatability,
         trace --apps A2[,..] [--scheme S]";

fn main() -> ExitCode {
    // Results are identical at any jobs level (see iotse_core::runner), so
    // defaulting to all cores is safe; --jobs 1 restores serial execution.
    let mut cfg = ExperimentConfig::default().with_jobs(Fleet::available_parallelism());
    let mut targets: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut apps_arg: Option<String> = None;
    let mut scheme_arg: Option<String> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => cfg.seed = seed,
                None => return fail("--seed needs an integer"),
            },
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => return fail("--csv needs a directory"),
            },
            "--apps" => apps_arg = args.next(),
            "--scheme" => scheme_arg = args.next(),
            "--windows" => match args.next().and_then(|v| v.parse().ok()) {
                Some(w) if w > 0 => cfg.windows = w,
                _ => return fail("--windows needs a positive integer"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(j) if j > 0 => cfg.jobs = j,
                _ => return fail("--jobs needs a positive integer"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => targets.push(other.to_ascii_lowercase()),
        }
    }
    if targets.is_empty() {
        targets.push("all".into());
    }

    println!(
        "# iotse figure reproduction (seed={}, windows={})\n",
        cfg.seed, cfg.windows
    );
    for target in &targets {
        match target.as_str() {
            "all" => {
                for t in [
                    "table1", "table2", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                    "fig9", "fig10", "fig11", "fig12", "fig13",
                ] {
                    render(t, &cfg, csv_dir.as_deref());
                }
            }
            "experiments" => print!("{}", experiments_markdown(&cfg)),
            "repeatability" => print_repeatability(&cfg),
            "trace" => {
                let Some(apps) = apps_arg.as_deref() else {
                    return fail("trace needs --apps A2,... (and optionally --scheme)");
                };
                let apps = match iotse_bench::config::parse_app_list(apps) {
                    Ok(a) => a,
                    Err(e) => return fail(&e),
                };
                let scheme = match scheme_arg
                    .as_deref()
                    .map_or(Ok(Scheme::Baseline), iotse_bench::config::parse_scheme)
                {
                    Ok(s) => s,
                    Err(e) => return fail(&e),
                };
                print_trace(&cfg, scheme, &apps);
            }
            "run" => {
                let Some(apps) = apps_arg.as_deref() else {
                    return fail("run needs --apps A2,A7,...");
                };
                let apps = match iotse_bench::config::parse_app_list(apps) {
                    Ok(a) => a,
                    Err(e) => return fail(&e),
                };
                let scheme = match scheme_arg
                    .as_deref()
                    .map_or(Ok(Scheme::Baseline), iotse_bench::config::parse_scheme)
                {
                    Ok(s) => s,
                    Err(e) => return fail(&e),
                };
                print_run(&cfg, scheme, &apps);
            }
            "sweeps" => {
                for t in [
                    "sweep-transition",
                    "sweep-mcu",
                    "sweep-dma",
                    "sweep-dvfs",
                    "sweep-errors",
                ] {
                    render(t, &cfg, csv_dir.as_deref());
                }
            }
            t if is_known(t) => render(t, &cfg, csv_dir.as_deref()),
            unknown => return fail(&format!("unknown target '{unknown}'\n{USAGE}")),
        }
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::FAILURE
}

fn is_known(t: &str) -> bool {
    matches!(
        t,
        "fig1"
            | "fig3"
            | "fig4"
            | "fig5"
            | "fig6"
            | "fig7"
            | "fig8"
            | "fig9"
            | "fig10"
            | "fig11"
            | "fig12"
            | "fig13"
            | "table1"
            | "table2"
            | "sweep-transition"
            | "sweep-mcu"
            | "sweep-dma"
            | "sweep-dvfs"
            | "sweep-errors"
    )
}

fn render(target: &str, cfg: &ExperimentConfig, csv_dir: Option<&std::path::Path>) {
    use iotse_bench::csv;
    let mut csv_out: Option<(String, String)> = None;
    match target {
        "fig1" => {
            let fig = fig01::run(cfg);
            println!("{fig}");
            csv_out = Some(("fig01".into(), csv::fig01_csv(&fig)));
        }
        "fig3" => println!("{}", fig03::run(cfg)),
        "fig4" => println!("{}", fig04::run(cfg)),
        "fig5" => println!("{}", fig05::run(cfg)),
        "fig6" => println!("{}", fig06::run(cfg)),
        "fig7" => println!("{}", fig07::run(cfg)),
        "fig8" => println!("{}", fig08::run(cfg)),
        "fig9" => {
            let fig = fig09::run(cfg);
            println!("{fig}");
            csv_out = Some(("fig09".into(), csv::fig09_csv(&fig)));
        }
        "fig10" => {
            let fig = fig10::run(cfg);
            println!("{fig}");
            csv_out = Some(("fig10".into(), csv::fig10_csv(&fig)));
        }
        "fig11" => {
            let fig = fig11::run(cfg);
            println!("{fig}");
            csv_out = Some(("fig11".into(), csv::fig11_csv(&fig)));
        }
        "fig12" => {
            let fig = fig12::run(cfg);
            println!("{fig}");
            csv_out = Some(("fig12".into(), csv::fig12_csv(&fig)));
        }
        "fig13" => {
            let fig = fig13::run(cfg);
            println!("{fig}");
            csv_out = Some(("fig13".into(), csv::fig13_csv(&fig)));
        }
        "sweep-transition" => {
            let sweep = transition::run(cfg);
            println!("{sweep}");
            csv_out = Some(("sweep_transition".into(), csv::transition_csv(&sweep)));
        }
        "sweep-mcu" => {
            let mut combined = String::new();
            for id in [iotse_core::AppId::A2, iotse_core::AppId::A8] {
                let sweep = mcu_speed::run(cfg, id);
                println!("{sweep}");
                let table = csv::mcu_speed_csv(&sweep);
                if combined.is_empty() {
                    combined = table;
                } else {
                    combined.extend(table.lines().skip(1).map(|l| {
                        format!(
                            "{l}
"
                        )
                    }));
                }
            }
            csv_out = Some(("sweep_mcu".into(), combined));
        }
        "sweep-dma" => {
            let sweep = dma::run(cfg);
            println!("{sweep}");
            csv_out = Some(("sweep_dma".into(), csv::dma_csv(&sweep)));
        }
        "sweep-dvfs" => {
            let sweep = dvfs::run(cfg);
            println!("{sweep}");
            csv_out = Some(("sweep_dvfs".into(), csv::dvfs_csv(&sweep)));
        }
        "sweep-errors" => {
            let sweep = error_rate::run(cfg);
            println!("{sweep}");
            csv_out = Some(("sweep_errors".into(), csv::error_rate_csv(&sweep)));
        }
        "table1" => println!("{}", tables::table1()),
        "table2" => {
            let t = tables::table2(cfg);
            println!("{t}");
            csv_out = Some(("table2".into(), csv::table2_csv(&t)));
        }
        _ => unreachable!("validated by is_known"),
    }
    if let (Some(dir), Some((name, data))) = (csv_dir, csv_out) {
        if let Err(e) =
            fs::create_dir_all(dir).and_then(|()| fs::write(dir.join(format!("{name}.csv")), data))
        {
            eprintln!("warning: could not write {name}.csv: {e}");
        } else {
            eprintln!("wrote {}", dir.join(format!("{name}.csv")).display());
        }
    }
}

/// Prints the head and tail of a scenario's execution trace.
fn print_trace(cfg: &ExperimentConfig, scheme: Scheme, apps: &[iotse_core::AppId]) {
    let result = iotse_core::Scenario::new(scheme, iotse_apps::catalog::apps(apps, cfg.seed))
        .windows(cfg.windows)
        .seed(cfg.seed)
        .with_trace()
        .run();
    let entries = result.trace.entries();
    println!("{scheme} x {apps:?}: {} trace entries", entries.len());
    let head = 30.min(entries.len());
    for e in &entries[..head] {
        println!("  {e}");
    }
    if entries.len() > 2 * head {
        println!("  ... ({} elided) ...", entries.len() - 2 * head);
    }
    for e in &entries[entries.len().saturating_sub(head).max(head)..] {
        println!("  {e}");
    }
}

/// Figure 10's headline means across five seeds: the error bars the paper
/// never printed.
fn print_repeatability(cfg: &ExperimentConfig) {
    let seeds = [cfg.seed, 101, 202, 303, 404];
    let mut batching = Vec::new();
    let mut com = Vec::new();
    for &seed in &seeds {
        let one = ExperimentConfig { seed, ..*cfg };
        let fig = fig10::run(&one);
        batching.push(fig.mean_batching_saving());
        com.push(fig.mean_com_saving());
    }
    let stats = |v: &[f64]| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
        (mean, var.sqrt())
    };
    let (bm, bs) = stats(&batching);
    let (cm, cs) = stats(&com);
    println!("Repeatability of the Figure 10 means over seeds {seeds:?}:");
    println!(
        "  Batching saving: {:.2}% +/- {:.3} points (paper: 52%)",
        bm * 100.0,
        bs * 100.0
    );
    println!(
        "  COM saving:      {:.2}% +/- {:.3} points (paper: 85%)",
        cm * 100.0,
        cs * 100.0
    );
    if bs == 0.0 && cs == 0.0 {
        println!("  (identical to the last bit across seeds: in this model energy");
        println!("   is structural — counts x calibrated costs — while seeds only");
        println!("   change sample *values*, and therefore kernel outputs)");
    } else {
        println!("  (the physical noise seeds barely move the energy story)");
    }
}

/// Runs an arbitrary scenario and prints its report.
fn print_run(cfg: &ExperimentConfig, scheme: Scheme, apps: &[iotse_core::AppId]) {
    let result = cfg.run(scheme, apps);
    let b = result.breakdown();
    println!(
        "{scheme} x {apps:?} over {} (seed {}):",
        result.duration, result.seed
    );
    println!(
        "  total {}  (collection {}, interrupt {}, transfer {}, compute {})",
        result.total_energy(),
        b.data_collection,
        b.interrupt,
        b.data_transfer,
        b.app_compute
    );
    println!(
        "  interrupts={} reads={} bytes={} cpu-sleep={:.1}% qos-misses={}",
        result.interrupts,
        result.sensor_reads,
        result.bytes_transferred,
        result.cpu.sleep_fraction() * 100.0,
        result.qos_violations()
    );
    for app in &result.apps {
        let last = app
            .windows
            .last()
            .map_or("-".into(), |w| w.output.summary());
        println!(
            "  {:4} [{:10}] windows={} mean-processing={} last: {last}",
            app.id.to_string(),
            app.flow.to_string(),
            app.windows.len(),
            app.mean_processing(),
        );
    }
}

/// The paper-vs-measured summary table (Markdown).
fn experiments_markdown(cfg: &ExperimentConfig) -> String {
    let mut md = String::new();
    let _ = writeln!(md, "| Experiment | Quantity | Paper | Measured |");
    let _ = writeln!(md, "|---|---|---|---|");

    let f1 = fig01::run(cfg);
    let _ = writeln!(
        md,
        "| Fig 1 | baseline / idle power | 9.5x | {:.1}x |",
        f1.ratio()
    );

    let f3 = fig03::run(cfg);
    let _ = writeln!(
        md,
        "| Fig 3 | BEAM saving on SC+M2X | ~9% | {:.1}% |",
        f3.beam_saving * 100.0
    );

    let f4 = fig04::run(cfg);
    let _ = writeln!(
        md,
        "| Fig 4 | transfer split CPU/MCU/physical | 77/13/10% | {:.0}/{:.0}/{:.0}% |",
        f4.cpu_share * 100.0,
        f4.mcu_share * 100.0,
        f4.link_share * 100.0
    );

    let f5 = fig05::run(cfg);
    let _ = writeln!(
        md,
        "| Fig 5 | CPU sleep fraction baseline / batching | 0% / 93% | {:.0}% / {:.0}% |",
        f5.baseline_cpu_sleep_fraction * 100.0,
        f5.batching_cpu_sleep_fraction * 100.0
    );

    let f6 = fig06::run(cfg);
    let _ = writeln!(
        md,
        "| Fig 6 | mean memory / mean MIPS | 26.2 KB / 47.45 | {:.1} KB / {:.2} |",
        f6.mean_memory_kb(),
        f6.mean_mips()
    );

    let f7 = fig07::run(cfg);
    let _ = writeln!(
        md,
        "| Fig 7 | SC batching saving / interrupts per window | ~50-63% / 1000 to 1 | {:.1}% / {} to {} |",
        f7.saving() * 100.0,
        f7.baseline_interrupts / u64::from(cfg.windows),
        f7.batching_interrupts / u64::from(cfg.windows)
    );

    let f8 = fig08::run(cfg);
    let _ = writeln!(
        md,
        "| Fig 8 | SC timing base (coll/int/tx/comp ms) | 100/48/192/2.21 | {:.0}/{:.0}/{:.0}/{:.2} |",
        f8.baseline.data_collection.as_millis_f64(),
        f8.baseline.interrupt.as_millis_f64(),
        f8.baseline.data_transfer.as_millis_f64(),
        f8.baseline.app_compute.as_millis_f64()
    );
    let _ = writeln!(
        md,
        "| Fig 8 | SC timing COM (coll/comp ms) | 100/21.7 | {:.0}/{:.1} |",
        f8.com.data_collection.as_millis_f64(),
        f8.com.app_compute.as_millis_f64()
    );

    let f9 = fig09::run(cfg);
    let _ = writeln!(
        md,
        "| Fig 9 | SC savings batching / COM | ~50% / 73%+ | {:.1}% / {:.1}% |",
        f9.saving(Scheme::Batching) * 100.0,
        f9.saving(Scheme::Com) * 100.0
    );

    let f10 = fig10::run(cfg);
    let _ = writeln!(
        md,
        "| Fig 10 | mean savings batching / COM | 52% / 85% | {:.1}% / {:.1}% |",
        f10.mean_batching_saving() * 100.0,
        f10.mean_com_saving() * 100.0
    );

    let f11 = fig11::run(cfg);
    let _ = writeln!(
        md,
        "| Fig 11 | mean savings BEAM / BCOM | 29% / ~70% | {:.1}% / {:.1}% |",
        f11.mean_beam_saving() * 100.0,
        f11.mean_bcom_saving() * 100.0
    );

    let f12 = fig12::run(cfg);
    let _ = writeln!(
        md,
        "| Fig 12 | A11 alone batching saving | 5% | {:.1}% |",
        f12.panels[0].saving(Scheme::Batching).unwrap_or(0.0) * 100.0
    );
    let _ = writeln!(
        md,
        "| Fig 12 | A11+A6 BEAM/Batching/BCOM | 2/7/9% | {:.0}/{:.0}/{:.0}% |",
        f12.panels[1].saving(Scheme::Beam).unwrap_or(0.0) * 100.0,
        f12.panels[1].saving(Scheme::Batching).unwrap_or(0.0) * 100.0,
        f12.panels[1].saving(Scheme::Bcom).unwrap_or(0.0) * 100.0
    );
    let _ = writeln!(
        md,
        "| Fig 12 | A11+A6+A1 BEAM/Batching/BCOM | 2/8/10% | {:.0}/{:.0}/{:.0}% |",
        f12.panels[2].saving(Scheme::Beam).unwrap_or(0.0) * 100.0,
        f12.panels[2].saving(Scheme::Batching).unwrap_or(0.0) * 100.0,
        f12.panels[2].saving(Scheme::Bcom).unwrap_or(0.0) * 100.0
    );

    let f13 = fig13::run(cfg);
    let _ = writeln!(
        md,
        "| Fig 13 | mean COM speedup / A3 / A8 | 1.88x / 0.9x / 0.8x | {:.2}x / {:.2}x / {:.2}x |",
        f13.mean(),
        f13.of(iotse_core::AppId::A3).unwrap_or(0.0),
        f13.of(iotse_core::AppId::A8).unwrap_or(0.0)
    );

    let t2 = tables::table2(cfg);
    let all_match = t2
        .rows
        .iter()
        .all(|r| (r.measured_bytes as f64 / 1024.0 - r.declared_kb).abs() < 0.01);
    let _ = writeln!(
        md,
        "| Table II | measured = declared data volumes | (derivation) | {} |",
        if all_match {
            "all 11 rows match"
        } else {
            "MISMATCH"
        }
    );
    md
}
