//! Runs declarative scenario files (`scenarios/*.toml`) on the fleet and
//! grades their expectations.
//!
//! ```text
//! scenario run <file>  [--jobs N] [--format text|json|csv] [--out PATH]
//! scenario check <dir> [--jobs N] [--format text|json|csv] [--out PATH]
//! ```
//!
//! `run` executes one file; `check` executes every `*.toml` directly under
//! a directory in file-name order (the CI corpus gate). Output goes to
//! stdout (and `--out PATH` when given) and is byte-identical across
//! `--jobs` levels. Exit code 0 when every expectation passes, 1 when any
//! fails, 2 for usage, parse or IO errors.

use std::path::Path;
use std::process::ExitCode;

use iotse_bench::scenario::{check_dir, counters, render, run_file};

const USAGE: &str = "usage: scenario run <file>  [--jobs N] [--format text|json|csv] [--out PATH]
       scenario check <dir> [--jobs N] [--format text|json|csv] [--out PATH]
defaults: --jobs 1 --format text
run executes one scenario file; check executes every *.toml directly under
a directory in file-name order and fails if any expectation fails";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (mode, target) = match (args.next(), args.next()) {
        (Some(mode), Some(target)) if mode == "run" || mode == "check" => (mode, target),
        (Some(help), _) if help == "--help" || help == "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => return usage_fail("expected `run <file>` or `check <dir>`"),
    };

    let mut jobs = 1usize;
    let mut format = "text".to_string();
    let mut out_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(j) if j > 0 => jobs = j,
                _ => return usage_fail("--jobs needs a positive integer"),
            },
            "--format" => match args.next() {
                Some(f) => format = f,
                None => return usage_fail("--format needs a name (text, json, csv)"),
            },
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => return usage_fail("--out needs a file path"),
            },
            unknown => return usage_fail(&format!("unknown argument '{unknown}'")),
        }
    }

    let reports = if mode == "run" {
        run_file(Path::new(&target), jobs).map(|r| vec![r])
    } else {
        check_dir(Path::new(&target), jobs)
    };
    let reports = match reports {
        Ok(r) => r,
        Err(e) => return usage_fail(&e),
    };
    let rendered = match render(&reports, &format) {
        Ok(text) => text,
        Err(e) => return usage_fail(&e),
    };
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &rendered) {
            return usage_fail(&format!("cannot write {path}: {e}"));
        }
    }
    print!("{rendered}");
    if counters(&reports).expectations_failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_fail(msg: &str) -> ExitCode {
    eprintln!("{msg}\n{USAGE}");
    ExitCode::from(2)
}
