//! Scenario-file execution for the `scenario` binary: load `scenarios/*.toml`
//! specs, run them on the fleet (via [`iotse_core::scenario_spec`] and the
//! Table II catalog), and render the graded reports as text, JSON or CSV.
//!
//! Every renderer folds reports in input order and formats through
//! deterministic paths only, so output is byte-identical across `--jobs`
//! levels — the CI `scenarios` job `cmp`s a jobs-1 report against jobs-8.

use std::fs;
use std::path::{Path, PathBuf};

use iotse_apps::catalog;
use iotse_apps::kernels::json::Json;
use iotse_core::scenario_spec::{run_spec, ScenarioSpec, SpecReport};

/// Loads and validates one scenario file.
///
/// # Errors
///
/// Returns a rendered `path:line: message` string for unreadable files or
/// spec errors.
pub fn load(path: &Path) -> Result<ScenarioSpec, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    ScenarioSpec::parse(&text).map_err(|e| format!("{}:{}: {}", path.display(), e.line, e.message))
}

/// Loads, runs and grades one scenario file on a `jobs`-wide fleet.
///
/// # Errors
///
/// Propagates [`load`] errors.
pub fn run_file(path: &Path, jobs: usize) -> Result<SpecReport, String> {
    let spec = load(path)?;
    Ok(run_spec(&spec, &catalog::app, jobs))
}

/// The `*.toml` files directly under `dir`, sorted by file name so corpus
/// reports are independent of directory-iteration order.
///
/// # Errors
///
/// Returns a rendered string for unreadable directories or an empty corpus.
pub fn corpus_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("{}: cannot read dir: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("{}: no *.toml scenario files", dir.display()));
    }
    Ok(files)
}

/// Runs every scenario file under `dir` (sorted by name) and returns the
/// graded reports in that order.
///
/// # Errors
///
/// Propagates [`corpus_files`]/[`run_file`] errors; the first bad file
/// aborts the sweep.
pub fn check_dir(dir: &Path, jobs: usize) -> Result<Vec<SpecReport>, String> {
    corpus_files(dir)?
        .iter()
        .map(|p| run_file(p, jobs))
        .collect()
}

/// Exact corpus-level counters, bench-gated in the `scenarios` suite
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusCounters {
    /// Scenario files run.
    pub scenarios_run: u64,
    /// Expectation rows graded across the corpus.
    pub expectations_evaluated: u64,
    /// Expectation rows that failed (0 for a healthy committed corpus).
    pub expectations_failed: u64,
}

/// Folds the corpus counters out of a report list.
#[must_use]
pub fn counters(reports: &[SpecReport]) -> CorpusCounters {
    CorpusCounters {
        scenarios_run: reports.len() as u64,
        expectations_evaluated: reports.iter().map(|r| r.checks.len() as u64).sum(),
        expectations_failed: reports
            .iter()
            .flat_map(|r| r.checks.iter())
            .filter(|c| !c.passed)
            .count() as u64,
    }
}

fn schemes_list(report: &SpecReport) -> String {
    report
        .schemes
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Fixed-width text rendering of one or more scenario reports with a
/// corpus footer (golden-tested; byte-stable).
#[must_use]
pub fn render_text(reports: &[SpecReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in reports {
        let _ = writeln!(
            out,
            "scenario '{}' · schemes {} · {} devices × {} windows · {} runs",
            r.name,
            schemes_list(r),
            r.devices,
            r.windows,
            r.runs
        );
        let _ = write!(
            out,
            "  energy {:.3} uJ · qos missed {}/{} · checksum 0x{:016x}",
            r.total_uj, r.qos_missed, r.app_windows, r.checksum
        );
        if let Some(clean) = r.clean_total_uj {
            let _ = write!(out, " · clean twin {clean:.3} uJ");
        }
        out.push('\n');
        for c in &r.checks {
            let _ = writeln!(
                out,
                "  [{}] {:<16} measured {} · bound {}",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.measured,
                c.bound
            );
        }
        let _ = writeln!(
            out,
            "  result: {}",
            if r.passed() { "PASS" } else { "FAIL" }
        );
    }
    let c = counters(reports);
    let _ = writeln!(
        out,
        "checked {} scenario(s) · {} expectation(s) · {} failed · {}",
        c.scenarios_run,
        c.expectations_evaluated,
        c.expectations_failed,
        if c.expectations_failed == 0 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    out
}

fn report_json(r: &SpecReport) -> Json {
    let mut pairs = vec![
        ("name", Json::String(r.name.clone())),
        ("runs", Json::Number(r.runs as f64)),
        ("devices", Json::Number(f64::from(r.devices))),
        ("windows", Json::Number(f64::from(r.windows))),
        (
            "schemes",
            Json::array(r.schemes.iter().map(|s| Json::String(s.to_string()))),
        ),
        ("total_uj", Json::Number(r.total_uj)),
    ];
    if let Some(clean) = r.clean_total_uj {
        pairs.push(("clean_total_uj", Json::Number(clean)));
    }
    pairs.extend([
        ("qos_missed", Json::Number(r.qos_missed as f64)),
        ("app_windows", Json::Number(r.app_windows as f64)),
        ("checksum", Json::String(format!("0x{:016x}", r.checksum))),
        ("passed", Json::Bool(r.passed())),
        (
            "checks",
            Json::array(r.checks.iter().map(|c| {
                Json::object([
                    ("name", Json::String(c.name.to_string())),
                    ("passed", Json::Bool(c.passed)),
                    ("measured", Json::String(c.measured.clone())),
                    ("bound", Json::String(c.bound.clone())),
                ])
            })),
        ),
    ]);
    Json::object(pairs)
}

/// JSON rendering: corpus counters plus one object per scenario, in input
/// order (golden-tested; the CI artifact and `cmp` gate use this form).
#[must_use]
pub fn render_json(reports: &[SpecReport]) -> String {
    let c = counters(reports);
    let doc = Json::object([
        ("scenarios_run", Json::Number(c.scenarios_run as f64)),
        (
            "expectations_evaluated",
            Json::Number(c.expectations_evaluated as f64),
        ),
        (
            "expectations_failed",
            Json::Number(c.expectations_failed as f64),
        ),
        ("scenarios", Json::array(reports.iter().map(report_json))),
    ]);
    let mut text = doc.to_text();
    text.push('\n');
    text
}

/// CSV rendering: one row per graded expectation, preceded by a `summary`
/// row per scenario (golden-tested).
#[must_use]
pub fn render_csv(reports: &[SpecReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str(
        "scenario,schemes,devices,windows,runs,total_uj,qos_missed,app_windows,checksum,\
         check,passed,measured,bound\n",
    );
    for r in reports {
        let prefix = format!(
            "{},{},{},{},{},{:.3},{},{},0x{:016x}",
            r.name,
            schemes_list(r).replace(',', ";"),
            r.devices,
            r.windows,
            r.runs,
            r.total_uj,
            r.qos_missed,
            r.app_windows,
            r.checksum
        );
        let _ = writeln!(out, "{prefix},summary,{},,", r.passed());
        for c in &r.checks {
            let _ = writeln!(
                out,
                "{prefix},{},{},{},{}",
                c.name, c.passed, c.measured, c.bound
            );
        }
    }
    out
}

/// Renders `reports` in the named format (`text`, `json` or `csv`).
///
/// # Errors
///
/// Returns a message naming the valid formats for anything else.
pub fn render(reports: &[SpecReport], format: &str) -> Result<String, String> {
    match format {
        "text" => Ok(render_text(reports)),
        "json" => Ok(render_json(reports)),
        "csv" => Ok(render_csv(reports)),
        other => Err(format!("unknown format '{other}' (text, json, csv)")),
    }
}
