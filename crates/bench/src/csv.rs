//! Plot-ready CSV export of the figure data.
//!
//! The `figures` binary's `--csv DIR` flag writes one file per rendered
//! target, so the paper's plots can be regenerated with any plotting tool.

use std::fmt::Write as _;

use crate::figures::{fig01, fig09, fig10, fig11, fig12, fig13, tables};
use crate::sweeps::{dma, dvfs, error_rate, mcu_speed, transition};

/// Serializes one table: a header row and data rows, RFC-4180-ish quoting.
///
/// # Panics
///
/// Panics if any data row's width differs from the header's.
#[must_use]
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    push_row(&mut out, header.iter().map(ToString::to_string));
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match header");
        push_row(&mut out, row.iter().cloned());
    }
    out
}

fn push_row(out: &mut String, cells: impl Iterator<Item = String>) {
    let mut first = true;
    for cell in cells {
        if !first {
            out.push(',');
        }
        first = false;
        if cell.contains([',', '"', '\n']) {
            let _ = write!(out, "\"{}\"", cell.replace('"', "\"\""));
        } else {
            out.push_str(&cell);
        }
    }
    out.push('\n');
}

/// Figure 1 as CSV.
#[must_use]
pub fn fig01_csv(fig: &fig01::Fig01) -> String {
    let mut rows: Vec<Vec<String>> = fig
        .per_app_watts
        .iter()
        .map(|(id, w)| vec![id.to_string(), format!("{w:.4}")])
        .collect();
    rows.push(vec![
        "baseline_mean".into(),
        format!("{:.4}", fig.baseline_watts),
    ]);
    rows.push(vec!["idle".into(), format!("{:.4}", fig.idle_watts)]);
    render(&["scenario", "power_w"], &rows)
}

/// Figure 9 as CSV.
#[must_use]
pub fn fig09_csv(fig: &fig09::Fig09) -> String {
    let rows = fig
        .bars
        .iter()
        .map(|(scheme, b)| {
            vec![
                scheme.to_string(),
                format!("{:.3}", b.data_collection.as_millijoules()),
                format!("{:.3}", b.interrupt.as_millijoules()),
                format!("{:.3}", b.data_transfer.as_millijoules()),
                format!("{:.3}", b.app_compute.as_millijoules()),
                format!("{:.3}", b.total().as_millijoules()),
            ]
        })
        .collect::<Vec<_>>();
    render(
        &[
            "scheme",
            "collection_mj",
            "interrupt_mj",
            "transfer_mj",
            "compute_mj",
            "total_mj",
        ],
        &rows,
    )
}

/// Figure 10 as CSV.
#[must_use]
pub fn fig10_csv(fig: &fig10::Fig10) -> String {
    let rows = fig
        .rows
        .iter()
        .flat_map(|r| {
            [
                ("Baseline", r.baseline),
                ("Batching", r.batching),
                ("COM", r.com),
            ]
            .into_iter()
            .map(move |(scheme, b)| {
                vec![
                    r.id.to_string(),
                    scheme.to_string(),
                    format!("{:.3}", b.data_collection.as_millijoules()),
                    format!("{:.3}", b.interrupt.as_millijoules()),
                    format!("{:.3}", b.data_transfer.as_millijoules()),
                    format!("{:.3}", b.app_compute.as_millijoules()),
                ]
            })
        })
        .collect::<Vec<_>>();
    render(
        &[
            "app",
            "scheme",
            "collection_mj",
            "interrupt_mj",
            "transfer_mj",
            "compute_mj",
        ],
        &rows,
    )
}

/// Figure 11 as CSV.
#[must_use]
pub fn fig11_csv(fig: &fig11::Fig11) -> String {
    let rows = fig
        .rows
        .iter()
        .map(|r| {
            vec![
                r.label(),
                format!("{:.3}", r.baseline.total().as_millijoules()),
                format!("{:.4}", r.beam_saving()),
                format!("{:.4}", r.bcom_saving()),
            ]
        })
        .collect::<Vec<_>>();
    render(
        &["combo", "baseline_mj", "beam_saving", "bcom_saving"],
        &rows,
    )
}

/// Figure 12 as CSV.
#[must_use]
pub fn fig12_csv(fig: &fig12::Fig12) -> String {
    let rows = fig
        .panels
        .iter()
        .flat_map(|p| {
            let label = p.label();
            p.bars.iter().map(move |(scheme, b)| {
                vec![
                    label.clone(),
                    scheme.to_string(),
                    format!("{:.3}", b.total().as_millijoules()),
                ]
            })
        })
        .collect::<Vec<_>>();
    render(&["scenario", "scheme", "total_mj"], &rows)
}

/// Figure 13 as CSV.
#[must_use]
pub fn fig13_csv(fig: &fig13::Fig13) -> String {
    let rows = fig
        .speedups
        .iter()
        .map(|(id, s)| vec![id.to_string(), format!("{s:.4}")])
        .collect::<Vec<_>>();
    render(&["app", "speedup"], &rows)
}

/// Table II as CSV.
#[must_use]
pub fn table2_csv(t: &tables::Table2) -> String {
    let rows = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.id.to_string(),
                r.name.clone(),
                r.sensors.join("+"),
                format!("{:.3}", r.measured_bytes as f64 / 1024.0),
                r.measured_interrupts.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    render(&["app", "name", "sensors", "data_kb", "interrupts"], &rows)
}

/// Transition sweep as CSV.
#[must_use]
pub fn transition_csv(sweep: &transition::TransitionSweep) -> String {
    let rows = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.factor),
                format!("{:.4}", p.a2_saving),
                format!("{:.4}", p.a3_saving),
            ]
        })
        .collect::<Vec<_>>();
    render(
        &[
            "transition_factor",
            "a2_batching_saving",
            "a3_batching_saving",
        ],
        &rows,
    )
}

/// MCU-speed sweep as CSV.
#[must_use]
pub fn mcu_speed_csv(sweep: &mcu_speed::McuSpeedSweep) -> String {
    let rows = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                sweep.id.to_string(),
                format!("{}", p.factor),
                format!("{:.4}", p.speedup),
                format!("{:.4}", p.saving),
            ]
        })
        .collect::<Vec<_>>();
    render(
        &["app", "mcu_time_factor", "com_speedup", "com_saving"],
        &rows,
    )
}

/// DMA sweep as CSV.
#[must_use]
pub fn dma_csv(sweep: &dma::DmaSweep) -> String {
    let rows = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                p.scheme.to_string(),
                format!("{:.3}", p.without_mj),
                format!("{:.3}", p.with_mj),
                format!("{:.4}", p.dma_saving()),
            ]
        })
        .collect::<Vec<_>>();
    render(
        &[
            "scenario",
            "scheme",
            "without_dma_mj",
            "with_dma_mj",
            "dma_saving",
        ],
        &rows,
    )
}

/// DVFS sweep as CSV.
#[must_use]
pub fn dvfs_csv(sweep: &dvfs::DvfsSweep) -> String {
    let rows = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.speed),
                format!("{:.3}", p.active_w),
                format!("{:.3}", p.energy_mj),
                p.qos_violations.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    render(
        &["clock_scale", "active_w", "energy_mj", "qos_violations"],
        &rows,
    )
}

/// Error-rate sweep as CSV.
#[must_use]
pub fn error_rate_csv(sweep: &error_rate::ErrorSweep) -> String {
    let rows = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.rate),
                p.reads.to_string(),
                format!("{:.3}", p.energy_mj),
                p.steps.to_string(),
                p.true_steps.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    render(
        &["error_rate", "reads", "energy_mj", "steps", "true_steps"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn render_quotes_when_needed() {
        let csv = render(
            &["a", "b"],
            &[
                vec!["plain".into(), "has,comma".into()],
                vec!["has\"quote".into(), "x".into()],
            ],
        );
        assert_eq!(csv, "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",x\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn render_rejects_ragged_rows() {
        let _ = render(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn figure_csvs_have_expected_shapes() {
        let cfg = ExperimentConfig::quick();
        let f13 = fig13_csv(&crate::figures::fig13::run(&cfg));
        assert_eq!(f13.lines().count(), 11); // header + 10 apps
        assert!(f13.starts_with("app,speedup\n"));

        let t2 = table2_csv(&tables::table2(&cfg));
        assert_eq!(t2.lines().count(), 12); // header + 11 apps
        assert!(t2.contains("A2,Step counter,S4,11.719,1000"));
    }

    #[test]
    fn sweep_csvs_parse_back_row_counts() {
        let cfg = ExperimentConfig::quick();
        let dvfs_rows = dvfs_csv(&dvfs::run(&cfg));
        assert_eq!(dvfs_rows.lines().count(), dvfs::SPEEDS.len() + 1);
        let err_rows = error_rate_csv(&error_rate::run(&cfg));
        assert_eq!(err_rows.lines().count(), error_rate::RATES.len() + 1);
    }
}
