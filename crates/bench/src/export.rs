//! Trace and metrics exporters: Chrome/Perfetto JSON and Prometheus text.
//!
//! Both renderers are pure functions from recorded run data to a `String`,
//! written with deterministic formatting (fixed-precision floats, stable
//! iteration order) so repeated runs — at any `--jobs` level — produce
//! byte-identical output. Neither uses a JSON library: the trace-event
//! format is flat enough that hand-writing it keeps the workspace
//! dependency-free and the bytes fully under our control.
//!
//! * [`chrome_trace`] — the Chrome `trace_event` JSON format (also read by
//!   Perfetto's legacy importer): spans become `"ph":"X"` complete duration
//!   events, point events become `"ph":"i"` instants, and the reconstructed
//!   hub power waveform becomes a `"ph":"C"` counter track.
//! * [`prometheus`] — the Prometheus text exposition format for a
//!   [`MetricsReport`] (counters, gauges, and cumulative-bucket
//!   histograms).

use std::fmt::Write as _;

use iotse_core::{Calibration, RunResult, Telemetry};
use iotse_energy::attribution::Routine;
use iotse_energy::stacks::stack_series_name;
use iotse_sim::metrics::MetricsReport;
use iotse_sim::time::SimTime;
use iotse_sim::trace::FieldValue;

/// The short routine key used in exported labels (`interrupt`,
/// `app_compute`, …) — the series name minus its crate prefix and unit
/// suffix.
pub(crate) fn routine_key(routine: Routine) -> &'static str {
    stack_series_name(routine)
        .trim_start_matches("iotse_energy_stack_")
        .trim_end_matches("_microjoules")
}

/// Escapes `s` for use inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Simulated nanoseconds → trace-event microseconds, fixed 3 decimals.
fn ts_micros(t: SimTime) -> String {
    format!("{:.3}", t.as_nanos() as f64 / 1e3)
}

/// Renders one typed field value as a JSON value.
fn json_field_value(result: &RunResult, value: FieldValue) -> String {
    match value {
        FieldValue::U64(v) => v.to_string(),
        FieldValue::I64(v) => v.to_string(),
        FieldValue::Str(l) => format!("\"{}\"", json_escape(result.trace.label(l))),
        FieldValue::Time(t) => format!("\"{t}\""),
    }
}

/// Renders a run's span tree, point events and power waveform as Chrome
/// `trace_event` JSON — load the output into `chrome://tracing` or
/// <https://ui.perfetto.dev> to see the execution visually.
///
/// Spans become `"ph":"X"` complete events on one thread track (the span
/// tree nests by time, which is how the viewers reconstruct the stack);
/// each carries its self-energy in `args.energy_self_uj`. Point events
/// become `"ph":"i"` thread-scoped instants. If the run recorded phase
/// timelines, the hub power waveform from [`RunResult::power_trace`] is
/// emitted as a `power_mw` counter track (`"ph":"C"`).
#[must_use]
pub fn chrome_trace(result: &RunResult, cal: &Calibration) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
         \"args\":{{\"name\":\"iotse {} seed={}\"}}}}",
        json_escape(&result.scheme.to_string()),
        result.seed
    ));
    events.push(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
         \"args\":{\"name\":\"spans\"}}"
            .to_string(),
    );

    for span in result.trace.spans() {
        let exit = span.exit.unwrap_or(span.enter);
        let mut args = format!("\"energy_self_uj\":{:.3}", span.weight);
        for &(name, value) in &span.fields {
            let _ = write!(
                args,
                ",\"{}\":{}",
                json_escape(result.trace.label(name)),
                json_field_value(result, value)
            );
        }
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{:.3},\
             \"pid\":1,\"tid\":1,\"args\":{{{args}}}}}",
            json_escape(result.trace.label(span.label)),
            span.kind,
            ts_micros(span.enter),
            (exit.as_nanos() - span.enter.as_nanos()) as f64 / 1e3,
        ));
    }

    for event in result.trace.events() {
        let mut args = format!(
            "\"source\":\"{}\"",
            json_escape(result.trace.label(event.source))
        );
        for &(name, value) in &event.fields {
            let _ = write!(
                args,
                ",\"{}\":{}",
                json_escape(result.trace.label(name)),
                json_field_value(result, value)
            );
        }
        let kind = event.kind;
        events.push(format!(
            "{{\"name\":\"{kind}\",\"cat\":\"{kind}\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\
             \"pid\":1,\"tid\":1,\"args\":{{{args}}}}}",
            ts_micros(event.time),
        ));
    }

    if let Some(power) = result.power_trace(cal) {
        for &(t, p) in power.points() {
            events.push(format!(
                "{{\"name\":\"power_mw\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                 \"args\":{{\"mw\":{:.3}}}}}",
                ts_micros(t),
                p.as_milliwatts()
            ));
        }
        if let Some(end) = power.end() {
            events.push(format!(
                "{{\"name\":\"power_mw\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                 \"args\":{{\"mw\":0.000}}}}",
                ts_micros(end)
            ));
        }
    }

    if let Some(tel) = &result.telemetry {
        // One stacked counter sample per window boundary carrying all five
        // routine deltas — viewers render this as the run's stacked energy
        // chart, the trace-side twin of the paper's per-routine bars.
        let series = tel.stacks.all_series();
        if let Some(first) = series.first() {
            for (w, &(t, _)) in first.points().iter().enumerate() {
                let mut args = String::new();
                for (i, &routine) in Routine::ALL.iter().enumerate() {
                    if i > 0 {
                        args.push(',');
                    }
                    let _ = write!(
                        args,
                        "\"{}\":{:.3}",
                        routine_key(routine),
                        series[i].points()[w].1
                    );
                }
                events.push(format!(
                    "{{\"name\":\"energy_stack_uj\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                     \"args\":{{{args}}}}}",
                    ts_micros(t)
                ));
            }
        }
        // Every detector alert becomes a global instant, visible as a
        // marker at the boundary where it fired.
        for alert in &tel.alerts {
            events.push(format!(
                "{{\"name\":\"telemetry_alert\",\"cat\":\"alert\",\"ph\":\"i\",\"ts\":{},\
                 \"s\":\"g\",\"pid\":1,\"tid\":1,\
                 \"args\":{{\"series\":\"{}\",\"detail\":\"{}\"}}}}",
                ts_micros(alert.at),
                json_escape(alert.series),
                json_escape(&alert.to_string())
            ));
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Formats a gauge/sum value: integral floats render without a fraction
/// (`1200` not `1200.0`), everything else uses Rust's shortest round-trip
/// form — both are deterministic functions of the bits.
fn prom_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Renders a [`MetricsReport`] in the Prometheus text exposition format:
/// a `# TYPE` line per family, cumulative `_bucket{le="..."}` series plus
/// `_sum`/`_count` for histograms. Families appear in name order (the
/// report is already stable-sorted).
#[must_use]
pub fn prometheus(report: &MetricsReport) -> String {
    let mut out = String::new();
    for (name, value) in &report.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &report.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", prom_number(*value));
    }
    for hist in &report.histograms {
        let _ = writeln!(out, "# TYPE {} histogram", hist.name);
        let mut cumulative = 0u64;
        for (bound, count) in hist.bounds.iter().zip(&hist.counts) {
            cumulative += count;
            let _ = writeln!(
                out,
                "{}_bucket{{le=\"{}\"}} {cumulative}",
                hist.name,
                prom_number(*bound)
            );
        }
        let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", hist.name, hist.count);
        let _ = writeln!(out, "{}_sum {}", hist.name, prom_number(hist.sum));
        let _ = writeln!(out, "{}_count {}", hist.name, hist.count);
    }
    out
}

/// Renders a run's windowed telemetry in the Prometheus text exposition
/// format, for appending after [`prometheus`]: every stack and app series
/// point becomes a `{window="N"}`-labeled gauge sample (app series carry
/// an `app` label too), followed by a per-series alert count family.
/// Everything is emitted in fixed order (routine series in
/// [`Routine::ALL`] order, apps in scenario order), so the text is
/// byte-identical across runs and `--jobs` levels.
#[must_use]
pub fn prometheus_telemetry(tel: &Telemetry) -> String {
    let mut out = String::new();
    for series in tel.stacks.all_series() {
        let _ = writeln!(out, "# TYPE {} gauge", series.name());
        for (w, &(_, v)) in series.points().iter().enumerate() {
            let _ = writeln!(
                out,
                "{}{{window=\"{w}\"}} {}",
                series.name(),
                prom_number(v)
            );
        }
    }
    if !tel.apps.is_empty() {
        let _ = writeln!(
            out,
            "# TYPE {} gauge",
            iotse_core::telemetry::APP_SLACK_SERIES
        );
        for app in &tel.apps {
            for (w, &(_, v)) in app.slack_ms.points().iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{}{{app=\"{}\",window=\"{w}\"}} {}",
                    iotse_core::telemetry::APP_SLACK_SERIES,
                    json_escape(&app.name),
                    prom_number(v)
                );
            }
        }
        let _ = writeln!(
            out,
            "# TYPE {} gauge",
            iotse_core::telemetry::APP_PROCESSING_SERIES
        );
        for app in &tel.apps {
            for (w, &(_, v)) in app.processing_ms.points().iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{}{{app=\"{}\",window=\"{w}\"}} {}",
                    iotse_core::telemetry::APP_PROCESSING_SERIES,
                    json_escape(&app.name),
                    prom_number(v)
                );
            }
        }
    }
    let mut alert_lines = String::new();
    for &routine in &Routine::ALL {
        let name = stack_series_name(routine);
        let n = tel.alerts.iter().filter(|a| a.series == name).count();
        if n > 0 {
            let _ = writeln!(
                alert_lines,
                "iotse_core_telemetry_alerts{{series=\"{name}\"}} {n}"
            );
        }
    }
    let budget = tel.budget_alerts();
    if budget > 0 {
        let _ = writeln!(
            alert_lines,
            "iotse_core_telemetry_alerts{{series=\"{}\"}} {budget}",
            iotse_energy::stacks::WORKLOAD_TOTAL_SERIES
        );
    }
    if !alert_lines.is_empty() {
        let _ = writeln!(out, "# TYPE iotse_core_telemetry_alerts gauge");
        out.push_str(&alert_lines);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_core::{Scenario, Scheme};
    use iotse_sim::metrics::MetricsRegistry;

    fn traced_run() -> RunResult {
        Scenario::new(
            Scheme::Batching,
            iotse_apps::catalog::apps(&[iotse_core::AppId::A2], 42),
        )
        .windows(1)
        .seed(42)
        .with_trace()
        .with_timeline()
        .with_metrics()
        .run()
    }

    /// A structural JSON validity check: balanced braces/brackets outside
    /// string literals, correct escape handling. Not a full parser, but it
    /// catches every way hand-written JSON usually breaks.
    fn assert_balanced_json(s: &str) {
        let mut depth = 0i64;
        let mut in_string = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "closer before opener");
        }
        assert_eq!(depth, 0, "unbalanced braces/brackets");
        assert!(!in_string, "unterminated string");
    }

    #[test]
    fn chrome_trace_is_structurally_valid_json() {
        let result = traced_run();
        let json = chrome_trace(&result, &Calibration::paper());
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(json.contains("\"ph\":\"X\""), "no duration events");
        assert!(json.contains("\"ph\":\"i\""), "no instant events");
        assert!(json.contains("\"ph\":\"C\""), "no counter track");
        assert!(json.contains("\"name\":\"iotse_core_run\""));
        assert!(json.contains("\"name\":\"power_mw\""));
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        let a = chrome_trace(&traced_run(), &Calibration::paper());
        let b = chrome_trace(&traced_run(), &Calibration::paper());
        assert_eq!(a, b);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("iotse_bench_things_total");
        reg.add(c, 7);
        let g = reg.gauge("iotse_bench_level");
        reg.set_gauge(g, 2.5);
        let h = reg.histogram("iotse_bench_sizes", &[10.0, 100.0]);
        reg.observe(h, 5.0);
        reg.observe(h, 50.0);
        reg.observe(h, 500.0);
        let text = prometheus(&reg.snapshot());
        let expected = "\
# TYPE iotse_bench_things_total counter
iotse_bench_things_total 7
# TYPE iotse_bench_level gauge
iotse_bench_level 2.5
# TYPE iotse_bench_sizes histogram
iotse_bench_sizes_bucket{le=\"10\"} 1
iotse_bench_sizes_bucket{le=\"100\"} 2
iotse_bench_sizes_bucket{le=\"+Inf\"} 3
iotse_bench_sizes_sum 555
iotse_bench_sizes_count 3
";
        assert_eq!(text, expected);
    }

    fn telemetry_run() -> RunResult {
        Scenario::new(
            Scheme::Batching,
            iotse_apps::catalog::apps(&[iotse_core::AppId::A2], 42),
        )
        .windows(2)
        .seed(42)
        .with_trace()
        .with_timeline()
        .with_telemetry()
        .run()
    }

    #[test]
    fn chrome_trace_includes_telemetry_counter_track() {
        let result = telemetry_run();
        let json = chrome_trace(&result, &Calibration::paper());
        assert_balanced_json(&json);
        assert!(json.contains("\"name\":\"energy_stack_uj\""));
        assert!(json.contains("\"interrupt\":"));
        assert!(json.contains("\"idle\":"));
        // A fair-weather run raises no alert instants.
        assert!(!json.contains("telemetry_alert"));
    }

    #[test]
    fn prometheus_telemetry_labels_every_point() {
        let result = telemetry_run();
        let tel = result.telemetry.as_ref().expect("telemetry on");
        let text = prometheus_telemetry(tel);
        assert!(text.contains("# TYPE iotse_energy_stack_interrupt_microjoules gauge"));
        assert!(text.contains("iotse_energy_stack_idle_microjoules{window=\"1\"}"));
        assert!(text.contains("iotse_core_app_slack_ms{app=\"Step counter\",window=\"0\"}"));
        // Deterministic byte-for-byte.
        let again = telemetry_run();
        assert_eq!(
            text,
            prometheus_telemetry(again.telemetry.as_ref().unwrap())
        );
    }

    #[test]
    fn prom_numbers_are_stable() {
        assert_eq!(prom_number(1200.0), "1200");
        assert_eq!(prom_number(2.5), "2.5");
        assert_eq!(prom_number(0.0), "0");
    }
}
