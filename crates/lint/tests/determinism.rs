//! Determinism property: the analyzer's report is a pure function of the
//! file *set* — two runs are byte-identical, and discovery order must not
//! matter. The call-graph passes make this worth guarding: symbol-table
//! indexes, fan-out resolution, and BFS witnesses all iterate over
//! containers whose construction order follows file order.

use std::path::PathBuf;

use iotse_lint::{check_files, report, scan_workspace};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Deterministic Fisher–Yates driven by a fixed LCG, so the "shuffled"
/// order is stable across runs but thoroughly unlike the sorted one.
fn shuffle<T>(items: &mut [T], mut state: u64) {
    for i in (1..items.len()).rev() {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let j = (state >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

#[test]
fn two_runs_are_byte_identical() {
    let root = fixtures_root();
    let a = check_files(&root, scan_workspace(&root).expect("scan"));
    let b = check_files(&root, scan_workspace(&root).expect("scan"));
    assert_eq!(report::json(&a), report::json(&b));
    assert_eq!(report::text(&a), report::text(&b));
}

#[test]
fn file_discovery_order_does_not_matter() {
    let root = fixtures_root();
    let baseline = report::json(&check_files(&root, scan_workspace(&root).expect("scan")));
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let mut files = scan_workspace(&root).expect("scan");
        shuffle(&mut files, seed);
        let shuffled = report::json(&check_files(&root, files));
        assert_eq!(
            baseline, shuffled,
            "report depends on file order (seed {seed})"
        );
    }
}

#[test]
fn reversed_order_matches_too() {
    let root = fixtures_root();
    let baseline = report::json(&check_files(&root, scan_workspace(&root).expect("scan")));
    let mut files = scan_workspace(&root).expect("scan");
    files.reverse();
    assert_eq!(baseline, report::json(&check_files(&root, files)));
}
