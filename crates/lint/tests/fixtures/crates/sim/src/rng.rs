//! Fixture twin of the deterministic RNG: every fn defined in a
//! `src/rng.rs` file is an RNG intrinsic to the effect analysis.

/// A tiny deterministic generator.
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Advances the stream and returns the next draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.state
    }
}
