//! Fixture: wall-clock reads, hash-ordered collections and ambient state in
//! a deterministic crate. Every marked line must produce a finding; the
//! suppressed and `#[cfg(test)]` lines must not.

use std::collections::HashMap; // IOTSE-D02
use std::time::Instant; // IOTSE-W01

pub static mut TICKS: u64 = 0; // IOTSE-D03

pub fn elapsed_ms() -> u128 {
    let started = Instant::now(); // IOTSE-W01
    started.elapsed().as_millis()
}

pub fn suppressed_read() -> u128 {
    // iotse-lint: allow(IOTSE-W01) fixture: an honoured per-line suppression
    let started = Instant::now();
    started.elapsed().as_millis()
}

pub fn lookup(config: &HashMap<String, u64>) -> u64 {
    // IOTSE-D02 above; IOTSE-D03 (env) and IOTSE-E04 (unwrap) below
    let raw = std::env::var("IOTSE_SEED").unwrap();
    let mut rng = thread_rng(); // IOTSE-D03
    raw.len() as u64 + rng.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_use_the_host_clock_and_unwrap() {
        let t = Instant::now();
        assert!(t.elapsed().as_nanos() < u128::MAX);
        let _ = Some(1u32).unwrap();
    }
}
