//! Fixture: integration tests are exempt from the determinism rules — no
//! findings for the host-clock read or the unwrap below.

use std::time::Instant;

#[test]
fn timing_tests_may_read_the_host_clock() {
    let t = Instant::now();
    let _ = Some(t.elapsed()).unwrap();
}
