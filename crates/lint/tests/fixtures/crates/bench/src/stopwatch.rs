//! Fixture: the allowlisted stopwatch file — host-clock reads here are the
//! point of the file and must produce no `IOTSE-W01` findings.

use std::time::Instant;

pub fn measure<R>(f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let started = Instant::now();
    let out = f();
    (out, started.elapsed())
}
