//! Fixture for `IOTSE-K10`: kernel hot-path allocations.

pub struct WindowOps {
    history: Vec<f64>,
}

impl WindowOps {
    pub fn new() -> WindowOps {
        // lint: one-time constructor; the history buffer is reused per window
        let history = Vec::new();
        WindowOps { history }
    }

    pub fn smooth(&mut self, samples: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        let mut taps = vec![0.0; 4];
        for (i, s) in samples.iter().enumerate() {
            taps[i % 4] = *s;
            out.push(taps.iter().sum::<f64>() / 4.0);
        }
        self.history.push(out.last().copied().unwrap_or(0.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothing_is_bounded() {
        let scratch = vec![1.0, 2.0, 3.0];
        assert_eq!(WindowOps::new().smooth(&scratch).len(), 3);
    }
}
