//! `IOTSE-M11` fixtures: kernels that claim memoizability while drawing
//! randomness through the call graph.

/// Claims memoizability but draws from the RNG — M11 must fire.
pub struct NoisyKernel {
    rng: SimRng,
}

impl Workload for NoisyKernel {
    fn memoizable(&self) -> bool {
        true
    }

    fn compute(&mut self, _data: &WindowData) -> AppOutput {
        AppOutput::Steps(self.rng.next_u64())
    }
}

/// The same impurity, waived at the compute site — M11 must stay silent.
pub struct WaivedKernel {
    rng: SimRng,
}

impl Workload for WaivedKernel {
    fn memoizable(&self) -> bool {
        true
    }

    // iotse-lint: allow(IOTSE-M11)
    fn compute(&mut self, _data: &WindowData) -> AppOutput {
        AppOutput::Steps(self.rng.next_u64())
    }
}

/// Honest about its impurity: not memoizable, so M11 has nothing to say.
pub struct HonestKernel {
    rng: SimRng,
}

impl Workload for HonestKernel {
    fn memoizable(&self) -> bool {
        false
    }

    fn compute(&mut self, _data: &WindowData) -> AppOutput {
        AppOutput::Steps(self.rng.next_u64())
    }
}
