//! Fixture: bare numeric casts in energy accounting and the `#[allow]`
//! justification inventory.

/// Truncates joules into a bucket index — must produce `IOTSE-C05`.
pub fn bucket(joules: f64) -> usize {
    joules as usize // IOTSE-C05
}

// lint: fixture: a justified suppression carries this marker — clean
#[allow(dead_code)]
fn justified() {}

#[allow(dead_code)] // IOTSE-A07: justification marker absent
fn unjustified() {}
