//! Fixture: Table I audit — S1 matches the ground truth exactly, S2 has a
//! drifted read time, and S6 is absent from the TOML entirely.

pub fn barometer() -> SensorSpec {
    SensorSpec {
        id: SensorId::S1,
        name: "Barometer",
        bus: BusKind::Spi,
        read_time: SimDuration::from_micros(37_500),
        power_min: mw(2.12),
        power_typical: mw(19.47),
        power_max: mw(28.93),
        payload: PayloadKind::Double,
        max_rate_hz: Some(157.0),
        qos_rate_hz: Some(10.0),
        mcu_friendly: true,
    }
}

pub fn temperature() -> SensorSpec {
    SensorSpec {
        id: SensorId::S2,
        name: "Temperature",
        bus: BusKind::I2c,
        read_time: SimDuration::from_micros(20_000), // IOTSE-T06: truth says 18_750 us
        power_min: mw(1.0),
        power_typical: mw(13.5),
        power_max: mw(20.0),
        payload: PayloadKind::Double,
        max_rate_hz: Some(120.0),
        qos_rate_hz: Some(10.0),
        mcu_friendly: true,
    }
}

pub fn pulse() -> SensorSpec {
    // IOTSE-T06: this whole sensor is missing from the ground truth
    SensorSpec {
        id: SensorId::S6,
        name: "Pulse",
        bus: BusKind::Analog,
        read_time: SimDuration::from_micros(100),
        power_min: mw(9.9),
        power_typical: mw(15.0),
        power_max: mw(22.0),
        payload: PayloadKind::Int,
        max_rate_hz: Some(1_000_000.0),
        qos_rate_hz: Some(1_000.0),
        mcu_friendly: true,
    }
}
