//! Fixture: platform-constant audit — `cpu_sleep` drifts from the ground
//! truth; the other fields match.

impl Calibration {
    /// The fixture platform.
    pub fn paper() -> Self {
        Calibration {
            cpu_active: Power::from_watts(5.0),
            cpu_sleep: Power::from_watts(2.0), // IOTSE-T06: truth says 1.5 W
            mcu_memory_bytes: 80 * 1024,
        }
    }
}
