//! `IOTSE-S12` fixtures: seed-stream splits whose labels collide or
//! cannot be audited statically.

fn colliding(seeds: &SeedTree) {
    let _a = seeds.stream("dup/label");
    let _b = seeds.stream("dup/label");
}

fn waived(seeds: &SeedTree) {
    let _a = seeds.stream("quiet/label");
    // iotse-lint: allow(IOTSE-S12)
    let _b = seeds.stream("quiet/label");
}

fn dynamic(seeds: &SeedTree, name: &str) {
    let _ = seeds.stream(name);
}

fn disjoint(seeds: &SeedTree) {
    let faults = seeds.child("fixture-faults");
    let _a = faults.stream("drop");
    let _b = faults.stream("stuck");
    // `derive` is the non-consuming cache-key twin of `stream`.
    let _k = seeds.derive("dup/label");
}
