//! Fixture: metric/span label naming (`IOTSE-M09`).

/// Registers this module's metrics and spans.
pub fn register(reg: &mut MetricsRegistry, log: &mut TraceLog, t: SimTime) {
    // Well-named registrations stay silent.
    let good_counter = reg.counter("iotse_core_interrupts_total");
    let good_span = log.enter_span(t, TraceKind::Scheme, "iotse_core_tick");
    // Violations: no prefix, upper case, unknown crate segment, bare span.
    let bad_counter = reg.counter("interrupts");
    let bad_gauge = reg.gauge("iotse_core_Power");
    let bad_hist = reg.histogram("iotse_kernel_sizes", &[1.0, 10.0]);
    let bad_span = log.enter_span(t, TraceKind::Scheme, "tick");
    // A suppressed legacy name is waived like any other rule.
    // iotse-lint: allow(IOTSE-M09) legacy dashboards expect this name
    let legacy = reg.counter("old_style_total");
    // Pass-through of a variable never fires: no literal on the line.
    let looked_up = reg.gauge(name);
    let _ = (
        good_counter,
        good_span,
        bad_counter,
        bad_gauge,
        bad_hist,
        bad_span,
        legacy,
        looked_up,
    );
}
