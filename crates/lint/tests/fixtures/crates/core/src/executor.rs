//! Fixture: panicking library code in a no-panic crate.

/// Unwraps its input — must produce an `IOTSE-E04` finding.
pub fn take(v: Option<u32>) -> u32 {
    v.unwrap() // IOTSE-E04
}

/// A documented-invariant expect under a justified suppression — clean.
pub fn must(v: Option<u32>) -> u32 {
    // iotse-lint: allow(IOTSE-E04) fixture: documented invariant expect
    v.expect("fixture invariant: caller checked is_some")
}

/// Explicit panic — must produce an `IOTSE-E04` finding.
pub fn boom() {
    panic!("fixture"); // IOTSE-E04
}
