//! Fixture: public-item doc coverage in `core`.

pub mod calibration;
pub mod executor;

/// A documented struct — clean.
pub struct Documented;

pub struct Undocumented; // IOTSE-P08

/// Documented, with attributes between the doc and the item — clean.
#[derive(Debug, Clone)]
pub struct AttributedButDocumented;

pub fn undocumented_fn() {} // IOTSE-P08

pub(crate) fn restricted_needs_no_docs() {}
