//! `IOTSE-H13` fixtures: annotated hot paths whose transitive call
//! graphs allocate — plus effective-visibility entries that `IOTSE-P08`
//! must leave alone.

/// Steady-state step that must stay allocation-free — H13 must fire on
/// the unjustified `vec!` it reaches through `refill`.
// iotse-lint: hot-path
pub fn tick_step(buf: &mut Vec<u8>) {
    refill(buf);
}

fn refill(buf: &mut Vec<u8>) {
    let staged = vec![0u8; 16];
    buf.extend_from_slice(&staged);
}

/// The same reach, waived at the annotation — H13 must stay silent.
// iotse-lint: hot-path
// iotse-lint: allow(IOTSE-H13)
pub fn tick_step_waived(buf: &mut Vec<u8>) {
    refill(buf);
}

// Restricted visibility is not public API: P08 must not ask for docs.
pub(crate) struct ScratchIndex {
    pub(crate) slots: usize,
}

pub(crate) fn reserve(index: &mut ScratchIndex) {
    index.slots += 1;
}

// A `pub` item inside a private module is not public API either.
mod internal {
    pub fn helper() -> usize {
        7
    }
}
