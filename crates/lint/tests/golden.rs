//! Golden-output test: the analyzer runs over its own fixture tree and the
//! full report — text and JSON — must match the checked-in
//! `tests/fixtures/expected.txt` / `expected.json` byte for byte. Regenerate
//! with `UPDATE_GOLDEN=1 cargo test -p iotse-lint --test golden` (the same
//! convention as PR 1's golden CSVs).

use std::path::{Path, PathBuf};

use iotse_lint::{report, rules, run_check, Finding};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_findings() -> Vec<Finding> {
    run_check(&fixtures_root()).expect("fixture tree scans cleanly")
}

fn check_golden(rendered: &str, golden: &Path) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden, rendered).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(golden).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDEN=1 cargo test -p iotse-lint --test golden",
            golden.display()
        )
    });
    assert_eq!(
        rendered,
        want,
        "report drifted from {}; rerun with UPDATE_GOLDEN=1 if intentional",
        golden.display()
    );
}

#[test]
fn fixture_report_matches_golden_text() {
    check_golden(
        &report::text(&fixture_findings()),
        &fixtures_root().join("expected.txt"),
    );
}

#[test]
fn fixture_report_matches_golden_json() {
    check_golden(
        &report::json(&fixture_findings()),
        &fixtures_root().join("expected.json"),
    );
}

#[test]
fn every_rule_fires_on_the_fixture_tree() {
    let findings = fixture_findings();
    for (id, _) in rules::ALL {
        assert!(
            findings.iter().any(|f| f.rule == *id),
            "rule {id} produced no finding on the fixture tree"
        );
    }
}

#[test]
fn allowlisted_suppressed_and_test_code_stay_silent() {
    let findings = fixture_findings();
    for f in &findings {
        assert!(
            !f.file.contains("bench/src/stopwatch.rs"),
            "allowlisted stopwatch flagged: {f:?}"
        );
        assert!(
            !f.file.contains("/tests/"),
            "test-only fixture code flagged: {f:?}"
        );
    }
    // The suppressed `Instant::now()` in clock.rs must not reappear: every
    // W01 finding there sits on an unsuppressed line.
    let clock = "crates/sim/src/clock.rs";
    let clock_w01 = findings
        .iter()
        .filter(|f| f.file == clock && f.rule == "IOTSE-W01")
        .count();
    assert_eq!(
        clock_w01, 2,
        "expected exactly the two unsuppressed W01 hits"
    );
}

#[test]
fn the_workspace_itself_is_clean() {
    let findings = run_check(&workspace_root()).expect("workspace scans cleanly");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        report::text(&findings)
    );
}
