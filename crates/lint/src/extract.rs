//! Extraction of paper constants from Rust source.
//!
//! Rule `IOTSE-T06` audits two files against `specs/table1.toml`:
//!
//! * `crates/sensors/src/catalog.rs` — every `SensorSpec { … }` literal is
//!   one Table I row;
//! * `crates/core/src/calibration.rs` — the field initializers of
//!   `Calibration::paper()` are the platform's power-state constants.
//!
//! Extraction works on the comment-stripped view (strings kept), so the
//! field grammar is simply `name: value,` with values built from the small
//! set of constructors used by those files (`SimDuration::from_*`,
//! `Power::from_*`, `mw(..)`, `Some(..)`, enum paths, numeric expressions).

use std::collections::BTreeMap;

use crate::scan::SourceFile;
use crate::toml_mini::eval_expr;

/// A canonicalized value extracted from source or ground truth.
///
/// Durations are in nanoseconds, powers in milliwatts, so both sides of the
/// audit normalize to the same units before comparing.
#[derive(Debug, Clone, PartialEq)]
pub enum Extracted {
    /// A plain or unit-normalized number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An enum-variant or quoted-string name (`"Spi"`, `"Double"`).
    Name(String),
    /// An explicit absence (`None` in source, omitted key in TOML).
    Absent,
}

impl std::fmt::Display for Extracted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Extracted::Num(n) => write!(f, "{n}"),
            Extracted::Bool(b) => write!(f, "{b}"),
            Extracted::Name(s) => write!(f, "{s}"),
            Extracted::Absent => write!(f, "absent"),
        }
    }
}

/// One struct-literal field: line number and canonical value.
pub type Fields = BTreeMap<String, (usize, Extracted)>;

/// Parses every `SensorSpec { … }` literal in the catalog source.
/// Returns `(line of the literal, fields)` per row, in file order.
#[must_use]
pub fn sensor_specs(file: &SourceFile) -> Vec<(usize, Fields)> {
    let mut out = Vec::new();
    let mut li = 0;
    while li < file.code_str.len() {
        // Trimmed-prefix match: `-> SensorSpec {` on a fn signature must
        // not start a row, only the literal itself does.
        if file.code_str[li].trim_start().starts_with("SensorSpec {") {
            let (fields, end) = parse_fields(file, li);
            out.push((li + 1, fields));
            li = end;
        }
        li += 1;
    }
    out
}

/// Parses the field initializers of `Calibration::paper()`.
#[must_use]
pub fn calibration_paper(file: &SourceFile) -> Fields {
    for (li, line) in file.code_str.iter().enumerate() {
        if line.contains("fn paper()") {
            // The struct literal opens within the next few lines.
            for j in li..(li + 4).min(file.code_str.len()) {
                if file.code_str[j].contains("Calibration {") {
                    return parse_fields(file, j).0;
                }
            }
        }
    }
    Fields::new()
}

/// Parses `name: value,` fields from the line after `start` until the
/// brace depth returns to zero. Returns the fields and the last consumed
/// line index.
fn parse_fields(file: &SourceFile, start: usize) -> (Fields, usize) {
    let mut fields = Fields::new();
    let mut depth = brace_delta(&file.code_str[start]).max(1);
    let mut li = start + 1;
    while li < file.code_str.len() && depth > 0 {
        let line = &file.code_str[li];
        let trimmed = line.trim();
        // Only parse fields at the literal's own level.
        if depth == 1 {
            if let Some(colon) = trimmed.find(": ") {
                let name = trimmed[..colon].trim();
                if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !name.is_empty() {
                    let value = trimmed[colon + 1..].trim().trim_end_matches(',');
                    fields.insert(name.to_string(), (li + 1, canonicalize(value)));
                }
            }
        }
        depth += brace_delta(line);
        li += 1;
    }
    (fields, li.saturating_sub(1))
}

fn brace_delta(line: &str) -> i64 {
    let mut d = 0;
    for b in line.bytes() {
        match b {
            b'{' => d += 1,
            b'}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Canonicalizes one field initializer into an [`Extracted`] value:
/// durations to nanoseconds, powers to milliwatts.
#[must_use]
pub fn canonicalize(value: &str) -> Extracted {
    let v = value.trim();
    match v {
        "true" => return Extracted::Bool(true),
        "false" => return Extracted::Bool(false),
        "None" => return Extracted::Absent,
        _ => {}
    }
    if let Some(inner) = call_arg(v, "Some") {
        return canonicalize(&inner);
    }
    // Unit constructors, normalized.
    for (ctor, scale) in [
        ("SimDuration::from_secs_f64", 1e9),
        ("SimDuration::from_secs", 1e9),
        ("SimDuration::from_millis", 1e6),
        ("SimDuration::from_micros", 1e3),
        ("SimDuration::from_nanos", 1.0),
        ("Power::from_watts", 1e3),
        ("Power::from_milliwatts", 1.0),
        ("mw", 1.0),
    ] {
        if let Some(inner) = call_arg(v, ctor) {
            if let Ok(n) = eval_expr(&inner) {
                return Extracted::Num(n * scale);
            }
        }
    }
    // Enum paths: `SensorId::S4`, `BusKind::Spi`, `PayloadKind::Double`.
    if let Some(pos) = v.rfind("::") {
        let name = &v[pos + 2..];
        if !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric()) {
            return Extracted::Name(name.to_string());
        }
    }
    if let Some(inner) = v.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        return Extracted::Name(inner.to_string());
    }
    if let Ok(n) = eval_expr(v) {
        return Extracted::Num(n);
    }
    Extracted::Name(v.to_string())
}

/// Extracts the argument of `ctor(args)` if `v` is exactly that call.
fn call_arg(v: &str, ctor: &str) -> Option<String> {
    let rest = v.strip_prefix(ctor)?.trim_start();
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    Some(inner.to_string())
}

/// Payload-kind byte sizes, mirrored from
/// `iotse_sensors::spec::PayloadKind::size_bytes` (audited by the fixture
/// tests; the linter cannot link against the crate it audits without
/// chicken-and-egg rebuild ordering).
#[must_use]
pub fn payload_bytes(kind: &str) -> Option<f64> {
    match kind {
        "Double" => Some(8.0),
        "Int" => Some(4.0),
        "IntTriple" => Some(12.0),
        "Signature" => Some(512.0),
        "RgbLow" => Some(24.0 * 1024.0),
        "RgbHigh" => Some(619.0 * 1024.0),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/sensors/src/catalog.rs", src)
    }

    #[test]
    fn parses_a_sensor_spec_literal() {
        let src = "pub fn barometer() -> SensorSpec {\n    SensorSpec {\n        id: SensorId::S1,\n        name: \"Barometer\",\n        bus: BusKind::Spi,\n        read_time: SimDuration::from_micros(37_500),\n        power_min: mw(2.12),\n        payload: PayloadKind::Double,\n        max_rate_hz: Some(157.0),\n        qos_rate_hz: None,\n        mcu_friendly: true,\n    }\n}\n";
        let rows = sensor_specs(&file(src));
        assert_eq!(rows.len(), 1);
        let (_, f) = &rows[0];
        assert_eq!(f["id"].1, Extracted::Name("S1".into()));
        assert_eq!(f["name"].1, Extracted::Name("Barometer".into()));
        assert_eq!(f["bus"].1, Extracted::Name("Spi".into()));
        assert_eq!(f["read_time"].1, Extracted::Num(37_500_000.0));
        assert_eq!(f["power_min"].1, Extracted::Num(2.12));
        assert_eq!(f["max_rate_hz"].1, Extracted::Num(157.0));
        assert_eq!(f["qos_rate_hz"].1, Extracted::Absent);
        assert_eq!(f["mcu_friendly"].1, Extracted::Bool(true));
        assert_eq!(f["read_time"].0, 6, "field line is tracked");
    }

    #[test]
    fn parses_calibration_paper_with_expressions() {
        let src = "impl Calibration {\n    pub fn paper() -> Self {\n        Calibration {\n            cpu_active: Power::from_watts(5.0),\n            mcu_active: Power::from_watts(5.0 * 13.0 / 77.0),\n            mcu_memory_bytes: 80 * 1024,\n            transfer_per_byte: SimDuration::from_nanos(8_320),\n            dma_enabled: false,\n        }\n    }\n}\n";
        let f = calibration_paper(&SourceFile::parse("crates/core/src/calibration.rs", src));
        assert_eq!(f["cpu_active"].1, Extracted::Num(5000.0));
        assert_eq!(f["mcu_active"].1, Extracted::Num(5.0 * 13.0 / 77.0 * 1e3));
        assert_eq!(f["mcu_memory_bytes"].1, Extracted::Num(81920.0));
        assert_eq!(f["transfer_per_byte"].1, Extracted::Num(8320.0));
        assert_eq!(f["dma_enabled"].1, Extracted::Bool(false));
    }

    #[test]
    fn nested_braces_do_not_leak_fields() {
        let src = "SensorSpec {\n    id: SensorId::S2,\n    other: Inner { x: 1.0 },\n}\n";
        let rows = sensor_specs(&file(src));
        assert_eq!(rows.len(), 1);
        assert!(!rows[0].1.contains_key("x"));
    }

    #[test]
    fn payload_sizes_match_spec_rs() {
        assert_eq!(payload_bytes("Double"), Some(8.0));
        assert_eq!(payload_bytes("RgbHigh"), Some(633_856.0));
        assert_eq!(payload_bytes("Unknown"), None);
    }
}
