//! Rendering findings as text or JSON.
//!
//! The text form is one `file:line: RULE-ID message` per line — the same
//! shape compilers emit, so editors and CI log scrapers pick the locations
//! up for free. The JSON form is hand-rolled (std-only workspace) with a
//! **stable field order** (`file`, `line`, `rule`, `message`) so downstream
//! tooling can diff reports byte-for-byte.

use crate::Finding;

/// Renders the classic compiler-style text report (one line per finding,
/// trailing newline iff non-empty).
#[must_use]
pub fn text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: {} {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    out
}

/// Renders the machine-readable report: an object with a `findings` array
/// (stable per-finding field order) and a `count`.
#[must_use]
pub fn json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            escape(&f.file),
            f.line,
            escape(f.rule),
            escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding::at(
                "a.rs",
                3,
                "IOTSE-E04",
                "`.unwrap()` in \"library\" code".to_string(),
            ),
            Finding::at("b.rs", 1, "IOTSE-W01", "wall-clock `Instant`".to_string()),
        ]
    }

    #[test]
    fn text_is_compiler_shaped() {
        let t = text(&sample());
        assert!(t.starts_with("a.rs:3: IOTSE-E04 "));
        assert_eq!(t.lines().count(), 2);
        assert_eq!(text(&[]), "");
    }

    #[test]
    fn json_has_stable_order_and_escaping() {
        let j = json(&sample());
        let file_pos = j.find("\"file\"").expect("file key");
        let line_pos = j.find("\"line\"").expect("line key");
        let rule_pos = j.find("\"rule\"").expect("rule key");
        let msg_pos = j.find("\"message\"").expect("message key");
        assert!(file_pos < line_pos && line_pos < rule_pos && rule_pos < msg_pos);
        assert!(j.contains("\\\"library\\\""), "quotes escaped: {j}");
        assert!(j.ends_with("\"count\": 2\n}\n"));
        assert_eq!(json(&[]), "{\n  \"findings\": [],\n  \"count\": 0\n}\n");
    }
}
