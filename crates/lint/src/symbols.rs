//! The workspace-wide symbol table.
//!
//! Every library-code function parsed by [`crate::parse`] becomes one
//! [`FnInfo`] node, indexed three ways for call resolution:
//!
//! * **bare name** — free functions, for `helper(..)` calls;
//! * **`(type, name)`** — associated functions and methods, for
//!   `Type::assoc(..)` and `Self::assoc(..)` calls;
//! * **method name** — functions with a `self` receiver, for `.method(..)`
//!   calls, whose receiver type the analyzer does not know.
//!
//! Resolution is name-based and therefore an *over*-approximation: a
//! `.sample(..)` call links to every workspace `sample` method its crate
//! can see. That direction is safe for the purity/allocation rules (extra
//! edges can only add effects, never hide them); the dependency filter
//! below (parsed from the `Cargo.toml` graph, when present) keeps the
//! over-approximation from crossing crate boundaries that the compiler
//! itself would reject.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::parse::{FnItem, ParsedFile};
use crate::scan::{FileKind, SourceFile};

/// One file and its parse, paired for the analysis passes.
#[derive(Debug)]
pub struct FileUnit<'a> {
    /// The lexical views.
    pub src: &'a SourceFile,
    /// The item parse.
    pub parsed: ParsedFile,
}

/// Identifies one function node: `(file index, fn index within file)`
/// flattened into the global `fns` vector.
pub type FnId = usize;

/// One function known to the symbol table.
#[derive(Debug)]
pub struct FnInfo {
    /// Index into [`Symbols::units`].
    pub file: usize,
    /// Index into that unit's `parsed.fns`.
    pub local: usize,
    /// Bare name.
    pub name: String,
    /// Implementing type (or trait) name, if defined inside an
    /// `impl`/`trait` block.
    pub owner_ty: Option<String>,
    /// Owning crate (directory under `crates/`).
    pub crate_name: String,
    /// `true` when the signature takes a `self` receiver.
    pub is_method: bool,
}

/// The symbol table over every library-code function in the tree.
#[derive(Debug)]
pub struct Symbols<'a> {
    /// All parsed files (every kind — rules pick what they need).
    pub units: Vec<FileUnit<'a>>,
    /// Flattened function nodes (library, non-test code only).
    pub fns: Vec<FnInfo>,
    by_bare: BTreeMap<String, Vec<FnId>>,
    by_assoc: BTreeMap<(String, String), Vec<FnId>>,
    by_method: BTreeMap<String, Vec<FnId>>,
    /// Transitive `Cargo.toml` dependency closure per crate; `None` when
    /// no manifests were found (fixture trees), which disables the filter.
    deps: Option<BTreeMap<String, BTreeSet<String>>>,
}

impl<'a> Symbols<'a> {
    /// Parses every file and builds the table. `root` is only used to look
    /// for `crates/*/Cargo.toml` manifests; a tree without manifests gets
    /// no dependency filtering.
    #[must_use]
    pub fn build(root: &Path, files: &'a [SourceFile]) -> Symbols<'a> {
        let units: Vec<FileUnit<'a>> = files
            .iter()
            .map(|src| FileUnit {
                src,
                parsed: ParsedFile::parse(src),
            })
            .collect();
        let mut fns = Vec::new();
        let mut by_bare: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_assoc: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut by_method: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (fi, unit) in units.iter().enumerate() {
            if unit.src.kind != FileKind::Lib {
                continue;
            }
            for (li, f) in unit.parsed.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let id = fns.len();
                let owner_ty = f
                    .owner
                    .map(|oi| unit.parsed.impls[oi].ty.clone())
                    .filter(|t| !t.is_empty());
                let is_method = sig_has_self_receiver(&f.sig);
                if let Some(ty) = &owner_ty {
                    by_assoc
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    if is_method {
                        by_method.entry(f.name.clone()).or_default().push(id);
                    }
                } else {
                    by_bare.entry(f.name.clone()).or_default().push(id);
                }
                fns.push(FnInfo {
                    file: fi,
                    local: li,
                    name: f.name.clone(),
                    owner_ty,
                    crate_name: unit.src.crate_name.clone(),
                    is_method,
                });
            }
        }
        Symbols {
            units,
            fns,
            by_bare,
            by_assoc,
            by_method,
            deps: crate_deps(root),
        }
    }

    /// The node for `(file index, local fn index)`, when it is in the
    /// table (library, non-test code).
    #[must_use]
    pub fn id_of(&self, file: usize, local: usize) -> Option<FnId> {
        self.fns
            .iter()
            .position(|f| f.file == file && f.local == local)
    }

    /// The parsed [`FnItem`] behind a node.
    #[must_use]
    pub fn item(&self, id: FnId) -> &FnItem {
        let info = &self.fns[id];
        &self.units[info.file].parsed.fns[info.local]
    }

    /// The source file a node lives in.
    #[must_use]
    pub fn src(&self, id: FnId) -> &SourceFile {
        self.units[self.fns[id].file].src
    }

    /// `Type::name` or bare `name` — how a node prints in finding paths.
    #[must_use]
    pub fn display(&self, id: FnId) -> String {
        let info = &self.fns[id];
        match &info.owner_ty {
            Some(ty) => format!("{ty}::{}", info.name),
            None => info.name.clone(),
        }
    }

    /// `true` if code in `from` may call into `to` per the manifest graph
    /// (always `true` when no manifests were found).
    #[must_use]
    pub fn visible(&self, from: &str, to: &str) -> bool {
        if from == to || from == "iotse" {
            return true;
        }
        match &self.deps {
            None => true,
            Some(deps) => deps.get(from).is_some_and(|d| d.contains(to)),
        }
    }

    fn filter_visible(&self, from_crate: &str, ids: &[FnId]) -> Vec<FnId> {
        ids.iter()
            .copied()
            .filter(|&id| self.visible(from_crate, &self.fns[id].crate_name))
            .collect()
    }

    /// Candidates for a plain `name(..)` call from `from_crate`.
    #[must_use]
    pub fn resolve_bare(&self, from_crate: &str, name: &str) -> Vec<FnId> {
        self.by_bare
            .get(name)
            .map_or_else(Vec::new, |ids| self.filter_visible(from_crate, ids))
    }

    /// Candidates for a `Qual::name(..)` call. `self_ty` is the enclosing
    /// impl's type, for `Self::` resolution. Unknown qualifiers fall back
    /// to bare-name resolution (module paths like `rng::splitmix64`).
    #[must_use]
    pub fn resolve_qualified(
        &self,
        from_crate: &str,
        qual: &str,
        name: &str,
        self_ty: Option<&str>,
    ) -> Vec<FnId> {
        let ty = if qual == "Self" {
            match self_ty {
                Some(t) => t,
                None => return Vec::new(),
            }
        } else {
            qual
        };
        if let Some(ids) = self.by_assoc.get(&(ty.to_string(), name.to_string())) {
            return self.filter_visible(from_crate, ids);
        }
        // Module-qualified free function (`rng::splitmix64(..)`).
        self.resolve_bare(from_crate, name)
    }

    /// The base type name of `owner.field`, from the recorded struct
    /// fields (`rng: SimRng` → `SimRng`, `seeds: &'a SeedTree` →
    /// `SeedTree`, `faults: Option<FaultPlan>` → `FaultPlan`). Used to pin
    /// `self.field.method(..)` calls: common `std` wrappers are stepped
    /// over so the workspace payload type wins.
    #[must_use]
    pub fn field_type(&self, owner: &str, field: &str) -> Option<String> {
        const WRAPPERS: &[&str] = &[
            "Box",
            "Rc",
            "Arc",
            "Option",
            "Vec",
            "VecDeque",
            "BinaryHeap",
            "RefCell",
            "Cell",
            "Mutex",
        ];
        for unit in &self.units {
            for f in &unit.parsed.fields {
                if f.owner == owner && f.name == field {
                    let mut names =
                        f.ty.split(|c: char| !(c.is_alphanumeric() || c == '_'))
                            .filter(|t| t.chars().next().is_some_and(char::is_uppercase));
                    let first = names.next()?;
                    if WRAPPERS.contains(&first) {
                        return Some(names.next().unwrap_or(first).to_string());
                    }
                    return Some(first.to_string());
                }
            }
        }
        None
    }

    /// Candidates for a `.name(..)` method call (receiver type unknown).
    #[must_use]
    pub fn resolve_method(&self, from_crate: &str, name: &str) -> Vec<FnId> {
        self.by_method
            .get(name)
            .map_or_else(Vec::new, |ids| self.filter_visible(from_crate, ids))
    }
}

/// `true` if a signature's parameter list starts with a `self` receiver.
fn sig_has_self_receiver(sig: &str) -> bool {
    let Some(open) = sig.find('(') else {
        return false;
    };
    let head = &sig[open + 1..];
    let head = head.trim_start_matches(['&', ' ']);
    let head = head.strip_prefix("mut ").unwrap_or(head);
    // A lifetime may sit between `&` and `self` (`&'a self`).
    let head = match head.strip_prefix('\'') {
        Some(rest) => rest
            .split_once(' ')
            .map_or("", |(_, r)| r)
            .trim_start_matches(['&', ' ']),
        None => head,
    };
    head == "self"
        || head.starts_with("self ")
        || head.starts_with("self,")
        || head.starts_with("self)")
}

/// Parses `crates/*/Cargo.toml` into a transitively-closed dependency map
/// (crate directory names). Returns `None` when no manifest exists under
/// `root` — fixture trees are analyzed without the visibility filter.
fn crate_deps(root: &Path) -> Option<BTreeMap<String, BTreeSet<String>>> {
    let crates_dir = root.join("crates");
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let entries = std::fs::read_dir(&crates_dir).ok()?;
    let mut names: Vec<String> = entries
        .filter_map(Result::ok)
        .filter(|e| e.path().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    for name in &names {
        let manifest = crates_dir.join(name).join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        direct.insert(name.clone(), manifest_deps(&text));
    }
    if direct.is_empty() {
        return None;
    }
    // Transitive closure (the graph is tiny).
    let mut closed = direct.clone();
    loop {
        let mut changed = false;
        for name in &names {
            let Some(cur) = closed.get(name).cloned() else {
                continue;
            };
            let mut next = cur.clone();
            for dep in &cur {
                if let Some(dd) = closed.get(dep) {
                    next.extend(dd.iter().cloned());
                }
            }
            if next.len() != cur.len() {
                closed.insert(name.clone(), next);
                changed = true;
            }
        }
        if !changed {
            return Some(closed);
        }
    }
}

/// Extracts `iotse-*` dependency names (as crate directory names) from a
/// manifest's `[dependencies]`/`[dev-dependencies]` sections.
fn manifest_deps(text: &str) -> BTreeSet<String> {
    let mut deps = BTreeSet::new();
    let mut in_deps = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line.starts_with("[dependencies") || line.starts_with("[dev-dependencies");
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some(name) = line.split(['=', ' ', '.']).next() {
            if let Some(short) = name.trim().strip_prefix("iotse-") {
                deps.insert(short.to_string());
            }
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(files: &[SourceFile]) -> Symbols<'_> {
        Symbols::build(Path::new("/nonexistent"), files)
    }

    #[test]
    fn free_assoc_and_method_indexes() {
        let files = vec![SourceFile::parse(
            "crates/core/src/x.rs",
            "pub fn free() {}\nstruct S;\nimpl S {\n    pub fn assoc() {}\n    pub fn m(&self) {}\n}\n",
        )];
        let t = table(&files);
        assert_eq!(t.fns.len(), 3);
        assert_eq!(t.resolve_bare("core", "free").len(), 1);
        assert_eq!(t.resolve_qualified("core", "S", "assoc", None).len(), 1);
        assert_eq!(t.resolve_method("core", "m").len(), 1);
        assert!(
            t.resolve_method("core", "assoc").is_empty(),
            "no self receiver"
        );
        assert_eq!(t.display(t.resolve_method("core", "m")[0]), "S::m");
    }

    #[test]
    fn self_qualified_calls_resolve_through_the_impl_type() {
        let files = vec![SourceFile::parse(
            "crates/core/src/x.rs",
            "struct S;\nimpl S {\n    fn a() {}\n}\n",
        )];
        let t = table(&files);
        assert_eq!(t.resolve_qualified("core", "Self", "a", Some("S")).len(), 1);
        assert!(t.resolve_qualified("core", "Self", "a", None).is_empty());
    }

    #[test]
    fn tests_and_non_lib_files_stay_out_of_the_table() {
        let files = vec![
            SourceFile::parse(
                "crates/core/src/x.rs",
                "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n",
            ),
            SourceFile::parse("crates/bench/src/bin/b.rs", "fn main() {}\n"),
            SourceFile::parse("crates/core/tests/it.rs", "fn helper() {}\n"),
        ];
        let t = table(&files);
        assert!(t.fns.is_empty());
    }

    #[test]
    fn self_receiver_detection() {
        assert!(sig_has_self_receiver("fn m(&self)"));
        assert!(sig_has_self_receiver("fn m(&mut self, x: u8)"));
        assert!(sig_has_self_receiver("fn m(self)"));
        assert!(sig_has_self_receiver("fn m(&'a self)"));
        assert!(!sig_has_self_receiver("fn m(selfish: u8)"));
        assert!(!sig_has_self_receiver("fn m(x: &Self)"));
    }

    #[test]
    fn manifest_deps_parse_iotse_paths() {
        let text = "[package]\nname = \"iotse-core\"\n[dependencies]\niotse-sim.workspace = true\niotse-sensors = { path = \"../sensors\" }\nserde = \"1\"\n";
        let d = manifest_deps(text);
        assert_eq!(
            d.into_iter().collect::<Vec<_>>(),
            vec!["sensors".to_string(), "sim".to_string()]
        );
    }
}
