//! A miniature TOML reader for `specs/table1.toml` and `scenarios/*.toml`.
//!
//! Supports `[section]` tables, `[[section]]` arrays of tables, and
//! `key = value` lines where the value is a bool, a number, a quoted string,
//! a single-line `["a", "b"]` list of quoted strings, or a quoted **numeric
//! expression** (products/quotients of literals, e.g.
//! `"5.0 * 13.0 / 77.0"`). Expressions let the ground-truth file state a
//! fitted constant exactly the way the source does, so the comparison is
//! bit-exact instead of decimal-rounded.

use std::collections::BTreeMap;

/// One parsed value, with the line it was defined on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean literal.
    Bool(bool),
    /// A number (possibly from a quoted expression).
    Num(f64),
    /// A non-numeric quoted string.
    Str(String),
    /// A single-line list of quoted strings.
    List(Vec<String>),
}

/// A `key = value` table with per-key line numbers.
pub type Table = BTreeMap<String, (usize, Value)>;

/// The parsed file: named single tables and named arrays of tables.
#[derive(Debug, Default)]
pub struct Document {
    /// `[name]` tables.
    pub tables: BTreeMap<String, (usize, Table)>,
    /// `[[name]]` arrays, in file order.
    pub arrays: BTreeMap<String, Vec<(usize, Table)>>,
}

/// Parses `text`.
///
/// # Errors
///
/// Returns `(line, message)` for the first malformed line.
pub fn parse(text: &str) -> Result<Document, (usize, String)> {
    enum Target {
        None,
        Table(String),
        Array(String),
    }
    let mut doc = Document::default();
    let mut target = Target::None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            let name = name.trim().to_string();
            doc.arrays
                .entry(name.clone())
                .or_default()
                .push((lineno, Table::new()));
            target = Target::Array(name);
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let name = name.trim().to_string();
            doc.tables
                .entry(name.clone())
                .or_insert((lineno, Table::new()));
            target = Target::Table(name);
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err((lineno, format!("expected key = value, got `{line}`")));
        };
        let key = line[..eq].trim().to_string();
        let value = parse_value(line[eq + 1..].trim())
            .map_err(|e| (lineno, format!("bad value for `{key}`: {e}")))?;
        let table = match &target {
            Target::None => return Err((lineno, "key outside any [section]".to_string())),
            Target::Table(name) => &mut doc.tables.get_mut(name).expect("just inserted").1,
            Target::Array(name) => {
                &mut doc
                    .arrays
                    .get_mut(name)
                    .and_then(|v| v.last_mut())
                    .expect("just inserted")
                    .1
            }
        };
        table.insert(key, (lineno, value));
    }
    Ok(doc)
}

/// Removes a `#` comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Result<Value, String> {
    match v {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Some(inner) = v.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let inner = inner.trim();
        let mut items = Vec::new();
        if !inner.is_empty() {
            for item in inner.split(',') {
                let item = item.trim();
                let Some(s) = item.strip_prefix('"').and_then(|r| r.strip_suffix('"')) else {
                    return Err(format!("list item is not a quoted string: `{item}`"));
                };
                items.push(s.to_string());
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(inner) = v.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        // A quoted numeric expression evaluates to a number; anything else
        // stays a string.
        if let Ok(n) = eval_expr(inner) {
            return Ok(Value::Num(n));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    eval_expr(v).map(Value::Num)
}

/// Evaluates a product/quotient chain of numeric literals
/// (`80 * 1024`, `5.0 * 13.0 / 77.0`). Underscore separators are accepted.
pub fn eval_expr(expr: &str) -> Result<f64, String> {
    let mut acc: Option<f64> = None;
    let mut op = b'*';
    for tok in expr.split_whitespace().flat_map(split_ops) {
        match tok.as_str() {
            "*" | "/" => {
                if acc.is_none() {
                    return Err(format!("operator before operand in `{expr}`"));
                }
                op = tok.as_bytes()[0];
            }
            t => {
                let n: f64 = t
                    .replace('_', "")
                    .parse()
                    .map_err(|_| format!("not a number: `{t}`"))?;
                acc = Some(match (acc, op) {
                    (None, _) => n,
                    (Some(a), b'*') => a * n,
                    (Some(a), _) => a / n,
                });
            }
        }
    }
    acc.ok_or_else(|| format!("empty expression `{expr}`"))
}

/// Splits a whitespace-free token around `*` and `/` (so `80*1024` works).
fn split_ops(tok: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in tok.chars() {
        if ch == '*' || ch == '/' {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            out.push(ch.to_string());
        } else {
            cur.push(ch);
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_values() {
        let doc = parse(
            "# header\n[platform]\ncpu_active_w = 5.0\nmcu_memory_bytes = 80 * 1024\n\n[[sensor]]\nid = \"S1\"\nmcu_friendly = true\n[[sensor]]\nid = \"S2\"\nmax_rate_hz = 1_000_000.0\n",
        )
        .expect("parses");
        let (_, platform) = &doc.tables["platform"];
        assert_eq!(platform["cpu_active_w"].1, Value::Num(5.0));
        assert_eq!(platform["mcu_memory_bytes"].1, Value::Num(81920.0));
        let sensors = &doc.arrays["sensor"];
        assert_eq!(sensors.len(), 2);
        assert_eq!(sensors[0].1["id"].1, Value::Str("S1".into()));
        assert_eq!(sensors[0].1["mcu_friendly"].1, Value::Bool(true));
        assert_eq!(sensors[1].1["max_rate_hz"].1, Value::Num(1_000_000.0));
    }

    #[test]
    fn quoted_expressions_become_numbers() {
        let doc = parse("[p]\nx = \"5.0 * 13.0 / 77.0\"\nname = \"Barometer\"\n").expect("parses");
        let (_, p) = &doc.tables["p"];
        assert_eq!(p["x"].1, Value::Num(5.0 * 13.0 / 77.0));
        assert_eq!(p["name"].1, Value::Str("Barometer".into()));
    }

    #[test]
    fn comments_and_line_numbers() {
        let doc = parse("[p] # section\nx = 1 # one\n").expect("parses");
        let (_, p) = &doc.tables["p"];
        assert_eq!(p["x"].0, 2);
    }

    #[test]
    fn errors_carry_line() {
        let err = parse("[p]\nbogus\n").expect_err("malformed");
        assert_eq!(err.0, 2);
        let err = parse("x = 1\n").expect_err("no section");
        assert_eq!(err.0, 1);
    }

    #[test]
    fn lists_parse_and_reject_unquoted_items() {
        let doc = parse("[m]\napps = [\"A1\", \"A2\"]\nnone = []\n").expect("parses");
        let (_, m) = &doc.tables["m"];
        assert_eq!(m["apps"].1, Value::List(vec!["A1".into(), "A2".into()]));
        assert_eq!(m["none"].1, Value::List(Vec::new()));
        let err = parse("[m]\napps = [A1]\n").expect_err("unquoted");
        assert_eq!(err.0, 2);
    }

    #[test]
    fn eval_handles_dense_and_spaced() {
        assert_eq!(eval_expr("80*1024").expect("ok"), 81920.0);
        assert_eq!(eval_expr("24 * 1024").expect("ok"), 24576.0);
        assert!(eval_expr("abc").is_err());
    }
}
