//! The source model: lexical views, file classification, test spans and
//! suppressions.
//!
//! `iotse-lint` deliberately avoids a full Rust parser (the registry is
//! unreachable, so `syn` is off the table). Instead every file is split into
//! three byte-aligned **views** by a small state machine:
//!
//! * `code` — comments and string/char literals blanked to spaces,
//! * `code_str` — comments blanked, string literals kept (for extracting
//!   `name: "Barometer"` from the catalog),
//! * `comments` — only comment text kept (for `// lint:` justifications and
//!   `// iotse-lint: allow(..)` suppressions).
//!
//! Searching the right view makes the naive substring rules sound: a
//! `HashMap` mentioned in a doc comment or inside a string literal can never
//! trigger a finding, and a suppression marker inside a string literal (as
//! in this linter's own source) is never honoured.

use std::collections::BTreeSet;

/// What kind of target a file belongs to, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: the deterministic result paths.
    Lib,
    /// Binary / example code: drivers, allowed to touch the environment.
    Bin,
    /// Integration tests and benches: exempt from the determinism rules.
    Test,
}

/// One scanned `.rs` file with its lexical views.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Owning crate (directory under `crates/`, or `iotse` for the root).
    pub crate_name: String,
    /// Target classification.
    pub kind: FileKind,
    /// Original lines.
    pub raw: Vec<String>,
    /// Comments and string literals blanked.
    pub code: Vec<String>,
    /// Comments blanked, strings kept.
    pub code_str: Vec<String>,
    /// Only comments kept.
    pub comments: Vec<String>,
    /// 1-based inclusive line ranges of `#[cfg(test)] mod` bodies.
    pub test_spans: Vec<(usize, usize)>,
    /// Per 1-based line: rule ids suppressed on that line.
    pub suppressions: Vec<BTreeSet<String>>,
}

impl SourceFile {
    /// Builds the source model for one file.
    #[must_use]
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let cls = classify(text);
        let raw: Vec<String> = split_lines(text);
        let code = project(text, &cls, |c| c == Cls::Code);
        let code_str = project(text, &cls, |c| c != Cls::Comment);
        let comments = project(text, &cls, |c| c == Cls::Comment);
        let test_spans = find_test_spans(&code);
        let suppressions = find_suppressions(&comments);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_of(rel_path),
            kind: kind_of(rel_path),
            raw,
            code,
            code_str,
            comments,
            test_spans,
            suppressions,
        }
    }

    /// `true` if `line` (1-based) falls inside a `#[cfg(test)]` module.
    #[must_use]
    pub fn in_test_span(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| line >= a && line <= b)
    }

    /// `true` if `rule` is suppressed for a finding on `line` (1-based):
    /// the `// iotse-lint: allow(RULE)` marker may sit on the finding's own
    /// line or on the line directly above it.
    #[must_use]
    pub fn is_suppressed(&self, line: usize, rule: &str) -> bool {
        let hit = |l: usize| {
            self.suppressions
                .get(l.wrapping_sub(1))
                .is_some_and(|s| s.contains(rule))
        };
        hit(line) || (line > 1 && hit(line - 1))
    }
}

/// Byte classification produced by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cls {
    Code,
    Str,
    Comment,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Classifies every byte of `text` as code, string-literal or comment.
#[allow(clippy::too_many_lines)] // lint: one linear state machine; splitting it would obscure the lexing states
fn classify(text: &str) -> Vec<Cls> {
    let b = text.as_bytes();
    let n = b.len();
    let mut cls = vec![Cls::Code; n];
    let mut i = 0;
    while i < n {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                cls[i] = Cls::Comment;
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 0usize;
            while i < n {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    cls[i] = Cls::Comment;
                    cls[i + 1] = Cls::Comment;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    cls[i] = Cls::Comment;
                    cls[i + 1] = Cls::Comment;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    cls[i] = Cls::Comment;
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"..." / r#"..."# (optionally b-prefixed).
        if (c == b'r' || c == b'b') && (i == 0 || !is_ident(b[i - 1])) {
            let mut j = i;
            if b[j] == b'b' && j + 1 < n && b[j + 1] == b'r' {
                j += 1;
            }
            if b[j] == b'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < n && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == b'"' {
                    // Found a raw string from i to its terminator.
                    let mut e = k + 1;
                    'scan: while e < n {
                        if b[e] == b'"' {
                            let mut h = 0usize;
                            while e + 1 + h < n && h < hashes && b[e + 1 + h] == b'#' {
                                h += 1;
                            }
                            if h == hashes {
                                e += 1 + hashes;
                                break 'scan;
                            }
                        }
                        e += 1;
                    }
                    for s in cls.iter_mut().take(e.min(n)).skip(i) {
                        *s = Cls::Str;
                    }
                    i = e;
                    continue;
                }
            }
        }
        // Plain string (optionally b-prefixed).
        if c == b'"'
            || (c == b'b' && i + 1 < n && b[i + 1] == b'"' && (i == 0 || !is_ident(b[i - 1])))
        {
            let start = i;
            if c == b'b' {
                i += 1;
            }
            cls[start] = Cls::Str;
            cls[i] = Cls::Str;
            i += 1;
            while i < n {
                if b[i] == b'\\' && i + 1 < n {
                    cls[i] = Cls::Str;
                    cls[i + 1] = Cls::Str;
                    i += 2;
                } else if b[i] == b'"' {
                    cls[i] = Cls::Str;
                    i += 1;
                    break;
                } else {
                    cls[i] = Cls::Str;
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if let Some(end) = char_literal_end(b, i) {
                for s in cls.iter_mut().take(end + 1).skip(i) {
                    *s = Cls::Str;
                }
                i = end + 1;
            } else {
                i += 1; // lifetime: the quote stays code
            }
            continue;
        }
        i += 1;
    }
    cls
}

/// If a char literal starts at `i`, returns the index of its closing quote.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let n = b.len();
    if i + 1 >= n {
        return None;
    }
    if b[i + 1] == b'\\' {
        // Escaped: scan (bounded) for the closing quote.
        let mut j = i + 2;
        let cap = (i + 16).min(n);
        while j < cap {
            if b[j] == b'\'' {
                return Some(j);
            }
            j += 1;
        }
        return None;
    }
    // One plain char then a quote — otherwise it is a lifetime.
    if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
        return Some(i + 2);
    }
    None
}

fn split_lines(text: &str) -> Vec<String> {
    text.split('\n')
        .map(|l| l.trim_end_matches('\r').to_string())
        .collect()
}

/// Projects `text` into per-line strings keeping only bytes whose class
/// passes `keep`; everything else becomes a space (byte positions are
/// preserved so column-free line matching stays aligned).
fn project(text: &str, cls: &[Cls], keep: impl Fn(Cls) -> bool) -> Vec<String> {
    let mut lines = Vec::new();
    let mut cur = Vec::new();
    for (i, &byte) in text.as_bytes().iter().enumerate() {
        if byte == b'\n' {
            lines.push(String::from_utf8_lossy(&cur).into_owned());
            cur.clear();
        } else if keep(cls[i]) {
            cur.push(byte);
        } else {
            cur.push(b' ');
        }
    }
    lines.push(String::from_utf8_lossy(&cur).into_owned());
    for l in &mut lines {
        while l.ends_with(['\r', ' ']) {
            l.pop();
        }
    }
    lines
}

/// Finds `#[cfg(test)] mod … { … }` bodies by brace counting on the code
/// view. Returns 1-based inclusive line ranges.
fn find_test_spans(code: &[String]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut li = 0;
    while li < code.len() {
        if code[li].contains("#[cfg(test)]") {
            // Find the `mod` keyword within the next few lines.
            let mut mj = None;
            for (j, line) in code
                .iter()
                .enumerate()
                .take((li + 4).min(code.len()))
                .skip(li)
            {
                if find_word(line, "mod").is_some() {
                    mj = Some(j);
                    break;
                }
            }
            if let Some(start) = mj {
                let mut depth = 0i64;
                let mut opened = false;
                let mut end = start;
                'outer: for (j, line) in code.iter().enumerate().skip(start) {
                    for ch in line.bytes() {
                        match ch {
                            b'{' => {
                                depth += 1;
                                opened = true;
                            }
                            b'}' => {
                                depth -= 1;
                                if opened && depth == 0 {
                                    end = j;
                                    break 'outer;
                                }
                            }
                            _ => {}
                        }
                    }
                    end = j;
                }
                spans.push((li + 1, end + 1));
                li = end + 1;
                continue;
            }
        }
        li += 1;
    }
    spans
}

/// Marker introducing a per-line suppression in a comment.
const SUPPRESS: &str = "iotse-lint: allow(";

fn find_suppressions(comments: &[String]) -> Vec<BTreeSet<String>> {
    comments
        .iter()
        .map(|line| {
            let mut set = BTreeSet::new();
            let mut rest = line.as_str();
            while let Some(pos) = rest.find(SUPPRESS) {
                let after = &rest[pos + SUPPRESS.len()..];
                if let Some(close) = after.find(')') {
                    for id in after[..close].split(',') {
                        let id = id.trim();
                        if !id.is_empty() {
                            set.insert(id.to_string());
                        }
                    }
                    rest = &after[close..];
                } else {
                    break;
                }
            }
            set
        })
        .collect()
}

fn crate_of(rel_path: &str) -> String {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        if let Some(slash) = rest.find('/') {
            return rest[..slash].to_string();
        }
    }
    "iotse".to_string()
}

fn kind_of(rel_path: &str) -> FileKind {
    if rel_path.contains("/tests/")
        || rel_path.starts_with("tests/")
        || rel_path.contains("/benches/")
    {
        FileKind::Test
    } else if rel_path.contains("/src/bin/")
        || rel_path.ends_with("src/main.rs")
        || rel_path.contains("/examples/")
        || rel_path.starts_with("examples/")
    {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Finds `word` in `line` at identifier boundaries, returning its byte
/// offset.
#[must_use]
pub fn find_word(line: &str, word: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(rel) = line[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident(b[at - 1]);
        let end = at + word.len();
        let after_ok = end >= b.len() || !is_ident(b[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_separated() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet m: HashMap<u8, u8>;";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.code[0].contains("HashMap"), "{}", f.code[0]);
        assert!(f.code[1].contains("HashMap"));
        assert!(f.comments[0].contains("HashMap"));
        assert!(f.code_str[0].contains("HashMap"), "{}", f.code_str[0]);
    }

    #[test]
    fn raw_strings_and_chars_are_masked() {
        let src = "let r = r#\"Instant\"#; let c = 'x'; let lt: &'static str = \"\";";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.code[0].contains("Instant"));
        assert!(f.code[0].contains("static"), "lifetime stays code");
    }

    #[test]
    fn nested_block_comments_close() {
        let src = "/* a /* b */ c */ let x = 1;";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.code[0].contains("let x = 1;"));
        assert!(!f.code[0].contains('a'));
    }

    #[test]
    fn test_spans_cover_cfg_test_mod() {
        let src =
            "pub fn a() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\npub fn b() {}";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert_eq!(f.test_spans, vec![(2, 5)]);
        assert!(f.in_test_span(4));
        assert!(!f.in_test_span(6));
    }

    #[test]
    fn suppressions_parse_and_apply_to_next_line() {
        let src = "// iotse-lint: allow(IOTSE-E04, IOTSE-W01) reason\nx.unwrap();\ny.unwrap();";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.is_suppressed(1, "IOTSE-E04"));
        assert!(f.is_suppressed(2, "IOTSE-E04"));
        assert!(f.is_suppressed(2, "IOTSE-W01"));
        assert!(!f.is_suppressed(3, "IOTSE-E04"));
    }

    #[test]
    fn suppression_in_string_literal_is_ignored() {
        let src = "let s = \"iotse-lint: allow(IOTSE-E04)\";\nx.unwrap();";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.is_suppressed(2, "IOTSE-E04"));
    }

    #[test]
    fn classification_of_paths() {
        let f = SourceFile::parse("crates/sim/src/rng.rs", "");
        assert_eq!(f.crate_name, "sim");
        assert_eq!(f.kind, FileKind::Lib);
        let t = SourceFile::parse("crates/bench/tests/golden.rs", "");
        assert_eq!(t.kind, FileKind::Test);
        let b = SourceFile::parse("crates/bench/src/bin/figures.rs", "");
        assert_eq!(b.kind, FileKind::Bin);
        let root = SourceFile::parse("src/lib.rs", "");
        assert_eq!(root.crate_name, "iotse");
    }

    #[test]
    fn find_word_respects_boundaries() {
        assert_eq!(find_word("MyHashMap", "HashMap"), None);
        assert_eq!(find_word("HashMap::new()", "HashMap"), Some(0));
        assert_eq!(find_word("a HashMapx b HashMap", "HashMap"), Some(13));
    }
}
