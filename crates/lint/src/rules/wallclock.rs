//! `IOTSE-W01` — no wall-clock reads outside the bench stopwatch.
//!
//! `std::time::Instant` and `SystemTime` leak host time into results; all
//! simulated time must flow through `SimTime`/`SimDuration`. Real-time
//! measurement is quarantined in `crates/bench/src/stopwatch.rs`.

use crate::scan::{find_word, FileKind, SourceFile};
use crate::Finding;

/// Rule ID.
pub const ID: &str = "IOTSE-W01";
/// One-line summary for `explain`.
pub const SUMMARY: &str =
    "wall-clock reads (Instant/SystemTime) are only allowed in crates/bench/src/stopwatch.rs";

/// Files allowed to read the host clock.
const ALLOWLIST: &[&str] = &["crates/bench/src/stopwatch.rs"];

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind == FileKind::Test || ALLOWLIST.contains(&file.rel_path.as_str()) {
        return;
    }
    for (i, line) in file.code.iter().enumerate() {
        let lineno = i + 1;
        if file.in_test_span(lineno) {
            continue;
        }
        for word in ["Instant", "SystemTime"] {
            if find_word(line, word).is_some() {
                out.push(Finding::new(
                    file,
                    lineno,
                    ID,
                    format!(
                        "wall-clock `{word}` — use SimTime/SimDuration; host timing belongs in {}",
                        ALLOWLIST[0]
                    ),
                ));
            }
        }
    }
}
