//! The rule set.
//!
//! Each rule is one module exporting an `ID`, a short `SUMMARY`, and a
//! `check` function. Per-file rules take one [`SourceFile`]; the
//! paper-constant audit ([`table1`]) takes the whole workspace because it
//! joins sources against `specs/table1.toml`; the scenario-corpus audit
//! ([`scenario_files`]) reads `scenarios/*.toml` off the root directly;
//! the call-graph rules
//! ([`memo_purity`], [`seed_streams`], [`hot_path`]) take the
//! [`crate::Analysis`] built from the symbol-table/effect pipeline.
//!
//! | ID | rule |
//! |----|------|
//! | `IOTSE-W01` | no wall-clock reads outside the bench stopwatch |
//! | `IOTSE-D02` | no hash-ordered collections in deterministic crates |
//! | `IOTSE-D03` | no ambient state (`static mut`, thread rng, `std::env`) |
//! | `IOTSE-E04` | no `unwrap`/`expect`/`panic!` in model library code |
//! | `IOTSE-C05` | no bare numeric `as` casts in energy accounting |
//! | `IOTSE-T06` | source constants must match `specs/table1.toml` |
//! | `IOTSE-A07` | every `#[allow]` needs a `// lint:` justification |
//! | `IOTSE-P08` | public items in `core` need doc comments |
//! | `IOTSE-M09` | metric/span labels must match `iotse_<crate>_<name>` |
//! | `IOTSE-K10` | kernel `Vec` allocations need a `// lint:` justification |
//! | `IOTSE-M11` | memoizable kernels must be transitively pure |
//! | `IOTSE-S12` | `SeedTree` split labels must be auditable and disjoint |
//! | `IOTSE-H13` | hot-path functions must be transitively allocation-free |
//! | `IOTSE-F14` | scenario corpus files must satisfy the spec grammar |
//!
//! [`SourceFile`]: crate::scan::SourceFile

pub mod allow_inventory;
pub mod ambient;
pub mod casts;
pub mod doc_coverage;
pub mod hash_iter;
pub mod hot_path;
pub mod kernel_alloc;
pub mod memo_purity;
pub mod metric_names;
pub mod scenario_files;
pub mod seed_streams;
pub mod table1;
pub mod unwrap_panic;
pub mod wallclock;

/// Crates whose library code must be deterministic and replayable.
pub const DETERMINISTIC_CRATES: &[&str] = &["core", "sim", "energy", "sensors"];

/// Crates whose library code must not panic (rule `IOTSE-E04`).
pub const NO_PANIC_CRATES: &[&str] = &["core", "sim", "energy"];

/// `(id, summary)` for every rule, in ID order — the `explain` listing.
pub const ALL: &[(&str, &str)] = &[
    (wallclock::ID, wallclock::SUMMARY),
    (hash_iter::ID, hash_iter::SUMMARY),
    (ambient::ID, ambient::SUMMARY),
    (unwrap_panic::ID, unwrap_panic::SUMMARY),
    (casts::ID, casts::SUMMARY),
    (table1::ID, table1::SUMMARY),
    (allow_inventory::ID, allow_inventory::SUMMARY),
    (doc_coverage::ID, doc_coverage::SUMMARY),
    (metric_names::ID, metric_names::SUMMARY),
    (kernel_alloc::ID, kernel_alloc::SUMMARY),
    (memo_purity::ID, memo_purity::SUMMARY),
    (seed_streams::ID, seed_streams::SUMMARY),
    (hot_path::ID, hot_path::SUMMARY),
    (scenario_files::ID, scenario_files::SUMMARY),
];

/// `(id, kind, rationale)` — the catalogue detail behind `rules
/// --markdown`. `kind` names the analysis depth (token scan vs
/// call-graph); `rationale` says what breaks when the rule is violated.
pub const DETAILS: &[(&str, &str, &str)] = &[
    (
        "IOTSE-W01",
        "token scan",
        "`Instant`/`SystemTime` reads outside the bench stopwatch make replays irreproducible; all simulated time flows from `SimTime`.",
    ),
    (
        "IOTSE-D02",
        "token scan",
        "`HashMap`/`HashSet` iteration order varies per process, so any output derived from it breaks bitwise determinism in the model crates; use the `BTree` forms.",
    ),
    (
        "IOTSE-D03",
        "token scan",
        "`static mut`, thread-local RNG, and `std::env` reads smuggle ambient state into runs, so the same seed stops producing the same trace.",
    ),
    (
        "IOTSE-E04",
        "token scan",
        "a panicking library path aborts a fleet run mid-experiment and loses the energy ledger; model crates must return errors instead.",
    ),
    (
        "IOTSE-C05",
        "token scan",
        "bare `as` casts silently saturate or truncate energy quantities; conversions in accounting code must be checked or documented.",
    ),
    (
        "IOTSE-T06",
        "workspace audit",
        "paper constants quoted in code must match `specs/table1.toml`, the single ground truth for Table I, or the reproduction drifts from the paper.",
    ),
    (
        "IOTSE-A07",
        "token scan",
        "every `#[allow(..)]` must carry a `// lint: <reason>` justification so suppressions stay an auditable inventory, not a leak.",
    ),
    (
        "IOTSE-P08",
        "item parse",
        "public API items in `core` need doc comments; effective visibility is computed from the item parse, so `pub(crate)`/`pub(super)` items and `pub` items inside private modules are not counted as public API.",
    ),
    (
        "IOTSE-M09",
        "token scan",
        "metric and span labels must match `iotse_<crate>_<name>` so the observability namespace stays greppable and collision-free.",
    ),
    (
        "IOTSE-K10",
        "token scan",
        "`Vec` allocations in kernel hot paths need a `// lint: <reason>` justification; the scratch-arena work keeps steady-state windows allocation-free.",
    ),
    (
        "IOTSE-M11",
        "call graph",
        "a `Workload` whose `memoizable()` returns `true` must be transitively pure from `compute` — no RNG draws, no `static mut`, no interior-mutability writes, no wall clock — or `compute_cache` replays stale outputs; violations print the call path to the offending primitive.",
    ),
    (
        "IOTSE-S12",
        "call graph",
        "every `SeedTree` split label is resolved statically (literals, `format!` templates with placeholders normalized to `{*}`, `let`/field-traced namespaces); two consuming splits (`stream`/`streams`/`child`) on one full path mean correlated RNG streams and are rejected, as are labels that cannot be audited at all.",
    ),
    (
        "IOTSE-H13",
        "call graph",
        "functions annotated `// iotse-lint: hot-path` must have an allocation-free transitive call graph; deliberate allocations are waived site-by-site with `// lint: <reason>`, turning the bench alloc counters into a structural guarantee.",
    ),
    (
        "IOTSE-F14",
        "workspace audit",
        "every `scenarios/*.toml` must parse against the spec grammar — known sections and keys only, explicit seeds in `[scenario]` and each `[[fault]]`, strictly positive mix weights, app ids from the Table 2 registry, scheme names from the five implemented schemes — so a malformed corpus file fails lint before the slower `scenario check` sweep runs it.",
    ),
];

/// Renders the rule catalogue as the markdown document committed at
/// `crates/lint/RULES.md`. CI regenerates it and fails on drift, so the
/// checked-in file always matches the compiled rule set.
#[must_use]
pub fn catalogue_markdown() -> String {
    let mut out = String::new();
    out.push_str("# iotse-lint rules\n\n");
    out.push_str(
        "Generated by `iotse-lint rules --markdown` — do not edit by hand.\n\
         Regenerate with:\n\n\
         ```sh\n\
         cargo run -p iotse-lint -- rules --markdown > crates/lint/RULES.md\n\
         ```\n\n",
    );
    out.push_str("| ID | analysis | summary |\n|----|----------|---------|\n");
    for (id, summary) in ALL {
        let kind = DETAILS
            .iter()
            .find(|(did, _, _)| did == id)
            .map_or("", |&(_, kind, _)| kind);
        out.push_str(&format!("| `{id}` | {kind} | {summary} |\n"));
    }
    out.push('\n');
    for (id, kind, rationale) in DETAILS {
        let summary = ALL
            .iter()
            .find(|(aid, _)| aid == id)
            .map_or("", |&(_, s)| s);
        out.push_str(&format!(
            "## `{id}` — {summary}\n\n*Analysis:* {kind}.\n\n{rationale}\n\n"
        ));
    }
    // Suppression and justification conventions apply uniformly.
    out.push_str(
        "## Suppressions\n\n\
         Any finding can be waived with `// iotse-lint: allow(<RULE-ID>)` on\n\
         the finding's line or the line above it. Allocation rules\n\
         (`IOTSE-K10`, `IOTSE-H13`) additionally accept a `// lint: <reason>`\n\
         justification at the allocation site itself, which waives the site\n\
         for every caller; `IOTSE-A07` keeps the `#[allow]` inventory honest\n\
         the same way. Hot paths are declared with `// iotse-lint: hot-path`\n\
         above the function (attributes and doc comments may sit between).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn details_cover_every_rule_in_order() {
        assert_eq!(ALL.len(), DETAILS.len());
        for ((aid, _), (did, _, _)) in ALL.iter().zip(DETAILS.iter()) {
            assert_eq!(aid, did);
        }
    }

    #[test]
    fn catalogue_lists_every_rule() {
        let md = catalogue_markdown();
        for (id, _) in ALL {
            assert!(
                md.contains(&format!("| `{id}` |")),
                "{id} missing from table"
            );
            assert!(md.contains(&format!("## `{id}`")), "{id} missing a section");
        }
    }
}
