//! The rule set.
//!
//! Each rule is one module exporting an `ID`, a short `SUMMARY`, and a
//! `check` function. Per-file rules take one [`SourceFile`]; the
//! paper-constant audit ([`table1`]) takes the whole workspace because it
//! joins sources against `specs/table1.toml`.
//!
//! | ID | rule |
//! |----|------|
//! | `IOTSE-W01` | no wall-clock reads outside the bench stopwatch |
//! | `IOTSE-D02` | no hash-ordered collections in deterministic crates |
//! | `IOTSE-D03` | no ambient state (`static mut`, thread rng, `std::env`) |
//! | `IOTSE-E04` | no `unwrap`/`expect`/`panic!` in model library code |
//! | `IOTSE-C05` | no bare numeric `as` casts in energy accounting |
//! | `IOTSE-T06` | source constants must match `specs/table1.toml` |
//! | `IOTSE-A07` | every `#[allow]` needs a `// lint:` justification |
//! | `IOTSE-P08` | public items in `core` need doc comments |
//! | `IOTSE-M09` | metric/span labels must match `iotse_<crate>_<name>` |
//! | `IOTSE-K10` | kernel `Vec` allocations need a `// lint:` justification |

pub mod allow_inventory;
pub mod ambient;
pub mod casts;
pub mod doc_coverage;
pub mod hash_iter;
pub mod kernel_alloc;
pub mod metric_names;
pub mod table1;
pub mod unwrap_panic;
pub mod wallclock;

/// Crates whose library code must be deterministic and replayable.
pub const DETERMINISTIC_CRATES: &[&str] = &["core", "sim", "energy", "sensors"];

/// Crates whose library code must not panic (rule `IOTSE-E04`).
pub const NO_PANIC_CRATES: &[&str] = &["core", "sim", "energy"];

/// `(id, summary)` for every rule, in ID order — the `explain` listing.
pub const ALL: &[(&str, &str)] = &[
    (wallclock::ID, wallclock::SUMMARY),
    (hash_iter::ID, hash_iter::SUMMARY),
    (ambient::ID, ambient::SUMMARY),
    (unwrap_panic::ID, unwrap_panic::SUMMARY),
    (casts::ID, casts::SUMMARY),
    (table1::ID, table1::SUMMARY),
    (allow_inventory::ID, allow_inventory::SUMMARY),
    (doc_coverage::ID, doc_coverage::SUMMARY),
    (metric_names::ID, metric_names::SUMMARY),
    (kernel_alloc::ID, kernel_alloc::SUMMARY),
];
