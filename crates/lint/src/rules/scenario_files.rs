//! `IOTSE-F14` — scenario corpus files must satisfy the spec grammar.
//!
//! The `scenario` binary's corpus under `scenarios/` is executable CI
//! input: every file is parsed, run, and graded by
//! `iotse_core::scenario_spec`. This rule is the static half of that
//! gate — it audits each `scenarios/*.toml` without running anything, so
//! a malformed file fails `iotse-lint` (and the editor loop) before the
//! much slower corpus sweep does. It checks the structural invariants the
//! runtime parser enforces: only the known sections and keys, explicit
//! seeds in `[scenario]` and every `[[fault]]`, strictly positive mix
//! weights, app ids drawn from the Table 2 registry (`A1`–`A11`), and
//! scheme names from the five implemented schemes. Per-kind parameter
//! pairing (e.g. `probability` with `sensor-dropout`) stays the runtime
//! parser's job; this rule is the fast grammar audit.
//!
//! A root with no `scenarios/` directory is silently skipped — the rule
//! gates the corpus where one exists, it does not require one.

use std::path::Path;

use crate::toml_mini::{self, Table, Value};
use crate::Finding;

/// Rule ID.
pub const ID: &str = "IOTSE-F14";
/// One-line summary for `explain`.
pub const SUMMARY: &str =
    "scenarios/*.toml must use known sections/keys, explicit seeds, positive weights, and registry app/scheme names";

/// Corpus directory, relative to the scanned root.
pub const DIR: &str = "scenarios";

/// The Table 2 application registry.
const APP_IDS: &[&str] = &[
    "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10", "A11",
];

/// The implemented execution schemes.
const SCHEMES: &[&str] = &["baseline", "batching", "com", "beam", "bcom"];

/// Keys accepted in `[scenario]`.
const SCENARIO_KEYS: &[&str] = &[
    "name",
    "description",
    "seed",
    "windows",
    "devices",
    "scheme",
    "schemes",
    "distribution",
    "telemetry",
    "faults",
];

/// Keys accepted in a `[[mix]]` entry.
const MIX_KEYS: &[&str] = &["apps", "weight"];

/// Keys accepted in a `[[fault]]` entry (union over all kinds).
const FAULT_KEYS: &[&str] = &[
    "kind",
    "probability",
    "amplitude",
    "per_byte",
    "ppm",
    "rate_hz",
    "start_ms",
    "duration_ms",
    "seed",
    "target",
];

/// Fault kinds known to the robustness layer.
const FAULT_KINDS: &[&str] = &[
    "sensor-dropout",
    "sensor-stuck-at",
    "sensor-noise-burst",
    "link-corruption",
    "link-partition",
    "clock-drift",
    "interrupt-storm",
];

/// Keys accepted in an `[[expect]]` entry (union over all kinds).
const EXPECT_KEYS: &[&str] = &[
    "kind",
    "max_miss_ratio",
    "max_total_uj",
    "max_ratio",
    "checksum",
];

/// Expectation kinds the grader implements.
const EXPECT_KINDS: &[&str] = &["qos", "energy-budget", "energy-ratio", "output-checksum"];

/// Audits every `.toml` file under `<root>/scenarios`, if the directory
/// exists.
pub fn check(root: &Path, out: &mut Vec<Finding>) {
    let Ok(entries) = std::fs::read_dir(root.join(DIR)) else {
        return;
    };
    let mut names: Vec<String> = entries
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".toml"))
        .collect();
    names.sort();
    for name in names {
        let rel = format!("{DIR}/{name}");
        match std::fs::read_to_string(root.join(DIR).join(&name)) {
            Ok(text) => check_file(&rel, &text, out),
            Err(e) => out.push(Finding::at(&rel, 1, ID, format!("unreadable: {e}"))),
        }
    }
}

fn check_file(rel: &str, text: &str, out: &mut Vec<Finding>) {
    let doc = match toml_mini::parse(text) {
        Ok(d) => d,
        Err((line, msg)) => {
            out.push(Finding::at(rel, line, ID, format!("malformed: {msg}")));
            return;
        }
    };

    for (section, (line, _)) in &doc.tables {
        match section.as_str() {
            "scenario" => {}
            "mix" | "fault" | "expect" => out.push(Finding::at(
                rel,
                *line,
                ID,
                format!("[{section}] must be an array-of-tables section: [[{section}]]"),
            )),
            other => out.push(Finding::at(
                rel,
                *line,
                ID,
                format!(
                    "unknown section `{other}` (allowed: [scenario], [[mix]], [[fault]], [[expect]])"
                ),
            )),
        }
    }
    for (section, entries) in &doc.arrays {
        let line = entries.first().map_or(1, |(l, _)| *l);
        match section.as_str() {
            "mix" | "fault" | "expect" => {}
            "scenario" => out.push(Finding::at(
                rel,
                line,
                ID,
                "[[scenario]] must be a single table: [scenario]".to_string(),
            )),
            other => out.push(Finding::at(
                rel,
                line,
                ID,
                format!(
                    "unknown section `{other}` (allowed: [scenario], [[mix]], [[fault]], [[expect]])"
                ),
            )),
        }
    }

    match doc.tables.get("scenario") {
        Some((line, table)) => check_scenario(rel, *line, table, out),
        None => out.push(Finding::at(
            rel,
            1,
            ID,
            "missing required [scenario] section".to_string(),
        )),
    }
    for (line, table) in doc.arrays.get("mix").map_or(&[][..], Vec::as_slice) {
        check_mix(rel, *line, table, out);
    }
    for (line, table) in doc.arrays.get("fault").map_or(&[][..], Vec::as_slice) {
        check_fault(rel, *line, table, out);
    }
    for (line, table) in doc.arrays.get("expect").map_or(&[][..], Vec::as_slice) {
        check_expect(rel, *line, table, out);
    }
}

fn unknown_keys(rel: &str, section: &str, table: &Table, allowed: &[&str], out: &mut Vec<Finding>) {
    for (key, (line, _)) in table {
        if !allowed.contains(&key.as_str()) {
            out.push(Finding::at(
                rel,
                *line,
                ID,
                format!("unknown key `{key}` in [{section}]"),
            ));
        }
    }
}

fn check_scenario(rel: &str, line: usize, table: &Table, out: &mut Vec<Finding>) {
    unknown_keys(rel, "scenario", table, SCENARIO_KEYS, out);
    if !table.contains_key("seed") {
        out.push(Finding::at(
            rel,
            line,
            ID,
            "[scenario] has no `seed` — seeds must be explicit".to_string(),
        ));
    }
    if let Some((kline, Value::Str(s))) = table.get("scheme") {
        check_scheme(rel, *kline, s, out);
    }
    if let Some((kline, Value::List(items))) = table.get("schemes") {
        for s in items {
            check_scheme(rel, *kline, s, out);
        }
    }
}

fn check_scheme(rel: &str, line: usize, name: &str, out: &mut Vec<Finding>) {
    if !SCHEMES.contains(&name) {
        out.push(Finding::at(
            rel,
            line,
            ID,
            format!("unknown scheme `{name}` (known: {})", SCHEMES.join(", ")),
        ));
    }
}

fn check_mix(rel: &str, line: usize, table: &Table, out: &mut Vec<Finding>) {
    unknown_keys(rel, "mix", table, MIX_KEYS, out);
    match table.get("apps") {
        Some((kline, Value::List(items))) => {
            for app in items {
                if !APP_IDS.contains(&app.as_str()) {
                    out.push(Finding::at(
                        rel,
                        *kline,
                        ID,
                        format!("unknown app id `{app}` (registry: A1–A11)"),
                    ));
                }
            }
        }
        Some((kline, _)) => out.push(Finding::at(
            rel,
            *kline,
            ID,
            "`apps` must be a [\"A1\", …] list".to_string(),
        )),
        None => out.push(Finding::at(
            rel,
            line,
            ID,
            "[[mix]] entry has no `apps` list".to_string(),
        )),
    }
    if let Some((kline, value)) = table.get("weight") {
        match value {
            Value::Num(n) if *n > 0.0 => {}
            Value::Num(n) => out.push(Finding::at(
                rel,
                *kline,
                ID,
                format!("mix `weight` must be positive, got {n}"),
            )),
            _ => out.push(Finding::at(
                rel,
                *kline,
                ID,
                "mix `weight` must be a positive number".to_string(),
            )),
        }
    }
}

fn check_fault(rel: &str, line: usize, table: &Table, out: &mut Vec<Finding>) {
    unknown_keys(rel, "fault", table, FAULT_KEYS, out);
    if !table.contains_key("seed") {
        out.push(Finding::at(
            rel,
            line,
            ID,
            "[[fault]] entry has no `seed` — seeds must be explicit".to_string(),
        ));
    }
    if let Some((kline, Value::Str(kind))) = table.get("kind") {
        if !FAULT_KINDS.contains(&kind.as_str()) {
            out.push(Finding::at(
                rel,
                *kline,
                ID,
                format!("unknown fault kind `{kind}`"),
            ));
        }
    }
}

fn check_expect(rel: &str, line: usize, table: &Table, out: &mut Vec<Finding>) {
    unknown_keys(rel, "expect", table, EXPECT_KEYS, out);
    match table.get("kind") {
        Some((kline, Value::Str(kind))) if !EXPECT_KINDS.contains(&kind.as_str()) => {
            out.push(Finding::at(
                rel,
                *kline,
                ID,
                format!(
                    "unknown expectation kind `{kind}` (known: {})",
                    EXPECT_KINDS.join(", ")
                ),
            ));
        }
        Some(_) => {}
        None => out.push(Finding::at(
            rel,
            line,
            ID,
            "[[expect]] entry has no `kind`".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(text: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        check_file("scenarios/t.toml", text, &mut out);
        out
    }

    #[test]
    fn a_wellformed_file_is_clean() {
        let text = "[scenario]\nname = \"ok\"\nseed = 1\nwindows = 2\ndevices = 1\n\
                    scheme = \"beam\"\n[[mix]]\napps = [\"A2\"]\nweight = 3\n\
                    [[expect]]\nkind = \"qos\"\nmax_miss_ratio = 0.5\n";
        assert!(findings(text).is_empty(), "{:?}", findings(text));
    }

    #[test]
    fn each_grammar_violation_is_reported() {
        let text = "[scenario]\nname = \"bad\"\nscheme = \"warp\"\ncolor = \"red\"\n\
                    [[mix]]\napps = [\"A99\"]\nweight = 0\n[teleport]\nx = 1\n";
        let out = findings(text);
        let has = |needle: &str| out.iter().any(|f| f.message.contains(needle));
        assert!(has("no `seed`"), "{out:?}");
        assert!(has("unknown scheme `warp`"), "{out:?}");
        assert!(has("unknown key `color`"), "{out:?}");
        assert!(has("unknown app id `A99`"), "{out:?}");
        assert!(has("`weight` must be positive"), "{out:?}");
        assert!(has("unknown section `teleport`"), "{out:?}");
    }

    #[test]
    fn faults_and_expectations_are_audited() {
        let text = "[scenario]\nname = \"f\"\nseed = 1\n[[mix]]\napps = [\"A1\"]\n\
                    [[fault]]\nkind = \"gamma-ray\"\nstart_ms = 0\nduration_ms = 1\n\
                    [[expect]]\nkind = \"vibes\"\n";
        let out = findings(text);
        let has = |needle: &str| out.iter().any(|f| f.message.contains(needle));
        assert!(has("unknown fault kind `gamma-ray`"), "{out:?}");
        assert!(has("[[fault]] entry has no `seed`"), "{out:?}");
        assert!(has("unknown expectation kind `vibes`"), "{out:?}");
    }

    #[test]
    fn section_shape_mismatches_are_reported() {
        let out = findings("[mix]\napps = [\"A1\"]\n");
        assert!(
            out.iter()
                .any(|f| f.message.contains("[mix] must be an array-of-tables")),
            "{out:?}"
        );
        let out = findings("[[scenario]]\nname = \"x\"\nseed = 1\n");
        assert!(
            out.iter()
                .any(|f| f.message.contains("[[scenario]] must be a single table")),
            "{out:?}"
        );
    }
}
