//! `IOTSE-E04` — no `unwrap`/`expect`/`panic!` in model library code.
//!
//! The model crates (`core`/`sim`/`energy`) are meant to be embeddable; a
//! panic in a library path takes the host down with it. Fallible paths
//! should return typed errors. A genuinely unreachable state may keep a
//! documented-invariant `expect` under a justified suppression.

use crate::scan::{FileKind, SourceFile};
use crate::{rules::NO_PANIC_CRATES, Finding};

/// Rule ID.
pub const ID: &str = "IOTSE-E04";
/// One-line summary for `explain`.
pub const SUMMARY: &str =
    "no .unwrap()/.expect()/panic! in library code of core/sim/energy; return typed errors";

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib || !NO_PANIC_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for (i, line) in file.code.iter().enumerate() {
        let lineno = i + 1;
        if file.in_test_span(lineno) {
            continue;
        }
        for (pat, what) in [
            (".unwrap()", "`.unwrap()`"),
            (".expect(", "`.expect(..)`"),
            ("panic!", "`panic!`"),
        ] {
            if line.contains(pat) {
                out.push(Finding::new(
                    file,
                    lineno,
                    ID,
                    format!(
                        "{what} in library code — return a typed error, or document the \
                         invariant and suppress"
                    ),
                ));
            }
        }
    }
}
