//! `IOTSE-H13` — `// iotse-lint: hot-path` functions must not allocate.
//!
//! PR 4/5 drove the executor's steady-state allocation count to (near)
//! zero and pinned it with bench counters — a *dynamic* gate that only
//! trips when the bench runs and only for the paths the bench exercises.
//! This rule makes the property structural: any function annotated with a
//! `// iotse-lint: hot-path` marker comment must have an allocation-free
//! transitive call graph. Allocations that are deliberate (one-time
//! constructors, amortized growth, tracing that only formats when a sink
//! is attached) are waived at the site with the same `// lint: <reason>`
//! justification `IOTSE-K10` uses, which keeps every intentional heap hit
//! in the `A07`-style audit trail.

use crate::effects::ALLOC;
use crate::Analysis;
use crate::Finding;

/// Rule ID.
pub const ID: &str = "IOTSE-H13";
/// One-line summary for `explain`.
pub const SUMMARY: &str =
    "`// iotse-lint: hot-path` functions must have an allocation-free transitive call graph";

/// Runs the rule over the analyzed workspace.
pub fn check(analysis: &Analysis<'_>, out: &mut Vec<Finding>) {
    let syms = &analysis.syms;
    for id in 0..syms.fns.len() {
        let item = syms.item(id);
        if !item.hot_path {
            continue;
        }
        let Some((path, end)) = analysis.effects.witness(&analysis.graph, id, ALLOC) else {
            continue;
        };
        let chain: Vec<String> = path.iter().map(|&p| syms.display(p)).collect();
        let last = *path.last().expect("witness paths are non-empty");
        out.push(Finding::new(
            syms.src(id),
            item.line,
            ID,
            format!(
                "hot-path fn `{}` allocates: {} ({}:{}: {}) — use scratch buffers or justify with `// lint: <reason>`",
                syms.display(id),
                chain.join(" -> "),
                syms.src(last).rel_path,
                end.line,
                end.what,
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;
    use std::path::Path;

    fn run(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse("crates/core/src/x.rs", src)];
        let analysis = Analysis::build(Path::new("/nonexistent"), &files);
        let mut out = Vec::new();
        check(&analysis, &mut out);
        out
    }

    #[test]
    fn allocation_in_a_callee_is_traced_to_the_marked_fn() {
        let out = run(
            "// iotse-lint: hot-path\nfn tick() {\n    helper();\n}\nfn helper() {\n    let v: Vec<u8> = Vec::new();\n    drop(v);\n}\n",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, ID);
        assert_eq!(out[0].line, 2);
        assert!(
            out[0].message.contains("tick -> helper"),
            "{}",
            out[0].message
        );
        assert!(
            out[0].message.contains("Vec::new(..)"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn justified_allocations_and_unmarked_fns_pass() {
        let out = run(
            "// iotse-lint: hot-path\nfn tick() {\n    // lint: amortized — grows once, reused every window\n    let v: Vec<u8> = Vec::new();\n    drop(v);\n}\nfn cold() {\n    let s = format!(\"x\");\n    drop(s);\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
