//! `IOTSE-P08` — public items in `core` need doc comments.
//!
//! `crates/core` is the workspace's public model API; every item that is
//! *effectively* public (fn/struct/enum/trait/const/static/type/mod) must
//! carry a `///` doc comment (or explicit `#[doc]`). Effective visibility
//! comes from the item parse: `pub(crate)`/`pub(super)` items and `pub`
//! items buried inside private modules are not public API and are out of
//! scope, as are `pub use` re-exports and anything `rustc`'s
//! `missing_docs` would skip — this is the belt to its braces.

use crate::parse::Vis;
use crate::scan::{FileKind, SourceFile};
use crate::Finding;

/// Rule ID.
pub const ID: &str = "IOTSE-P08";
/// One-line summary for `explain`.
pub const SUMMARY: &str = "every effectively-public item in crates/core needs a /// doc comment";

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib || file.crate_name != "core" {
        return;
    }
    let parsed = crate::parse::ParsedFile::parse(file);
    let mut targets: Vec<(&'static str, &str, usize)> = parsed
        .items
        .iter()
        .filter(|i| i.vis == Vis::Pub && i.public_path && !i.is_test)
        .map(|i| (i.kind, i.name.as_str(), i.line))
        .chain(
            parsed
                .fns
                .iter()
                .filter(|f| f.vis == Vis::Pub && f.public_path && !f.is_test)
                .map(|f| ("fn", f.name.as_str(), f.line)),
        )
        .collect();
    targets.sort_by_key(|&(_, _, line)| line);
    for (kind, name, line) in targets {
        // `pub mod x;` is documented by x.rs's own `//!` header.
        if kind == "mod"
            && file
                .code
                .get(line - 1)
                .is_some_and(|l| l.trim_end().ends_with(';'))
        {
            continue;
        }
        if !documented(file, line - 1) {
            out.push(Finding::new(
                file,
                line,
                ID,
                format!("public {kind} `{name}` lacks a doc comment (///)"),
            ));
        }
    }
}

/// Walks upward over attribute lines looking for a `///` or `#[doc`.
fn documented(file: &SourceFile, mut idx: usize) -> bool {
    while idx > 0 {
        idx -= 1;
        let comment = file.comments[idx].trim();
        if comment.starts_with("///") {
            return true;
        }
        let code = file.code[idx].trim();
        if code.contains("#[doc") {
            return true;
        }
        // Skip over attributes (possibly multi-line) between the doc
        // comment and the item; anything else ends the search.
        let is_attr_ish = code.starts_with("#[")
            || code.ends_with(")]")
            || (code.is_empty() && !comment.is_empty());
        if !is_attr_ish {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn undocumented_pub_items_are_flagged() {
        let out = findings("pub struct A;\n/// Documented.\npub struct B;\npub fn go() {}\n");
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("`A`"));
        assert!(out[1].message.contains("`go`"));
    }

    #[test]
    fn restricted_visibility_is_not_public_api() {
        let out = findings(
            "pub(crate) struct Hidden;\npub(super) fn helper() {}\npub(crate) const N: u8 = 1;\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn pub_items_in_private_modules_are_not_public_api() {
        let out = findings("mod inner {\n    pub fn helper() {}\n    pub struct S;\n}\n");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn pub_items_in_pub_modules_are_flagged() {
        let out = findings("/// Docs.\npub mod inner {\n    pub fn helper() {}\n}\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`helper`"));
    }

    #[test]
    fn external_mod_decls_are_exempt() {
        let out = findings("pub mod admission;\npub mod inline { }\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`inline`"));
    }

    #[test]
    fn doc_detection_walks_over_attributes() {
        let out = findings("/// Documented.\n#[derive(Debug)]\npub struct A;\npub struct B;\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("`B`"));
    }
}
