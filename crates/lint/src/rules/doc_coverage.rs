//! `IOTSE-P08` — public items in `core` need doc comments.
//!
//! `crates/core` is the workspace's public model API; every `pub` item
//! (fn/struct/enum/trait/const/static/type/mod) must carry a `///` doc
//! comment (or explicit `#[doc]`). `pub use` re-exports and restricted
//! `pub(crate)`/`pub(super)` items are out of scope — so is anything
//! `rustc`'s `missing_docs` would skip, this is the belt to its braces.

use crate::scan::{FileKind, SourceFile};
use crate::Finding;

/// Rule ID.
pub const ID: &str = "IOTSE-P08";
/// One-line summary for `explain`.
pub const SUMMARY: &str = "every pub item in crates/core must have a /// doc comment";

/// Item keywords that introduce a documentable public item.
const ITEMS: &[&str] = &[
    "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union",
];
/// Modifiers that may sit between `pub` and the item keyword.
const MODIFIERS: &[&str] = &["async", "unsafe", "extern", "\"C\""];

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib || file.crate_name != "core" {
        return;
    }
    for (i, line) in file.code.iter().enumerate() {
        let lineno = i + 1;
        if file.in_test_span(lineno) {
            continue;
        }
        let Some((item, name)) = pub_item(line) else {
            continue;
        };
        // `pub mod x;` is documented by x.rs's own `//!` header.
        if item == "mod" && line.trim_end().ends_with(';') {
            continue;
        }
        if !documented(file, i) {
            out.push(Finding::new(
                file,
                lineno,
                ID,
                format!("public {item} `{name}` lacks a doc comment (///)"),
            ));
        }
    }
}

/// If this code-view line declares a plain-`pub` item, returns
/// `(item keyword, name)`.
fn pub_item(line: &str) -> Option<(&'static str, String)> {
    let rest = line.trim().strip_prefix("pub ")?;
    let toks: Vec<&str> = rest.split_whitespace().collect();
    let mut i = 0;
    while toks.get(i).is_some_and(|t| MODIFIERS.contains(t)) {
        i += 1;
    }
    let item: &'static str = match *toks.get(i)? {
        "const" if toks.get(i + 1) == Some(&"fn") => "fn",
        t => ITEMS.iter().find(|&&k| k == t)?,
    };
    if item == "fn" && toks.get(i) == Some(&"const") {
        i += 1;
    }
    let name = toks
        .get(i + 1)?
        .trim_end_matches(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .next()
        .unwrap_or("")
        .to_string();
    if name.is_empty() {
        return None;
    }
    Some((item, name))
}

/// Walks upward over attribute lines looking for a `///` or `#[doc`.
fn documented(file: &SourceFile, mut idx: usize) -> bool {
    while idx > 0 {
        idx -= 1;
        let comment = file.comments[idx].trim();
        if comment.starts_with("///") {
            return true;
        }
        let code = file.code[idx].trim();
        if code.contains("#[doc") {
            return true;
        }
        // Skip over attributes (possibly multi-line) between the doc
        // comment and the item; anything else ends the search.
        let is_attr_ish = code.starts_with("#[")
            || code.ends_with(")]")
            || (code.is_empty() && !comment.is_empty());
        if !is_attr_ish {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognizes_pub_items() {
        assert_eq!(
            pub_item("pub fn run(x: u8) {"),
            Some(("fn", "run".to_string()))
        );
        assert_eq!(
            pub_item("pub struct Hub {"),
            Some(("struct", "Hub".to_string()))
        );
        assert_eq!(
            pub_item("pub const MAX: usize = 3;"),
            Some(("const", "MAX".to_string()))
        );
        assert_eq!(
            pub_item("pub const fn zero() -> u8 {"),
            Some(("fn", "zero".to_string()))
        );
        assert_eq!(pub_item("pub use crate::x;"), None);
        assert_eq!(pub_item("pub(crate) fn hidden() {}"), None);
        assert_eq!(pub_item("let x = 1;"), None);
    }

    #[test]
    fn external_mod_decls_are_exempt() {
        let src = "pub mod admission;\npub mod inline { }";
        let f = SourceFile::parse("crates/core/src/lib.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`inline`"));
    }

    #[test]
    fn doc_detection_walks_over_attributes() {
        let src = "/// Documented.\n#[derive(Debug)]\npub struct A;\npub struct B;";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("`B`"));
    }
}
