//! `IOTSE-T06` — source constants must match `specs/table1.toml`.
//!
//! The ground-truth file transcribes the paper's Table I (one `[[sensor]]`
//! per row) and the platform calibration (`[platform]`), in normalized
//! units: **nanoseconds** for durations, **milliwatts** for power. The rule
//! extracts the same constants from
//! `crates/sensors/src/catalog.rs` (every `SensorSpec { … }` literal) and
//! `crates/core/src/calibration.rs` (`Calibration::paper()`), and reports
//! any drift in either direction: a source value that deviates from the
//! table, a source field the table does not cover, a table key with no
//! source counterpart, and sensors present on only one side.
//!
//! Values may be written as product/quotient expressions (`5.0 * 13.0 /
//! 77.0 * 1_000.0`) so fitted constants compare bit-exactly; a relative
//! tolerance of 1e-9 backstops decimal-vs-binary rounding.

use std::path::Path;

use crate::extract::{self, Extracted, Fields};
use crate::scan::SourceFile;
use crate::toml_mini::{self, Table, Value};
use crate::Finding;

/// Rule ID.
pub const ID: &str = "IOTSE-T06";
/// One-line summary for `explain`.
pub const SUMMARY: &str =
    "sensor catalog and platform calibration must match specs/table1.toml (ns / mW units)";

/// Ground-truth path, relative to the scanned root.
pub const TRUTH: &str = "specs/table1.toml";
/// Catalog source audited against `[[sensor]]` rows.
pub const CATALOG: &str = "crates/sensors/src/catalog.rs";
/// Calibration source audited against `[platform]`.
pub const CALIBRATION: &str = "crates/core/src/calibration.rs";

/// Relative tolerance for numeric comparison.
const REL_TOL: f64 = 1e-9;

/// Runs the audit over the scanned workspace.
pub fn check(root: &Path, files: &[SourceFile], out: &mut Vec<Finding>) {
    let truth_text = match std::fs::read_to_string(root.join(TRUTH)) {
        Ok(t) => t,
        Err(_) => {
            out.push(Finding::at(
                TRUTH,
                1,
                ID,
                "ground-truth file not found — Table I constants cannot be audited".to_string(),
            ));
            return;
        }
    };
    let doc = match toml_mini::parse(&truth_text) {
        Ok(d) => d,
        Err((line, msg)) => {
            out.push(Finding::at(
                TRUTH,
                line,
                ID,
                format!("malformed ground truth: {msg}"),
            ));
            return;
        }
    };

    audit_sensors(&doc, files, out);
    audit_platform(&doc, files, out);
}

fn audit_sensors(doc: &toml_mini::Document, files: &[SourceFile], out: &mut Vec<Finding>) {
    let Some(catalog) = files.iter().find(|f| f.rel_path == CATALOG) else {
        out.push(Finding::at(
            TRUTH,
            1,
            ID,
            format!("{CATALOG} not found; [[sensor]] rows unaudited"),
        ));
        return;
    };
    let rows = extract::sensor_specs(catalog);
    let mut by_id: std::collections::BTreeMap<String, (usize, &Fields)> = Default::default();
    for (line, fields) in &rows {
        if let Some((_, Extracted::Name(id))) = fields.get("id") {
            by_id.insert(id.clone(), (*line, fields));
        } else {
            out.push(Finding::at(
                CATALOG,
                *line,
                ID,
                "SensorSpec literal without a parseable `id` field".to_string(),
            ));
        }
    }

    let empty = Vec::new();
    let truth_rows = doc.arrays.get("sensor").unwrap_or(&empty);
    if truth_rows.is_empty() {
        out.push(Finding::at(
            TRUTH,
            1,
            ID,
            "no [[sensor]] rows in ground truth".to_string(),
        ));
    }
    let mut seen = std::collections::BTreeSet::new();
    for (row_line, truth) in truth_rows {
        let Some(Value::Str(id)) = truth.get("id").map(|(_, v)| v.clone()) else {
            out.push(Finding::at(
                TRUTH,
                *row_line,
                ID,
                "[[sensor]] row without string `id`".to_string(),
            ));
            continue;
        };
        seen.insert(id.clone());
        let Some(&(spec_line, fields)) = by_id.get(&id) else {
            out.push(Finding::at(
                TRUTH,
                *row_line,
                ID,
                format!("sensor `{id}` has no SensorSpec in {CATALOG}"),
            ));
            continue;
        };
        let label = format!("sensor `{id}`");
        compare(CATALOG, &label, fields, truth, *row_line, out);
        audit_payload_bytes(&label, spec_line, fields, truth, *row_line, out);
    }
    for (id, (line, _)) in &by_id {
        if !seen.contains(id) {
            out.push(Finding::at(
                CATALOG,
                *line,
                ID,
                format!("sensor `{id}` is missing from {TRUTH}"),
            ));
        }
    }
}

fn audit_platform(doc: &toml_mini::Document, files: &[SourceFile], out: &mut Vec<Finding>) {
    let Some(calib) = files.iter().find(|f| f.rel_path == CALIBRATION) else {
        out.push(Finding::at(
            TRUTH,
            1,
            ID,
            format!("{CALIBRATION} not found; [platform] unaudited"),
        ));
        return;
    };
    let fields = extract::calibration_paper(calib);
    if fields.is_empty() {
        out.push(Finding::at(
            CALIBRATION,
            1,
            ID,
            "could not extract Calibration::paper() field initializers".to_string(),
        ));
        return;
    }
    let Some((table_line, truth)) = doc.tables.get("platform") else {
        out.push(Finding::at(
            TRUTH,
            1,
            ID,
            "no [platform] table in ground truth".to_string(),
        ));
        return;
    };
    compare(CALIBRATION, "platform", &fields, truth, *table_line, out);
}

/// Two-way field comparison between extracted source `fields` and a truth
/// `Table`. Source-side findings anchor at the field's own line; truth-side
/// findings (keys with no source counterpart) anchor in the TOML file.
fn compare(
    src_file: &str,
    label: &str,
    fields: &Fields,
    truth: &Table,
    truth_anchor: usize,
    out: &mut Vec<Finding>,
) {
    for (key, (line, val)) in fields {
        match truth.get(key) {
            None => {
                if *val != Extracted::Absent {
                    out.push(Finding::at(
                        src_file,
                        *line,
                        ID,
                        format!("`{key}` of {label} = {val} is not covered by {TRUTH}"),
                    ));
                }
            }
            Some((_, tv)) => {
                if !matches_truth(tv, val) {
                    out.push(Finding::at(
                        src_file,
                        *line,
                        ID,
                        format!(
                            "`{key}` of {label} = {val} deviates from {TRUTH} ({})",
                            value_str(tv)
                        ),
                    ));
                }
            }
        }
    }
    for (key, (tline, _)) in truth {
        if key == "payload_bytes" || fields.contains_key(key) {
            continue;
        }
        let line = if *tline == 0 { truth_anchor } else { *tline };
        out.push(Finding::at(
            TRUTH,
            line,
            ID,
            format!("`{key}` of {label} has no source field in {src_file}"),
        ));
    }
}

/// Audits the `payload_bytes` truth key against the byte size implied by
/// the source row's `payload` kind.
fn audit_payload_bytes(
    label: &str,
    spec_line: usize,
    fields: &Fields,
    truth: &Table,
    row_line: usize,
    out: &mut Vec<Finding>,
) {
    let payload = match fields.get("payload") {
        Some((_, Extracted::Name(p))) => p.clone(),
        _ => return, // a missing `payload` field already reported by `compare`
    };
    let Some(expect) = extract::payload_bytes(&payload) else {
        out.push(Finding::at(
            CATALOG,
            spec_line,
            ID,
            format!("{label}: unknown payload kind `{payload}`"),
        ));
        return;
    };
    match truth.get("payload_bytes") {
        Some((tline, Value::Num(n))) if !close(*n, expect) => {
            out.push(Finding::at(
                TRUTH,
                *tline,
                ID,
                format!("{label}: payload_bytes = {n} but payload `{payload}` implies {expect}"),
            ));
        }
        Some((_, Value::Num(_))) => {}
        Some((tline, v)) => {
            out.push(Finding::at(
                TRUTH,
                *tline,
                ID,
                format!(
                    "{label}: payload_bytes must be numeric, got {}",
                    value_str(v)
                ),
            ));
        }
        None => {
            out.push(Finding::at(
                TRUTH,
                row_line,
                ID,
                format!("{label}: payload_bytes missing (payload `{payload}` implies {expect})"),
            ));
        }
    }
}

fn matches_truth(truth: &Value, src: &Extracted) -> bool {
    match (truth, src) {
        (Value::Num(a), Extracted::Num(b)) => close(*a, *b),
        (Value::Str(a), Extracted::Name(b)) => a == b,
        (Value::Bool(a), Extracted::Bool(b)) => a == b,
        _ => false,
    }
}

fn close(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= REL_TOL * a.abs().max(b.abs())
}

fn value_str(v: &Value) -> String {
    match v {
        Value::Num(n) => format!("{n}"),
        Value::Str(s) => s.clone(),
        Value::Bool(b) => format!("{b}"),
        Value::List(items) => items.join(", "),
    }
}
