//! `IOTSE-A07` — every `#[allow]` needs a `// lint:` justification.
//!
//! Suppressing a compiler or clippy lint is sometimes right, but it must
//! never be silent: each `#[allow(...)]` / `#![allow(...)]` attribute must
//! carry a `// lint: <reason>` comment on the same line or the line above,
//! so the inventory of waived checks stays reviewable.

use crate::scan::SourceFile;
use crate::Finding;

/// Rule ID.
pub const ID: &str = "IOTSE-A07";
/// One-line summary for `explain`.
pub const SUMMARY: &str =
    "every #[allow(...)] attribute must carry a `// lint:` justification comment";

/// The justification marker looked up in the comments view.
const JUSTIFY: &str = "lint:";

/// Runs the rule over one file (tests included — suppressions hide real
/// warnings there just as easily).
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    for (i, line) in file.code.iter().enumerate() {
        let lineno = i + 1;
        if !(line.contains("#[allow(") || line.contains("#![allow(")) {
            continue;
        }
        let justified = |idx: usize| file.comments.get(idx).is_some_and(|c| c.contains(JUSTIFY));
        if justified(i) || (i > 0 && justified(i - 1)) {
            continue;
        }
        out.push(Finding::new(
            file,
            lineno,
            ID,
            "`#[allow(..)]` without a `// lint:` justification on this line or the one above"
                .to_string(),
        ));
    }
}
