//! `IOTSE-C05` — no bare numeric `as` casts in energy accounting.
//!
//! In `crates/energy`, a silent `as` between float and integer truncates
//! joules into buckets (or widths into columns) with no audit trail.
//! Conversions there must go through a named helper whose rounding policy
//! is documented; the helper's single cast site carries a justified
//! suppression.

use crate::scan::{FileKind, SourceFile};
use crate::Finding;

/// Rule ID.
pub const ID: &str = "IOTSE-C05";
/// One-line summary for `explain`.
pub const SUMMARY: &str =
    "bare `as` numeric casts in crates/energy must go through an audited conversion helper";

/// Numeric primitive types a cast may target.
const NUMERIC: &[&str] = &[
    "f32", "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
    "isize",
];

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib || file.crate_name != "energy" {
        return;
    }
    for (i, line) in file.code.iter().enumerate() {
        let lineno = i + 1;
        if file.in_test_span(lineno) {
            continue;
        }
        for ty in cast_targets(line) {
            out.push(Finding::new(
                file,
                lineno,
                ID,
                format!(
                    "bare `as {ty}` cast in energy accounting — use an audited conversion \
                     helper with a documented rounding policy"
                ),
            ));
        }
    }
}

/// Numeric types targeted by `as` casts on this (code-view) line.
fn cast_targets(line: &str) -> Vec<&'static str> {
    let mut found = Vec::new();
    let mut rest = line;
    while let Some(pos) = rest.find(" as ") {
        let after = rest[pos + 4..].trim_start();
        if let Some(&ty) = NUMERIC.iter().find(|&&ty| {
            after.starts_with(ty)
                && !after[ty.len()..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        }) {
            found.push(ty);
        }
        rest = &rest[pos + 4..];
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_numeric_targets_only() {
        assert_eq!(
            cast_targets("let x = e as usize + t as f64;"),
            vec!["usize", "f64"]
        );
        assert_eq!(cast_targets("let y = x as MyType;"), Vec::<&str>::new());
        assert_eq!(cast_targets("let z = x as u64x;"), Vec::<&str>::new());
    }
}
