//! `IOTSE-M09` — metric and span labels follow `iotse_<crate>_<name>`.
//!
//! The observability layer aggregates metrics across runs and folds span
//! stacks across crates; both only stay mergeable and greppable if every
//! registration site uses the shared naming scheme. The rule inspects each
//! string literal passed at a registration call site — `enter_span(..)`,
//! `.counter("..")`, `.gauge("..")`, `.histogram("..", ..)` — and requires
//! `iotse_<crate>_<snake_case>` where `<crate>` is one of the workspace
//! crates. Lookup helpers share the method names, so well-named lookups are
//! checked for free; lines without a string literal (definitions,
//! variable-name pass-through) are never flagged.

use crate::scan::{FileKind, SourceFile};
use crate::Finding;

/// Rule ID.
pub const ID: &str = "IOTSE-M09";
/// One-line summary for `explain`.
pub const SUMMARY: &str =
    "metric and span label literals must match iotse_<crate>_<name> (lower snake_case)";

/// Call markers whose string-literal arguments are label registrations.
const CALL_SITES: &[&str] = &["enter_span(", ".counter(", ".gauge(", ".histogram("];

/// Valid `<crate>` segments for the prefix.
const CRATES: &[&str] = &["sim", "energy", "sensors", "core", "apps", "bench"];

/// `true` if `label` matches `iotse_<crate>_<name>` with a lower
/// snake_case, non-empty `<name>`.
fn is_valid_label(label: &str) -> bool {
    let Some(rest) = label.strip_prefix("iotse_") else {
        return false;
    };
    let Some((crate_part, name)) = rest.split_once('_') else {
        return false;
    };
    CRATES.contains(&crate_part)
        && !name.is_empty()
        && !name.starts_with('_')
        && !name.ends_with('_')
        && !name.contains("__")
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// Extracts the plain string literals of one `code_str` line (comments are
/// already blanked; escapes are skipped, not decoded — label literals never
/// need them).
fn string_literals(line: &str) -> Vec<String> {
    let b = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < b.len() && b[j] != b'"' {
                if b[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            out.push(String::from_utf8_lossy(&b[start..j.min(b.len())]).into_owned());
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind == FileKind::Test {
        return;
    }
    for (i, code) in file.code.iter().enumerate() {
        let lineno = i + 1;
        if file.in_test_span(lineno) {
            continue;
        }
        if !CALL_SITES.iter().any(|site| code.contains(site)) {
            continue;
        }
        for literal in string_literals(&file.code_str[i]) {
            if !is_valid_label(&literal) {
                out.push(Finding::new(
                    file,
                    lineno,
                    ID,
                    format!(
                        "label `{literal}` does not match iotse_<crate>_<name> \
                         (crates: {})",
                        CRATES.join("|")
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_pattern_is_strict() {
        assert!(is_valid_label("iotse_core_transfer"));
        assert!(is_valid_label("iotse_energy_total_microjoules"));
        assert!(is_valid_label("iotse_bench_sizes2"));
        assert!(!is_valid_label("core_transfer"), "missing prefix");
        assert!(!is_valid_label("iotse_kernel_x"), "unknown crate");
        assert!(!is_valid_label("iotse_core_"), "empty name");
        assert!(!is_valid_label("iotse_core_Transfer"), "upper case");
        assert!(!is_valid_label("iotse_core__x"), "double underscore");
        assert!(!is_valid_label("iotse_core_x_"), "trailing underscore");
    }

    #[test]
    fn only_call_sites_with_literals_are_checked() {
        let src = "\
let id = reg.counter(\"iotse_core_ok_total\");
let bad = reg.gauge(\"power\");
let span = log.enter_span(t, kind, \"iotse_core_tick\");
pub fn gauge(&mut self, name: &str) -> GaugeId {
let v = reg.gauge(name);
";
        let file = SourceFile::parse("crates/core/src/x.rs", src);
        let mut findings = Vec::new();
        check(&file, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("`power`"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t(reg: &mut R) { reg.counter(\"x\"); }\n}";
        let file = SourceFile::parse("crates/core/src/x.rs", src);
        let mut findings = Vec::new();
        check(&file, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn literal_extraction_handles_escapes() {
        assert_eq!(string_literals("f(\"a\", \"b\\\"c\")"), vec!["a", "b\\\"c"]);
        assert!(string_literals("no strings here").is_empty());
    }
}
