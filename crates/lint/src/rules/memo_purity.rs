//! `IOTSE-M11` — memoizable kernels must be transitively pure.
//!
//! PR 5's `compute_cache` replays a kernel's cached [`AppOutput`] whenever
//! the `(app, salt, window fingerprint)` key repeats — which is only sound
//! if the kernel is a pure function of the window. The dynamic fleet tests
//! sample that property; this rule *proves* it: for every `Workload` impl
//! whose `memoizable()` returns `true`, the transitive call graph of its
//! `compute` entry point must be free of RNG draws, ambient-state access
//! (`static mut`, interior-mutability writes, `std::env`), and wall-clock
//! reads. A violation prints the concrete call path to the offending
//! primitive, so the fix site is one jump away.
//!
//! `AppOutput`: the kernel output type cached per window.

use crate::effects::{bit_name, AMBIENT, CLOCK, RNG};
use crate::scan::FileKind;
use crate::Analysis;
use crate::Finding;

/// Rule ID.
pub const ID: &str = "IOTSE-M11";
/// One-line summary for `explain`.
pub const SUMMARY: &str =
    "Workload impls with `memoizable() == true` must be transitively pure from `compute`";

/// Runs the rule over the analyzed workspace.
pub fn check(analysis: &Analysis<'_>, out: &mut Vec<Finding>) {
    let syms = &analysis.syms;
    for (fi, unit) in syms.units.iter().enumerate() {
        if unit.src.kind != FileKind::Lib {
            continue;
        }
        for (ii, imp) in unit.parsed.impls.iter().enumerate() {
            if imp.trait_name.as_deref() != Some("Workload") {
                continue;
            }
            // Memoization is opt-in: the trait default returns `false`, so
            // only impls that override `memoizable` (with a body that can
            // yield `true`) are audited. A conditional body is treated as
            // memoizable — the cache may engage, so purity must hold.
            let memoizable = unit
                .parsed
                .fns
                .iter()
                .find(|f| f.owner == Some(ii) && f.name == "memoizable")
                .is_some_and(|f| unit.parsed.body_tokens(f).iter().any(|t| t.text == "true"));
            if !memoizable {
                continue;
            }
            let Some(local) = unit
                .parsed
                .fns
                .iter()
                .position(|f| f.owner == Some(ii) && f.name == "compute")
            else {
                continue;
            };
            let Some(id) = syms.id_of(fi, local) else {
                continue;
            };
            for bit in [RNG, AMBIENT, CLOCK] {
                let Some((path, end)) = analysis.effects.witness(&analysis.graph, id, bit) else {
                    continue;
                };
                let chain: Vec<String> = path.iter().map(|&p| syms.display(p)).collect();
                let last = *path.last().expect("witness paths are non-empty");
                out.push(Finding::new(
                    unit.src,
                    unit.parsed.fns[local].line,
                    ID,
                    format!(
                        "memoizable `{}` kernel {}: {} ({}:{}: {})",
                        imp.ty,
                        bit_name(bit),
                        chain.join(" -> "),
                        syms.src(last).rel_path,
                        end.line,
                        end.what,
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;
    use std::path::Path;

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let analysis = Analysis::build(Path::new("/nonexistent"), &files);
        let mut out = Vec::new();
        check(&analysis, &mut out);
        out
    }

    const RNG_CORE: (&str, &str) = (
        "crates/sim/src/rng.rs",
        "pub struct SimRng;\nimpl SimRng {\n    pub fn gen(&mut self) -> u64 { 4 }\n}\n",
    );

    #[test]
    fn impure_memoizable_kernel_is_flagged_with_a_path() {
        let out = run(&[
            RNG_CORE,
            (
                "crates/apps/src/k.rs",
                "struct K { rng: SimRng }\nimpl Workload for K {\n    fn memoizable(&self) -> bool {\n        true\n    }\n    fn compute(&mut self) -> u64 {\n        self.noise()\n    }\n}\nimpl K {\n    fn noise(&mut self) -> u64 {\n        self.rng.gen()\n    }\n}\n",
            ),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, ID);
        assert_eq!(out[0].file, "crates/apps/src/k.rs");
        assert!(out[0].message.contains("draws RNG"), "{}", out[0].message);
        assert!(
            out[0]
                .message
                .contains("K::compute -> K::noise -> SimRng::gen"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn pure_memoizable_and_impure_nonmemoizable_kernels_pass() {
        let out = run(&[
            RNG_CORE,
            (
                "crates/apps/src/k.rs",
                "struct P;\nimpl Workload for P {\n    fn memoizable(&self) -> bool {\n        true\n    }\n    fn compute(&mut self) -> u64 {\n        21 * 2\n    }\n}\nstruct Q { rng: SimRng }\nimpl Workload for Q {\n    fn compute(&mut self) -> u64 {\n        self.rng.gen()\n    }\n}\n",
            ),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn ambient_state_is_impure_too() {
        let out = run(&[(
            "crates/apps/src/k.rs",
            "static mut COUNT: u64 = 0;\nstruct K;\nimpl Workload for K {\n    fn memoizable(&self) -> bool {\n        true\n    }\n    fn compute(&mut self) -> u64 {\n        unsafe { COUNT }\n    }\n}\n",
        )]);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].message.contains("touches ambient state"),
            "{}",
            out[0].message
        );
        assert!(
            out[0].message.contains("static mut COUNT"),
            "{}",
            out[0].message
        );
    }
}
