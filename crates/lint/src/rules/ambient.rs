//! `IOTSE-D03` — no ambient state in deterministic crates.
//!
//! Three ways host state can leak into a simulation: mutable globals
//! (`static mut`), OS-seeded randomness (`thread_rng`/`from_entropy`
//! idioms), and environment variables (`std::env`). All replay/determinism
//! guarantees die with any of them; randomness must come from the seeded
//! `SimRng` tree and configuration from explicit arguments.

use crate::scan::{find_word, FileKind, SourceFile};
use crate::{rules::DETERMINISTIC_CRATES, Finding};

/// Rule ID.
pub const ID: &str = "IOTSE-D03";
/// One-line summary for `explain`.
pub const SUMMARY: &str =
    "no static mut, OS-seeded randomness, or std::env reads in deterministic crates";

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let scoped =
        DETERMINISTIC_CRATES.contains(&file.crate_name.as_str()) || file.crate_name == "apps";
    if file.kind == FileKind::Test || !scoped {
        return;
    }
    for (i, line) in file.code.iter().enumerate() {
        let lineno = i + 1;
        if file.in_test_span(lineno) {
            continue;
        }
        if line.contains("static mut ") {
            out.push(Finding::new(
                file,
                lineno,
                ID,
                "`static mut` global — pass state explicitly; ambient mutation breaks replay"
                    .to_string(),
            ));
        }
        for word in ["thread_rng", "from_entropy"] {
            if find_word(line, word).is_some() {
                out.push(Finding::new(
                    file,
                    lineno,
                    ID,
                    format!("OS-seeded randomness `{word}` — derive from the seeded SimRng tree"),
                ));
            }
        }
        if line.contains("std::env") {
            out.push(Finding::new(
                file,
                lineno,
                ID,
                "`std::env` read — environment must not influence simulation results; \
                 take configuration as arguments"
                    .to_string(),
            ));
        }
    }
}
