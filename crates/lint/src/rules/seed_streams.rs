//! `IOTSE-S12` — `SeedTree` split labels must be auditable and disjoint.
//!
//! Every RNG stream in the workspace is addressed by a `/`-separated label
//! path through the `SeedTree` (`faults/script-0/seed-7`,
//! `signal/audio`, …). Two *consuming* splits — `stream`, `streams`, or
//! `child` — with the same full path yield correlated generators, which
//! silently breaks the independence assumptions behind the paper's
//! variance estimates. PR 6 tests disjointness dynamically for the labels
//! it happens to construct; this rule audits **every** split site in
//! library code statically:
//!
//! * each label argument must be statically resolvable — a string
//!   literal, a `format!` with a literal template (placeholders normalize
//!   to `{*}`), or a `let` binding / struct-field initializer that
//!   resolves to one. Anything else is *unauditable* and flagged;
//! * the receiver chain is traced through `child(..)` namespaces,
//!   `let`-bound subtrees, and `self.field` subtrees to recover the full
//!   path; two consuming sites with the same path collide.
//!
//! `derive(..)` sites get the auditability check but are exempt from
//! collision detection: pairing `derive(label)` (a cache key) with
//! `stream(label)` (the generator) on one receiver is an intentional
//! idiom in the sensor models.

use std::collections::BTreeMap;

use crate::scan::{FileKind, SourceFile};
use crate::Finding;

/// Rule ID.
pub const ID: &str = "IOTSE-S12";
/// One-line summary for `explain`.
pub const SUMMARY: &str =
    "SeedTree split labels must be statically auditable and collision-free workspace-wide";

/// Split methods that *consume* a label path (correlated if duplicated).
const CONSUMING: &[&str] = &["stream", "streams", "child"];
/// All audited split methods.
const OPS: &[&str] = &["derive", "stream", "streams", "child"];

/// Recursion bound for receiver/let tracing.
const MAX_DEPTH: usize = 8;

/// Runs the rule over the whole workspace.
pub fn check(files: &[SourceFile], out: &mut Vec<Finding>) {
    // path -> consuming sites, ordered by (file, line).
    let mut consumed: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();
    for file in files {
        // The tree mechanism itself (and its tests) is exempt: `stream`
        // calling `derive(label)` is the implementation, not a split site.
        if file.kind != FileKind::Lib || file.rel_path.ends_with("src/rng.rs") {
            continue;
        }
        let text = FileText::new(file);
        for site in text.sites() {
            if file.in_test_span(site.line) {
                continue;
            }
            match text.resolve_path(&site, 0) {
                Ok(path) => {
                    if CONSUMING.contains(&site.op) {
                        consumed
                            .entry(path)
                            .or_default()
                            .push((file.rel_path.clone(), site.line));
                    }
                }
                Err(why) => out.push(Finding::at(
                    &file.rel_path,
                    site.line,
                    ID,
                    format!(
                        "`{}(..)` label is not statically auditable: {why} — use a literal or a `format!` with a literal template",
                        site.op
                    ),
                )),
            }
        }
    }
    for (path, mut sites) in consumed {
        if sites.len() < 2 {
            continue;
        }
        sites.sort();
        let (first_file, first_line) = sites[0].clone();
        for (file, line) in &sites[1..] {
            out.push(Finding::at(
                file,
                *line,
                ID,
                format!(
                    "seed path `{path}` is split here and at {first_file}:{first_line} — correlated RNG streams"
                ),
            ));
        }
    }
}

/// One `.op(..)` occurrence.
struct Site {
    /// Byte offset of the `.` in the joined text.
    dot: usize,
    /// Byte offset just past `op(`.
    arg_start: usize,
    /// Method name.
    op: &'static str,
    /// 1-based line.
    line: usize,
}

/// A file's joined text in both lexical views, with offset→line mapping.
/// Structure (parens, identifiers) is read from the string-blanked `code`
/// view; label content from the comment-blanked `code_str` view. The two
/// are byte-aligned.
struct FileText {
    code: String,
    strs: String,
    line_starts: Vec<usize>,
}

impl FileText {
    fn new(file: &SourceFile) -> FileText {
        let mut code = String::new();
        let mut strs = String::new();
        let mut line_starts = Vec::with_capacity(file.code.len());
        for (c, s) in file.code.iter().zip(&file.code_str) {
            line_starts.push(code.len());
            // The views are right-trimmed independently, so pad both to a
            // common byte length to keep offsets aligned.
            let width = c.len().max(s.len());
            code.push_str(c);
            for _ in c.len()..width {
                code.push(' ');
            }
            code.push('\n');
            strs.push_str(s);
            for _ in s.len()..width {
                strs.push(' ');
            }
            strs.push('\n');
        }
        FileText {
            code,
            strs,
            line_starts,
        }
    }

    fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    /// Every `.op(` occurrence in the structural view.
    fn sites(&self) -> Vec<Site> {
        let mut sites = Vec::new();
        for &op in OPS {
            let needle = format!(".{op}(");
            let mut from = 0;
            while let Some(at) = self.code[from..].find(&needle) {
                let dot = from + at;
                sites.push(Site {
                    dot,
                    arg_start: dot + needle.len(),
                    op,
                    line: self.line_of(dot),
                });
                from = dot + needle.len();
            }
        }
        sites.sort_by_key(|s| s.dot);
        sites
    }

    /// The full `/`-separated path of a split site: receiver prefix plus
    /// the site's own label. `Err` describes why the label cannot be
    /// audited statically.
    fn resolve_path(&self, site: &Site, depth: usize) -> Result<String, String> {
        let arg = self.first_arg_span(site.arg_start);
        let label = self.label_of(arg, depth)?;
        let prefix = self.receiver_prefix(site.dot, depth);
        Ok(if prefix.is_empty() {
            label
        } else {
            format!("{prefix}/{label}")
        })
    }

    /// Span of the first argument: from `start` to the `,` or closing `)`
    /// at the argument's own nesting level.
    fn first_arg_span(&self, start: usize) -> (usize, usize) {
        let b = self.code.as_bytes();
        let mut depth = 0usize;
        let mut i = start;
        while i < b.len() {
            match b[i] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => {
                    if depth == 0 {
                        return (start, i);
                    }
                    depth -= 1;
                }
                b',' if depth == 0 => return (start, i),
                _ => {}
            }
            i += 1;
        }
        (start, b.len())
    }

    /// Resolves one label argument to its normalized text.
    fn label_of(&self, (start, end): (usize, usize), depth: usize) -> Result<String, String> {
        if depth > MAX_DEPTH {
            return Err("tracing depth exceeded".to_string());
        }
        let code = self.code[start..end].trim();
        let strs = self.strs[start..end].trim_start();
        let (code, strs) = match code.strip_prefix('&') {
            Some(c) => (
                c.trim_start(),
                strs.strip_prefix('&').unwrap_or(strs).trim_start(),
            ),
            None => (code, strs),
        };
        if strs.starts_with('"') {
            return Ok(string_literal(strs));
        }
        if code.starts_with("format") && code[6..].trim_start().starts_with('!') {
            let Some(q) = strs.find('"') else {
                return Err("`format!` without a literal template".to_string());
            };
            return Ok(normalize_placeholders(&string_literal(&strs[q..])));
        }
        if is_ident(code) {
            // A `let` binding in the same file.
            if let Some(rhs) = self.let_rhs(code, start) {
                return self.label_of(rhs, depth + 1);
            }
            return Err(format!(
                "`{code}` does not resolve to a `let` with a literal"
            ));
        }
        let shown: String = code.chars().take(40).collect();
        Err(format!("argument `{shown}` is dynamic"))
    }

    /// RHS span of the nearest `let <name> = …;` before `before`.
    fn let_rhs(&self, name: &str, before: usize) -> Option<(usize, usize)> {
        let mut best: Option<usize> = None;
        let mut from = 0;
        while let Some(at) = self.code[from..].find("let ") {
            let at = from + at;
            from = at + 4;
            if at >= before {
                break;
            }
            let rest = self.code[at + 4..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            if rest.starts_with(name)
                && !rest[name.len()..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                best = Some(at);
            }
        }
        let at = best?;
        let eq = at + self.code[at..before.min(self.code.len())].find('=')?;
        let start = eq + 1;
        let bytes = self.code.as_bytes();
        let mut depth = 0usize;
        let mut i = start;
        while i < bytes.len() {
            match bytes[i] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth = depth.saturating_sub(1),
                b';' if depth == 0 => return Some((start, i)),
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// The namespace prefix contributed by the receiver expression before
    /// `dot`. Unresolvable receivers contribute no prefix (the root tree).
    fn receiver_prefix(&self, dot: usize, depth: usize) -> String {
        if depth > MAX_DEPTH {
            return String::new();
        }
        let b = self.code.as_bytes();
        let mut i = dot;
        while i > 0 && b[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i == 0 {
            return String::new();
        }
        if b[i - 1] == b')' {
            // Chained call: `recv.m(..).op(..)` — find `m`.
            let open = match self.matching_open(i - 1) {
                Some(o) => o,
                None => return String::new(),
            };
            let mut j = open;
            while j > 0 && b[j - 1].is_ascii_whitespace() {
                j -= 1;
            }
            let name_end = j;
            while j > 0 && (b[j - 1].is_ascii_alphanumeric() || b[j - 1] == b'_') {
                j -= 1;
            }
            let name = &self.code[j..name_end];
            let mut k = j;
            while k > 0 && b[k - 1].is_ascii_whitespace() {
                k -= 1;
            }
            if k == 0 || b[k - 1] != b'.' {
                return String::new(); // free call / constructor — root
            }
            if name == "child" {
                let site = Site {
                    dot: k - 1,
                    arg_start: open + 1,
                    op: "child",
                    line: self.line_of(k - 1),
                };
                return self.resolve_path(&site, depth + 1).unwrap_or_default();
            }
            // Transparent pass-through (`.clone()` etc.).
            return self.receiver_prefix(k - 1, depth + 1);
        }
        if b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_' {
            let name_end = i;
            let mut j = i;
            while j > 0 && (b[j - 1].is_ascii_alphanumeric() || b[j - 1] == b'_') {
                j -= 1;
            }
            let name = self.code[j..name_end].to_string();
            let mut k = j;
            while k > 0 && b[k - 1].is_ascii_whitespace() {
                k -= 1;
            }
            if k > 0 && b[k - 1] == b'.' && self.code[..k - 1].trim_end().ends_with("self") {
                // `self.field` — trace the field initializer.
                return self.field_prefix(&name, depth);
            }
            if k > 0 && (b[k - 1] == b'.' || b[k - 1] == b':') {
                return String::new(); // deeper chain we do not model
            }
            // A `let`-bound subtree.
            if let Some(rhs) = self.let_rhs(&name, dot) {
                return self.child_chain_path(rhs, depth);
            }
        }
        String::new()
    }

    /// Path of the last `.child(` call inside `span` (a `let` RHS or field
    /// initializer), or empty when the span holds none.
    fn child_chain_path(&self, (start, end): (usize, usize), depth: usize) -> String {
        let Some(at) = self.code[start..end].rfind(".child(") else {
            return String::new();
        };
        let dot = start + at;
        let site = Site {
            dot,
            arg_start: dot + ".child(".len(),
            op: "child",
            line: self.line_of(dot),
        };
        self.resolve_path(&site, depth + 1).unwrap_or_default()
    }

    /// Prefix from a `field: <expr containing .child(..)>` initializer.
    fn field_prefix(&self, field: &str, depth: usize) -> String {
        let needle = format!("{field}:");
        let mut from = 0;
        while let Some(at) = self.code[from..].find(&needle) {
            let at = from + at;
            from = at + needle.len();
            // Word boundary on the left; reject `field::`.
            if at > 0 {
                let prev = self.code.as_bytes()[at - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b':' {
                    continue;
                }
            }
            if self.code[at + needle.len()..].starts_with(':') {
                continue;
            }
            let start = at + needle.len();
            let end = self.expr_end(start);
            let path = self.child_chain_path((start, end), depth);
            if !path.is_empty() {
                return path;
            }
        }
        String::new()
    }

    /// End of an initializer expression: the `,` or `}` at nesting level 0.
    fn expr_end(&self, start: usize) -> usize {
        let b = self.code.as_bytes();
        let mut depth = 0usize;
        let mut i = start;
        while i < b.len() {
            match b[i] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' => depth = depth.saturating_sub(1),
                b'}' => {
                    if depth == 0 {
                        return i;
                    }
                    depth -= 1;
                }
                b',' if depth == 0 => return i,
                _ => {}
            }
            i += 1;
        }
        b.len()
    }

    /// Offset of the `(` matching the `)` at `close`.
    fn matching_open(&self, close: usize) -> Option<usize> {
        let b = self.code.as_bytes();
        let mut depth = 0usize;
        let mut i = close + 1;
        while i > 0 {
            i -= 1;
            match b[i] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
        None
    }
}

/// The content of a leading `"…"` literal (escape-aware, minimal).
fn string_literal(s: &str) -> String {
    let mut out = String::new();
    let mut chars = s.chars();
    if chars.next() != Some('"') {
        return out;
    }
    let mut escaped = false;
    for c in chars {
        if escaped {
            out.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            break;
        } else {
            out.push(c);
        }
    }
    out
}

/// Rewrites every `format!` placeholder to `{*}` so `script-{i}` and
/// `script-{idx}` normalize to the same audited path segment.
fn normalize_placeholders(s: &str) -> String {
    let mut out = String::new();
    let mut it = s.chars().peekable();
    while let Some(c) = it.next() {
        if c == '{' {
            for d in it.by_ref() {
                if d == '}' {
                    break;
                }
            }
            out.push_str("{*}");
        } else {
            out.push(c);
        }
    }
    out
}

/// `true` for a bare identifier.
fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
        && !s.starts_with(|c: char| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse("crates/sim/src/x.rs", src)];
        let mut out = Vec::new();
        check(&files, &mut out);
        out.sort_by_key(|f| f.line);
        out
    }

    #[test]
    fn literal_and_format_labels_are_audited_silently() {
        let out = run(
            "fn f(seeds: &SeedTree, i: usize) {\n    let _a = seeds.stream(\"alpha\");\n    let _b = seeds.stream(&format!(\"beta-{i}\"));\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn duplicate_consuming_labels_collide() {
        let out = run(
            "fn f(seeds: &SeedTree) {\n    let _a = seeds.stream(\"alpha\");\n    let _b = seeds.stream(\"alpha\");\n}\n",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("`alpha`"), "{}", out[0].message);
        assert!(
            out[0].message.contains("crates/sim/src/x.rs:2"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn format_placeholders_normalize_before_collision_checks() {
        let out = run(
            "fn f(seeds: &SeedTree, i: usize, j: usize) {\n    let _a = seeds.stream(&format!(\"s-{i}\"));\n    let _b = seeds.stream(&format!(\"s-{j}\"));\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`s-{*}`"), "{}", out[0].message);
    }

    #[test]
    fn derive_and_stream_may_share_a_label() {
        let out = run(
            "fn f(seeds: &SeedTree) -> u64 {\n    let key = seeds.derive(\"sig\");\n    let _r = seeds.stream(\"sig\");\n    key\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn child_namespaces_prefix_the_path() {
        let out = run(
            "fn f(seeds: &SeedTree) {\n    let _a = seeds.child(\"ns\").stream(\"x\");\n    let _b = seeds.stream(\"x\");\n}\n",
        );
        // `ns/x` and `x` are distinct; `ns` itself is consumed once.
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn let_bound_namespaces_are_traced_across_lines() {
        let out = run(
            "fn f(seeds: &SeedTree, i: usize) {\n    let ns = seeds.child(\"faults\");\n    let _s = ns\n        .child(&format!(\"script-{i}\"))\n        .stream(&format!(\"seed-{}\", i));\n}\nfn g(seeds: &SeedTree, i: usize) {\n    let _t = seeds.child(\"faults\");\n}\n",
        );
        // g() re-consumes the `faults` namespace label.
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`faults`"), "{}", out[0].message);
    }

    #[test]
    fn field_subtrees_are_traced_through_the_constructor() {
        let out = run(
            "struct Cam {\n    seeds: SeedTree,\n}\nimpl Cam {\n    fn new(seeds: &SeedTree) -> Cam {\n        Cam {\n            seeds: seeds.child(\"img\"),\n        }\n    }\n    fn frame(&self) -> SimRng {\n        self.seeds.stream(\"frame\")\n    }\n}\nfn other(seeds: &SeedTree) -> SimRng {\n    seeds.stream(\"frame\")\n}\n",
        );
        // `img/frame` vs `frame`: no collision.
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn dynamic_labels_are_unauditable() {
        let out = run(
            "fn f(seeds: &SeedTree, name: &str) {\n    let _a = seeds.stream(name);\n    let _b = seeds.stream(&label_for(3));\n}\n",
        );
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("not statically auditable"));
    }

    #[test]
    fn test_code_and_the_rng_core_are_exempt() {
        let core = SourceFile::parse(
            "crates/sim/src/rng.rs",
            "impl SeedTree {\n    pub fn stream(&self, label: &str) -> SimRng {\n        SimRng::seed_from_u64(self.derive(label))\n    }\n}\n",
        );
        let lib = SourceFile::parse(
            "crates/sim/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(seeds: &SeedTree) {\n        let _a = seeds.stream(\"dup\");\n        let _b = seeds.stream(\"dup\");\n    }\n}\n",
        );
        let mut out = Vec::new();
        check(&[core, lib], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
