//! `IOTSE-K10` — kernel hot paths must not allocate silently.
//!
//! The Table II kernels under `crates/apps/src/kernels/` run once per
//! simulated window, per app, per scheme, per fleet slot — their steady
//! state is the hottest loop in the workspace, and PR 5's scratch-arena
//! work drove its per-window allocation count to (near) zero. This rule
//! keeps it there: every `Vec::new(..)` or `vec![..]` in kernel library
//! code must carry a `// lint: <reason>` comment on its line or the line
//! above, naming why the allocation is intentional (one-time constructor,
//! allocating convenience wrapper over an `_into` API, or the allocation
//! *is* the reproduced workload, as in A3's JSON tree).

use crate::scan::{find_word, FileKind, SourceFile};
use crate::Finding;

/// Rule ID.
pub const ID: &str = "IOTSE-K10";
/// One-line summary for `explain`.
pub const SUMMARY: &str =
    "Vec allocations in crates/apps/src/kernels need a `// lint:` justification (use scratch buffers)";

/// The directory whose library code the rule guards.
const KERNELS_DIR: &str = "crates/apps/src/kernels/";

/// The justification marker looked up in the comments view.
const JUSTIFY: &str = "lint:";

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind == FileKind::Test || !file.rel_path.starts_with(KERNELS_DIR) {
        return;
    }
    for (i, line) in file.code.iter().enumerate() {
        let lineno = i + 1;
        if file.in_test_span(lineno) {
            continue;
        }
        let hit = if line.contains("Vec::new(") {
            Some("Vec::new(..)")
        } else if find_word(line, "vec").is_some_and(|at| line[at..].starts_with("vec!")) {
            Some("vec![..]")
        } else {
            None
        };
        let Some(what) = hit else {
            continue;
        };
        let justified = |idx: usize| file.comments.get(idx).is_some_and(|c| c.contains(JUSTIFY));
        if justified(i) || (i > 0 && justified(i - 1)) {
            continue;
        }
        out.push(Finding::new(
            file,
            lineno,
            ID,
            format!(
                "`{what}` in a kernel hot path — reuse a scratch buffer, or justify with `// lint: <reason>`"
            ),
        ));
    }
}
