//! `IOTSE-D02` — no hash-ordered collections in deterministic crates.
//!
//! `HashMap`/`HashSet` iteration order depends on `RandomState`, so any
//! result assembled by walking one is nondeterministic across runs. The
//! deterministic crates must use `BTreeMap`/`BTreeSet` (or a sorted `Vec`)
//! anywhere a collection can reach a result path; rather than guess which
//! uses iterate, the rule bans the types outright — an order-insensitive
//! use can carry a justified suppression.

use crate::scan::{find_word, FileKind, SourceFile};
use crate::{rules::DETERMINISTIC_CRATES, Finding};

/// Rule ID.
pub const ID: &str = "IOTSE-D02";
/// One-line summary for `explain`.
pub const SUMMARY: &str =
    "HashMap/HashSet are banned in deterministic crates (core/sim/energy/sensors); use BTreeMap";

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind == FileKind::Test || !DETERMINISTIC_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for (i, line) in file.code.iter().enumerate() {
        let lineno = i + 1;
        if file.in_test_span(lineno) {
            continue;
        }
        for word in ["HashMap", "HashSet"] {
            if find_word(line, word).is_some() {
                out.push(Finding::new(
                    file,
                    lineno,
                    ID,
                    format!(
                        "`{word}` in deterministic crate `{}` — iteration order is \
                         nondeterministic; use `BTree{}`",
                        file.crate_name,
                        &word[4..],
                    ),
                ));
            }
        }
    }
}
