//! The `iotse-lint` command-line interface.
//!
//! ```text
//! cargo run -p iotse-lint -- check             # text report, exit 1 on findings
//! cargo run -p iotse-lint -- check --json      # machine-readable report
//! cargo run -p iotse-lint -- check --root DIR  # scan another tree (fixtures)
//! cargo run -p iotse-lint -- explain           # list the rule catalogue
//! cargo run -p iotse-lint -- rules --markdown  # emit crates/lint/RULES.md
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use iotse_lint::{report, rules, run_check};

/// Writes to stdout, swallowing errors: a closed pipe (`iotse-lint … | head`)
/// must truncate the report, not panic the analyzer. The exit code still
/// reflects the findings.
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("iotse-lint: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str =
    "usage: iotse-lint check [--json] [--root DIR] | iotse-lint explain | iotse-lint rules [--markdown]";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Err("missing command".to_string());
    };
    match command.as_str() {
        "explain" => {
            for (id, summary) in rules::ALL {
                emit(&format!("{id}  {summary}\n"));
            }
            Ok(ExitCode::SUCCESS)
        }
        "rules" => match args.get(1).map(String::as_str) {
            Some("--markdown") => {
                emit(&rules::catalogue_markdown());
                Ok(ExitCode::SUCCESS)
            }
            None => {
                for (id, kind, _) in rules::DETAILS {
                    emit(&format!("{id}  [{kind}]\n"));
                }
                Ok(ExitCode::SUCCESS)
            }
            Some(other) => Err(format!("unknown flag `{other}`")),
        },
        "check" => {
            let mut json = false;
            let mut root = PathBuf::from(".");
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--json" => json = true,
                    "--root" => {
                        root = PathBuf::from(
                            rest.next()
                                .ok_or_else(|| "--root needs a path".to_string())?,
                        );
                    }
                    other => return Err(format!("unknown flag `{other}`")),
                }
            }
            let findings = run_check(&root).map_err(|e| e.to_string())?;
            if json {
                emit(&report::json(&findings));
            } else {
                emit(&report::text(&findings));
                if !findings.is_empty() {
                    eprintln!(
                        "iotse-lint: {} finding(s); see DESIGN.md `Static guarantees` \
                         or run `iotse-lint explain`",
                        findings.len()
                    );
                }
            }
            if findings.is_empty() {
                Ok(ExitCode::SUCCESS)
            } else {
                Ok(ExitCode::FAILURE)
            }
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
