//! Name-based call graph over the [`crate::symbols`] table.
//!
//! Three call shapes are recognized in function-body token streams:
//!
//! * `name(..)`          — free-function call, resolved by bare name;
//! * `Qual::name(..)`    — associated call, resolved by `(type, name)`
//!   with `Self::` mapped through the enclosing impl;
//! * `recv.name(..)`     — method call. The receiver type is unknown, so
//!   this resolves to *every* visible workspace method of that name —
//!   except for a literal `self` receiver, which is pinned to the
//!   enclosing impl type when that type defines the method.
//!
//! Over-approximation is deliberate: an extra edge can only *add* an
//! effect downstream, so the purity and allocation rules stay sound.
//! Calls into `std` (or anything else outside the workspace) resolve to
//! nothing and contribute no edge — their effects are covered by the
//! local token patterns in [`crate::effects`].

use crate::symbols::{FnId, Symbols};

/// One resolved call site inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// The callee node.
    pub callee: FnId,
    /// 1-based line of the call.
    pub line: usize,
}

/// Adjacency list, indexed by caller [`FnId`]. Sites keep body order
/// (deduplicated per callee), which makes witness paths deterministic.
#[derive(Debug)]
pub struct CallGraph {
    /// `calls[caller]` — resolved call sites in source order.
    pub calls: Vec<Vec<CallSite>>,
}

/// Workspace method names that collide with ubiquitous `std` methods
/// (`str::split`, `[T]::split`, …). Fanning these out would wire every
/// string split to `SimRng::split` and taint whole subgraphs with phantom
/// RNG, so they resolve only through a pinned receiver (`self.name(..)`
/// or `self.field.name(..)` with a known field type) or a qualified call.
/// Keep this list short and justified — each entry is a hole the effect
/// analysis cannot see through for unpinned receivers.
const AMBIGUOUS_METHODS: &[&str] = &["split", "expect"];

/// Tokens that look like calls but never are.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "loop", "for", "in", "match", "return", "let", "mut", "ref", "move",
    "break", "continue", "as", "where", "unsafe", "async", "await", "fn", "impl", "pub", "use",
    "struct", "enum", "trait", "type", "const", "static", "dyn", "self", "Self", "super", "crate",
];

impl CallGraph {
    /// Extracts and resolves every call edge.
    #[must_use]
    pub fn build(syms: &Symbols<'_>) -> CallGraph {
        let mut calls = Vec::with_capacity(syms.fns.len());
        for id in 0..syms.fns.len() {
            calls.push(edges_of(syms, id));
        }
        CallGraph { calls }
    }

    /// The call sites of one function.
    #[must_use]
    pub fn out(&self, id: FnId) -> &[CallSite] {
        &self.calls[id]
    }
}

/// Unpinned method fan-out, with the ambiguous-name guard.
fn fan_out(syms: &Symbols<'_>, from_crate: &str, name: &str) -> Vec<FnId> {
    if AMBIGUOUS_METHODS.contains(&name) {
        return Vec::new();
    }
    syms.resolve_method(from_crate, name)
}

/// Resolves the call sites of one function body.
fn edges_of(syms: &Symbols<'_>, id: FnId) -> Vec<CallSite> {
    let info = &syms.fns[id];
    let unit = &syms.units[info.file];
    let body = unit.parsed.body_tokens(syms.item(id));
    let self_ty = info.owner_ty.as_deref();
    let mut sites: Vec<CallSite> = Vec::new();
    let mut seen: Vec<FnId> = Vec::new();
    for (k, tok) in body.iter().enumerate() {
        if !tok.ident || KEYWORDS.contains(&tok.text.as_str()) {
            continue;
        }
        if body.get(k + 1).map_or("", |t| t.text.as_str()) != "(" {
            continue;
        }
        let prev = |n: usize| {
            k.checked_sub(n)
                .and_then(|j| body.get(j))
                .map_or("", |t| t.text.as_str())
        };
        let targets = if prev(1) == "." {
            // Method call. A `self.field.name(..)` receiver with a
            // recorded field type is TRUSTED: the declared type is
            // authoritative, so a `std` receiver (`BinaryHeap`, `Vec`, …)
            // resolves to nothing rather than fanning out to same-named
            // workspace methods. A literal `self.name(..)` resolves
            // through the enclosing impl with fan-out as fallback (the
            // method may be a trait-default body). Everything else fans
            // out — except the std-ambiguous names, which only resolve
            // when pinned.
            if prev(3) == "." && prev(4) == "self" && syms.fns[id].owner_ty.is_some() {
                let field_ty = self_ty.and_then(|ty| syms.field_type(ty, prev(2)));
                match field_ty {
                    Some(ty) => syms.resolve_qualified(&info.crate_name, &ty, &tok.text, None),
                    None => fan_out(syms, &info.crate_name, &tok.text),
                }
            } else if prev(2) == "self" {
                let pinned = self_ty
                    .map(|ty| syms.resolve_qualified(&info.crate_name, ty, &tok.text, None))
                    .filter(|ids| !ids.is_empty());
                match pinned {
                    Some(ids) => ids,
                    None => fan_out(syms, &info.crate_name, &tok.text),
                }
            } else {
                fan_out(syms, &info.crate_name, &tok.text)
            }
        } else if prev(1) == ":" && prev(2) == ":" {
            let qual = prev(3);
            if qual.is_empty()
                || !qual
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                Vec::new()
            } else {
                syms.resolve_qualified(&info.crate_name, qual, &tok.text, self_ty)
            }
        } else if prev(1) == "fn" {
            Vec::new() // nested definition, not a call
        } else {
            syms.resolve_bare(&info.crate_name, &tok.text)
        };
        for callee in targets {
            if !seen.contains(&callee) {
                seen.push(callee);
                sites.push(CallSite {
                    callee,
                    line: tok.line,
                });
            }
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;
    use std::path::Path;

    fn files(src: &str) -> Vec<SourceFile> {
        vec![SourceFile::parse("crates/core/src/x.rs", src)]
    }

    fn names_called_by(syms: &Symbols<'_>, g: &CallGraph, caller: &str) -> Vec<String> {
        let (id, _) = syms
            .fns
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == caller)
            .expect("caller");
        g.out(id).iter().map(|s| syms.display(s.callee)).collect()
    }

    #[test]
    fn bare_qualified_and_method_calls_resolve() {
        let files = files(
            "fn a() {\n    helper();\n    S::assoc();\n    let s = S;\n    s.m();\n}\nfn helper() {}\nstruct S;\nimpl S {\n    fn assoc() {}\n    fn m(&self) {}\n}\n",
        );
        let syms = Symbols::build(Path::new("/nonexistent"), &files);
        let g = CallGraph::build(&syms);
        assert_eq!(
            names_called_by(&syms, &g, "a"),
            vec!["helper", "S::assoc", "S::m"]
        );
    }

    #[test]
    fn self_receiver_pins_to_the_impl_type() {
        let files = files(
            "struct A;\nstruct B;\nimpl A {\n    fn go(&self) {\n        self.step();\n    }\n    fn step(&self) {}\n}\nimpl B {\n    fn step(&self) {}\n}\n",
        );
        let syms = Symbols::build(Path::new("/nonexistent"), &files);
        let g = CallGraph::build(&syms);
        assert_eq!(names_called_by(&syms, &g, "go"), vec!["A::step"]);
    }

    #[test]
    fn unknown_receivers_fan_out_to_all_methods() {
        let files = files(
            "struct A;\nstruct B;\nimpl A {\n    fn step(&self) {}\n}\nimpl B {\n    fn step(&self) {}\n}\nfn drive(x: &A) {\n    x.step();\n}\n",
        );
        let syms = Symbols::build(Path::new("/nonexistent"), &files);
        let g = CallGraph::build(&syms);
        assert_eq!(
            names_called_by(&syms, &g, "drive"),
            vec!["A::step", "B::step"]
        );
    }

    #[test]
    fn keywords_macros_and_std_calls_produce_no_edges() {
        let files = files(
            "fn a(xs: &[u8]) {\n    if xs.len() > 0 {\n        let v = Vec::<u8>::with_capacity(4);\n        drop(v);\n    }\n    let _ = format!(\"x\");\n    while check() {}\n}\nfn check() -> bool { false }\n",
        );
        let syms = Symbols::build(Path::new("/nonexistent"), &files);
        let g = CallGraph::build(&syms);
        assert_eq!(names_called_by(&syms, &g, "a"), vec!["check"]);
    }

    #[test]
    fn self_qualified_assoc_calls_resolve() {
        let files = files(
            "struct S;\nimpl S {\n    fn new() -> S {\n        Self::seed()\n    }\n    fn seed() -> S { S }\n}\n",
        );
        let syms = Symbols::build(Path::new("/nonexistent"), &files);
        let g = CallGraph::build(&syms);
        assert_eq!(names_called_by(&syms, &g, "new"), vec!["S::seed"]);
    }
}
