//! `iotse-lint` — the workspace's in-tree static analyzer.
//!
//! PR 1 made every figure bitwise-deterministic, but only dynamically
//! (golden CSVs, determinism tests). This crate is the static half of that
//! guarantee: ten rules that scan the workspace source for the patterns
//! which historically break replayability (wall-clock reads, hash-ordered
//! iteration, ambient state), erode the energy model (panicking library
//! paths, silent casts), let the paper's Table I constants drift from
//! the code (`specs/table1.toml` audit), fragment the observability
//! namespace (metric/span label naming), or reintroduce per-window heap
//! allocations into the kernel hot paths (`Vec` use without a `// lint:`
//! justification).
//!
//! Run it as `cargo run -p iotse-lint -- check` (add `--json` for machine
//! output). Findings print as `file:line: RULE-ID message`; a finding can
//! be waived in place with `// iotse-lint: allow(RULE-ID)` on its line or
//! the line above. See DESIGN.md's *Static guarantees* section for the
//! rule catalogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod effects;
pub mod extract;
pub mod parse;
pub mod report;
pub mod rules;
pub mod scan;
pub mod symbols;
pub mod toml_mini;

use std::path::{Path, PathBuf};

use scan::SourceFile;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative, `/`-separated path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule ID (`IOTSE-…`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Builds a finding anchored in a scanned source file.
    #[must_use]
    pub fn new(file: &SourceFile, line: usize, rule: &'static str, message: String) -> Finding {
        Finding::at(&file.rel_path, line, rule, message)
    }

    /// Builds a finding anchored at an arbitrary path (e.g. the TOML ground
    /// truth, which is not a scanned Rust file).
    #[must_use]
    pub fn at(path: &str, line: usize, rule: &'static str, message: String) -> Finding {
        Finding {
            file: path.to_string(),
            line,
            rule,
            message,
        }
    }
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];
/// The fixture tree ships deliberate violations; the workspace scan must
/// not see them.
const FIXTURES: &str = "crates/lint/tests/fixtures";

/// Errors from walking or reading the tree.
#[derive(Debug)]
pub struct ScanError(pub String);

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ScanError {}

/// Collects and parses every `.rs` file under `root` (sorted, so results
/// are deterministic across filesystems), skipping build output, VCS
/// metadata, and the linter's own fixture tree.
///
/// # Errors
///
/// Returns [`ScanError`] if a directory cannot be listed or a file read.
pub fn scan_workspace(root: &Path) -> Result<Vec<SourceFile>, ScanError> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let text = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| ScanError(format!("read {rel}: {e}")))?;
        files.push(SourceFile::parse(&rel, &text));
    }
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), ScanError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| ScanError(format!("list {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| ScanError(format!("list {}: {e}", dir.display())))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        let rel = rel_path(root, &path);
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || rel == FIXTURES {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// The whole-workspace analysis state shared by the call-graph rules:
/// the symbol table, the resolved call graph, and the effect summaries
/// closed to a fixpoint. Built once per check run.
#[derive(Debug)]
pub struct Analysis<'a> {
    /// Symbol table over every parsed file.
    pub syms: symbols::Symbols<'a>,
    /// Resolved call graph, indexed by [`symbols::FnId`].
    pub graph: callgraph::CallGraph,
    /// Per-function effect summaries (local + transitive).
    pub effects: effects::Effects,
}

impl<'a> Analysis<'a> {
    /// Runs the parse → symbols → call-graph → effects pipeline.
    #[must_use]
    pub fn build(root: &Path, files: &'a [SourceFile]) -> Analysis<'a> {
        let syms = symbols::Symbols::build(root, files);
        let graph = callgraph::CallGraph::build(&syms);
        let effects = effects::Effects::analyze(&syms, &graph);
        Analysis {
            syms,
            graph,
            effects,
        }
    }
}

/// Runs every rule over the tree at `root` and returns the surviving
/// findings, sorted by `(file, line, rule, message)` with per-line
/// suppressions already applied.
///
/// # Errors
///
/// Returns [`ScanError`] if the tree cannot be read.
pub fn run_check(root: &Path) -> Result<Vec<Finding>, ScanError> {
    Ok(check_files(root, scan_workspace(root)?))
}

/// Runs every rule over an already-scanned file set. Files are re-sorted
/// by path first, so findings — including call-graph witness paths — are
/// independent of discovery order.
#[must_use]
pub fn check_files(root: &Path, mut files: Vec<SourceFile>) -> Vec<Finding> {
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    let mut findings = Vec::new();
    for file in &files {
        rules::wallclock::check(file, &mut findings);
        rules::hash_iter::check(file, &mut findings);
        rules::ambient::check(file, &mut findings);
        rules::unwrap_panic::check(file, &mut findings);
        rules::casts::check(file, &mut findings);
        rules::allow_inventory::check(file, &mut findings);
        rules::doc_coverage::check(file, &mut findings);
        rules::metric_names::check(file, &mut findings);
        rules::kernel_alloc::check(file, &mut findings);
    }
    rules::table1::check(root, &files, &mut findings);
    rules::scenario_files::check(root, &mut findings);

    let analysis = Analysis::build(root, &files);
    rules::memo_purity::check(&analysis, &mut findings);
    rules::seed_streams::check(&files, &mut findings);
    rules::hot_path::check(&analysis, &mut findings);

    let by_path: std::collections::BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    findings.retain(|f| {
        by_path
            .get(f.file.as_str())
            .is_none_or(|src| !src.is_suppressed(f.line, f.rule))
    });
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    findings.dedup();
    findings
}
