//! Per-function effect summaries, propagated over the call graph.
//!
//! Four effect bits are tracked:
//!
//! * [`ALLOC`] — heap allocation (collection constructors, `vec!`/
//!   `format!`, `.collect()`, `.to_string()`-family calls). A site
//!   carrying the `IOTSE-K10` `// lint: <reason>` justification marker is
//!   *not* counted: the justification asserts the allocation is amortized
//!   or intentional, and `IOTSE-H13` honors the same convention.
//! * [`RNG`] — draws pseudo-randomness. Every function defined in a
//!   `src/rng.rs` file is an RNG primitive by fiat; the bit then flows to
//!   callers through the graph.
//! * [`AMBIENT`] — reads or writes ambient state: `static mut` items,
//!   interior-mutability writes (`borrow_mut`/`set`/`store`/…),
//!   `std::env`, `thread_local!`.
//! * [`CLOCK`] — touches a wall-clock type (`Instant`, `SystemTime`).
//!
//! Local bits come from token patterns; [`Effects::analyze`] then closes
//! them transitively (callee bits flow to callers) to a fixpoint. The
//! graph is an over-approximation, so a *clear* bit is a proof — the
//! function provably cannot reach that effect through workspace code —
//! while a *set* bit is only an accusation, which the rules turn into
//! findings with a concrete witness path via [`Effects::witness`].

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::scan::FileKind;
use crate::symbols::{FnId, Symbols};

/// Heap allocation.
pub const ALLOC: u8 = 1;
/// Pseudo-random draw.
pub const RNG: u8 = 2;
/// Ambient state read/write.
pub const AMBIENT: u8 = 4;
/// Wall-clock access.
pub const CLOCK: u8 = 8;

/// Human name of a single effect bit.
#[must_use]
pub fn bit_name(bit: u8) -> &'static str {
    match bit {
        ALLOC => "allocates",
        RNG => "draws RNG",
        AMBIENT => "touches ambient state",
        CLOCK => "reads the wall clock",
        _ => "unknown effect",
    }
}

/// One locally-detected effect source inside a function body.
#[derive(Debug, Clone)]
pub struct LocalEffect {
    /// Which effect.
    pub bit: u8,
    /// 1-based source line.
    pub line: usize,
    /// What matched (`Vec::new(..)`, `` `static mut SLOT` ``, …).
    pub what: String,
}

/// The effect analysis result, indexed by [`FnId`].
#[derive(Debug)]
pub struct Effects {
    /// Locally-detected sources, in body order.
    pub local: Vec<Vec<LocalEffect>>,
    /// Transitive bit union (local ∪ all reachable callees).
    pub total: Vec<u8>,
}

/// Collection types whose `X::new()` / `X::with_capacity()` allocate (or
/// whose first push will).
const ALLOC_TYPES: &[&str] = &[
    "Vec",
    "String",
    "Box",
    "Rc",
    "Arc",
    "BTreeMap",
    "BTreeSet",
    "VecDeque",
    "BinaryHeap",
    "HashMap",
    "HashSet",
];

/// Allocating method names (matched as `.name(`).
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "collect"];

/// Allocating macro names (matched as `name!`).
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Interior-mutability write methods (matched as `.name(`).
const AMBIENT_METHODS: &[&str] = &[
    "borrow_mut",
    "set",
    "store",
    "fetch_add",
    "fetch_sub",
    "compare_exchange",
    "lock",
];

/// The K10 justification marker, honored for ALLOC sites.
const JUSTIFY: &str = "lint:";

impl Effects {
    /// Detects local effects and closes them over the call graph.
    #[must_use]
    pub fn analyze(syms: &Symbols<'_>, graph: &CallGraph) -> Effects {
        let static_muts = static_mut_names(syms);
        let mut local = Vec::with_capacity(syms.fns.len());
        let mut total = Vec::with_capacity(syms.fns.len());
        for id in 0..syms.fns.len() {
            let found = local_effects(syms, id, &static_muts);
            total.push(found.iter().fold(0u8, |b, e| b | e.bit));
            local.push(found);
        }
        // Fixpoint: callee bits flow to callers. The graph is small and
        // mostly acyclic, so a handful of sweeps converge.
        loop {
            let mut changed = false;
            for id in 0..total.len() {
                let mut bits = total[id];
                for site in graph.out(id) {
                    bits |= total[site.callee];
                }
                if bits != total[id] {
                    total[id] = bits;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Effects { local, total }
    }

    /// Shortest call path (BFS, body order) from `root` to a function with
    /// a *local* `bit` effect. Returns the path (starting at `root`) and
    /// the terminal local effect. `None` when `root` cannot reach the bit
    /// — i.e. when `total[root] & bit == 0`.
    #[must_use]
    pub fn witness(
        &self,
        graph: &CallGraph,
        root: FnId,
        bit: u8,
    ) -> Option<(Vec<FnId>, LocalEffect)> {
        if self.total[root] & bit == 0 {
            return None;
        }
        let mut parent: Vec<Option<FnId>> = vec![None; self.total.len()];
        let mut queue = std::collections::VecDeque::new();
        let mut visited = vec![false; self.total.len()];
        visited[root] = true;
        queue.push_back(root);
        while let Some(id) = queue.pop_front() {
            if let Some(e) = self.local[id].iter().find(|e| e.bit == bit) {
                let mut path = vec![id];
                let mut cur = id;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some((path, e.clone()));
            }
            for site in graph.out(id) {
                if self.total[site.callee] & bit != 0 && !visited[site.callee] {
                    visited[site.callee] = true;
                    parent[site.callee] = Some(id);
                    queue.push_back(site.callee);
                }
            }
        }
        None
    }
}

/// Names of every `static mut` item in library code.
fn static_mut_names(syms: &Symbols<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for unit in &syms.units {
        if unit.src.kind != FileKind::Lib {
            continue;
        }
        for line in &unit.src.code {
            if let Some(at) = line.find("static mut ") {
                let rest = &line[at + "static mut ".len()..];
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// Detects the local effects of one function body.
fn local_effects(syms: &Symbols<'_>, id: FnId, static_muts: &BTreeSet<String>) -> Vec<LocalEffect> {
    let info = &syms.fns[id];
    let src = syms.src(id);
    let item = syms.item(id);
    let mut out = Vec::new();
    // RNG primitives: everything defined in an rng core file.
    if src.rel_path.ends_with("src/rng.rs") {
        out.push(LocalEffect {
            bit: RNG,
            line: item.line,
            what: "RNG core primitive".to_string(),
        });
    }
    let justified = |line: usize| {
        let check = |idx: usize| src.comments.get(idx).is_some_and(|c| c.contains(JUSTIFY));
        check(line - 1) || (line >= 2 && check(line - 2))
    };
    let body = syms.units[info.file].parsed.body_tokens(item);
    for (k, tok) in body.iter().enumerate() {
        if !tok.ident {
            continue;
        }
        let next = |n: usize| body.get(k + n).map_or("", |t| t.text.as_str());
        let prev = |n: usize| {
            k.checked_sub(n)
                .and_then(|j| body.get(j))
                .map_or("", |t| t.text.as_str())
        };
        let name = tok.text.as_str();
        let mut push = |bit: u8, what: String| {
            out.push(LocalEffect {
                bit,
                line: tok.line,
                what,
            });
        };
        // ALLOC — `X::new(` / `X::with_capacity(` on a collection type.
        if ALLOC_TYPES.contains(&name) && next(1) == ":" && next(2) == ":" {
            let mut m = 3;
            // Step over a turbofish: `Vec::<u8>::new(`.
            if next(m) == "<" {
                let mut depth = 0usize;
                loop {
                    match next(m) {
                        "<" => depth += 1,
                        ">" => {
                            depth -= 1;
                            if depth == 0 {
                                m += 1;
                                break;
                            }
                        }
                        "" => break,
                        _ => {}
                    }
                    m += 1;
                }
                if next(m) == ":" && next(m + 1) == ":" {
                    m += 2;
                }
            }
            // No paren check: `or_insert_with(BTreeMap::new)` passes the
            // constructor as a value and still allocates when invoked.
            let assoc = next(m);
            if matches!(assoc, "new" | "with_capacity" | "from") && !justified(tok.line) {
                push(ALLOC, format!("{name}::{assoc}(..)"));
            }
        }
        // ALLOC — allocating macros and methods.
        if ALLOC_MACROS.contains(&name) && next(1) == "!" && !justified(tok.line) {
            push(ALLOC, format!("{name}!(..)"));
        }
        if ALLOC_METHODS.contains(&name) && prev(1) == "." && next(1) == "(" && !justified(tok.line)
        {
            push(ALLOC, format!(".{name}(..)"));
        }
        // AMBIENT — static muts, interior-mutability writes, env access.
        if static_muts.contains(name) && next(1) != "!" {
            push(AMBIENT, format!("`static mut {name}`"));
        }
        if AMBIENT_METHODS.contains(&name) && prev(1) == "." && next(1) == "(" {
            push(AMBIENT, format!(".{name}(..)"));
        }
        if name == "env" && prev(1) != "." && next(1) == ":" && next(2) == ":" {
            push(AMBIENT, "std::env access".to_string());
        }
        if name == "thread_local" && next(1) == "!" {
            push(AMBIENT, "thread_local!(..)".to_string());
        }
        // CLOCK — wall-clock types.
        if matches!(name, "Instant" | "SystemTime") {
            push(CLOCK, format!("`{name}`"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;
    use std::path::Path;

    fn files(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        srcs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect()
    }

    fn id_of(syms: &Symbols<'_>, name: &str) -> FnId {
        syms.fns
            .iter()
            .position(|f| f.name == name)
            .expect("fn in table")
    }

    #[test]
    fn local_alloc_patterns_are_detected() {
        let files = files(&[(
            "crates/core/src/x.rs",
            "fn a() {\n    let v: Vec<u8> = Vec::new();\n    let s = format!(\"{}\", 1);\n    let t = s.to_string();\n    drop((v, t));\n}\n",
        )]);
        let syms = Symbols::build(Path::new("/nonexistent"), &files);
        let g = CallGraph::build(&syms);
        let eff = Effects::analyze(&syms, &g);
        let a = id_of(&syms, "a");
        assert_eq!(eff.local[a].len(), 3);
        assert_eq!(eff.total[a], ALLOC);
    }

    #[test]
    fn justified_allocations_do_not_count() {
        let files = files(&[(
            "crates/core/src/x.rs",
            "fn a() {\n    // lint: one-time constructor\n    let v: Vec<u8> = Vec::new();\n    drop(v);\n}\n",
        )]);
        let syms = Symbols::build(Path::new("/nonexistent"), &files);
        let g = CallGraph::build(&syms);
        let eff = Effects::analyze(&syms, &g);
        assert_eq!(eff.total[id_of(&syms, "a")], 0);
    }

    #[test]
    fn rng_is_intrinsic_to_the_rng_core_and_propagates() {
        let files = files(&[
            (
                "crates/sim/src/rng.rs",
                "pub struct SimRng;\nimpl SimRng {\n    pub fn gen(&mut self) -> u64 { 4 }\n}\n",
            ),
            (
                "crates/core/src/x.rs",
                "fn direct(r: &mut SimRng) -> u64 {\n    r.gen()\n}\nfn indirect(r: &mut SimRng) -> u64 {\n    direct(r)\n}\nfn clean() -> u64 { 7 }\n",
            ),
        ]);
        let syms = Symbols::build(Path::new("/nonexistent"), &files);
        let g = CallGraph::build(&syms);
        let eff = Effects::analyze(&syms, &g);
        assert_eq!(eff.total[id_of(&syms, "indirect")] & RNG, RNG);
        assert_eq!(eff.total[id_of(&syms, "clean")], 0);
        let (path, end) = eff
            .witness(&g, id_of(&syms, "indirect"), RNG)
            .expect("witness");
        let names: Vec<String> = path.iter().map(|&p| syms.display(p)).collect();
        assert_eq!(names, vec!["indirect", "direct", "SimRng::gen"]);
        assert_eq!(end.what, "RNG core primitive");
    }

    #[test]
    fn static_mut_and_interior_mutability_are_ambient() {
        let files = files(&[(
            "crates/core/src/x.rs",
            "static mut SLOT: u64 = 0;\nfn touch() -> u64 {\n    unsafe { SLOT }\n}\nfn cell(c: &std::cell::Cell<u8>) {\n    c.set(1);\n}\n",
        )]);
        let syms = Symbols::build(Path::new("/nonexistent"), &files);
        let g = CallGraph::build(&syms);
        let eff = Effects::analyze(&syms, &g);
        assert_eq!(eff.total[id_of(&syms, "touch")], AMBIENT);
        assert_eq!(eff.total[id_of(&syms, "cell")], AMBIENT);
    }

    #[test]
    fn clock_types_are_detected() {
        let files = files(&[(
            "crates/core/src/x.rs",
            "fn t() {\n    let _ = std::time::Instant::now();\n}\n",
        )]);
        let syms = Symbols::build(Path::new("/nonexistent"), &files);
        let g = CallGraph::build(&syms);
        let eff = Effects::analyze(&syms, &g);
        assert_eq!(eff.total[id_of(&syms, "t")], CLOCK);
    }

    #[test]
    fn cycles_converge() {
        let files = files(&[(
            "crates/core/src/x.rs",
            "fn a(n: u8) {\n    if n > 0 {\n        b(n - 1);\n    }\n}\nfn b(n: u8) {\n    let _ = format!(\"{n}\");\n    a(n);\n}\n",
        )]);
        let syms = Symbols::build(Path::new("/nonexistent"), &files);
        let g = CallGraph::build(&syms);
        let eff = Effects::analyze(&syms, &g);
        assert_eq!(eff.total[id_of(&syms, "a")], ALLOC);
        assert_eq!(eff.total[id_of(&syms, "b")], ALLOC);
    }

    #[test]
    fn turbofish_constructor_is_still_an_alloc() {
        let files = files(&[(
            "crates/core/src/x.rs",
            "fn a() {\n    let v = Vec::<u8>::with_capacity(4);\n    drop(v);\n}\n",
        )]);
        let syms = Symbols::build(Path::new("/nonexistent"), &files);
        let g = CallGraph::build(&syms);
        let eff = Effects::analyze(&syms, &g);
        assert_eq!(eff.total[id_of(&syms, "a")], ALLOC);
    }
}
