//! A lightweight Rust *item* parser over the lexical views.
//!
//! PR 2's rules were per-line pattern matches; the call-graph rules
//! (`IOTSE-M11`/`S12`/`H13`) need to know *which function* a line belongs
//! to, what that function's signature says, and how modules nest. This
//! module recovers exactly that — and nothing more — from the
//! comment/string-blanked `code` view: items (`fn`, `impl`, `mod`,
//! `struct`, `enum`, `trait`, `const`, …) with their visibility, nesting
//! and 1-based line spans. Function *bodies* are kept as flat token
//! streams; no expression grammar, no type checking, no `syn` (the build
//! environment has no registry access).
//!
//! The parser is deliberately forgiving: anything it does not recognize is
//! skipped token by token, so a new syntax never aborts the scan — it only
//! degrades the analysis toward "no information", which every downstream
//! rule treats conservatively.

use crate::scan::SourceFile;

/// One lexical token of the `code` view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Identifier, keyword or number text — or a one-character punct.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// `true` for identifier-like tokens (including numbers).
    pub ident: bool,
}

impl Token {
    fn punct(c: char, line: usize) -> Token {
        Token {
            text: c.to_string(),
            line,
            ident: false,
        }
    }
}

/// Splits the blanked `code` view into identifier and punct tokens.
/// String/char literals and comments are already spaces, so they can never
/// produce a token.
#[must_use]
pub fn tokenize(file: &SourceFile) -> Vec<Token> {
    let mut toks = Vec::new();
    for (i, line) in file.code.iter().enumerate() {
        let lineno = i + 1;
        let b = line.as_bytes();
        let mut j = 0;
        while j < b.len() {
            let c = b[j];
            if c.is_ascii_whitespace() {
                j += 1;
            } else if c.is_ascii_alphanumeric() || c == b'_' {
                let start = j;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                toks.push(Token {
                    text: line[start..j].to_string(),
                    line: lineno,
                    ident: true,
                });
            } else {
                toks.push(Token::punct(c as char, lineno));
                j += 1;
            }
        }
    }
    toks
}

/// Item visibility, as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// Plain `pub`.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — restricted, not public API.
    Restricted,
    /// No `pub` at all.
    Private,
}

/// An `impl` block (or a `trait` declaration, which hosts default bodies).
#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// Base name of the implementing type (`StepCounter` for
    /// `impl Workload for StepCounter`), or the trait's own name for a
    /// `trait` declaration.
    pub ty: String,
    /// Base name of the implemented trait, if this is a trait impl.
    pub trait_name: Option<String>,
    /// 1-based line of the `impl`/`trait` keyword.
    pub line: usize,
}

/// A parsed function with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Signature text (`fn` through the byte before the body `{`),
    /// single-spaced.
    pub sig: String,
    /// Body token span: indices into the file's token stream, inclusive of
    /// both braces.
    pub body: (usize, usize),
    /// 1-based inclusive line span of the body.
    pub body_lines: (usize, usize),
    /// Enclosing `impl`/`trait` block, as an index into
    /// [`ParsedFile::impls`].
    pub owner: Option<usize>,
    /// Visibility as written.
    pub vis: Vis,
    /// `true` when every enclosing module is plain `pub` (file scope
    /// counts as public) and the item is not nested in another body.
    pub public_path: bool,
    /// `true` when the item sits inside a `#[cfg(test)]` module.
    pub is_test: bool,
    /// `true` when a `// iotse-lint: hot-path` marker sits directly above
    /// the item (above its attributes/doc comments).
    pub hot_path: bool,
}

/// A non-function item (for doc coverage and field typing).
#[derive(Debug, Clone)]
pub struct ItemDecl {
    /// Item keyword: `struct`, `enum`, `trait`, `const`, `static`, `type`,
    /// `mod`, `union`.
    pub kind: &'static str,
    /// Item name.
    pub name: String,
    /// 1-based line of the item keyword.
    pub line: usize,
    /// Visibility as written.
    pub vis: Vis,
    /// See [`FnItem::public_path`].
    pub public_path: bool,
    /// `true` when inside a `#[cfg(test)]` module.
    pub is_test: bool,
    /// `true` for an external `mod name;` declaration (documented by the
    /// target file's own `//!` header).
    pub external_mod: bool,
}

/// A named struct field with its type text (`seeds: SeedTree`).
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// Owning struct's base name.
    pub owner: String,
    /// Field name.
    pub name: String,
    /// Type text, single-spaced.
    pub ty: String,
}

/// Everything the item parser recovers from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// The full token stream (function bodies index into it).
    pub tokens: Vec<Token>,
    /// All functions with bodies, in source order.
    pub fns: Vec<FnItem>,
    /// All `impl` blocks and `trait` declarations.
    pub impls: Vec<ImplBlock>,
    /// Non-function items.
    pub items: Vec<ItemDecl>,
    /// Named struct fields.
    pub fields: Vec<FieldDecl>,
}

impl ParsedFile {
    /// Parses one scanned file.
    #[must_use]
    pub fn parse(file: &SourceFile) -> ParsedFile {
        let tokens = tokenize(file);
        let mut fns = Vec::new();
        let mut impls = Vec::new();
        let mut items = Vec::new();
        let mut fields = Vec::new();
        let mut p = Parser {
            file,
            toks: &tokens,
            i: 0,
            fns: &mut fns,
            impls: &mut impls,
            items: &mut items,
            fields: &mut fields,
        };
        p.items_until_close(None, true, false);
        ParsedFile {
            tokens,
            fns,
            impls,
            items,
            fields,
        }
    }

    /// The tokens of `f`'s body, braces included.
    #[must_use]
    pub fn body_tokens(&self, f: &FnItem) -> &[Token] {
        &self.tokens[f.body.0..=f.body.1]
    }
}

/// Marker comment (above an item) that enrolls it in `IOTSE-H13`.
pub const HOT_PATH_MARKER: &str = "iotse-lint: hot-path";

struct Parser<'a> {
    file: &'a SourceFile,
    toks: &'a [Token],
    i: usize,
    fns: &'a mut Vec<FnItem>,
    impls: &'a mut Vec<ImplBlock>,
    items: &'a mut Vec<ItemDecl>,
    fields: &'a mut Vec<FieldDecl>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.i)
    }

    fn peek_text(&self) -> &str {
        self.toks.get(self.i).map_or("", |t| t.text.as_str())
    }

    fn peek2_text(&self) -> &str {
        self.toks.get(self.i + 1).map_or("", |t| t.text.as_str())
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    /// Consumes a balanced `open`…`close` group (current token must be
    /// `open`). Returns the index just past the closing token.
    fn consume_balanced(&mut self, open: char, close: char) {
        let (open, close) = (open.to_string(), close.to_string());
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Consumes a balanced generic parameter list starting at `<`. A `>`
    /// preceded by `-` (the arrow of an `Fn() -> T` bound) does not close;
    /// brace groups (const-generic expressions) are skipped whole.
    fn consume_generics(&mut self) {
        let mut depth = 0usize;
        let mut prev_minus = false;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" if !prev_minus => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                "{" => {
                    self.consume_balanced('{', '}');
                    prev_minus = false;
                    continue;
                }
                _ => {}
            }
            prev_minus = t.text == "-";
            self.bump();
        }
    }

    /// Skips to the `;` that terminates a `use`/`const`/`static`/`type`
    /// item, stepping over any balanced brace group in an initializer.
    fn consume_to_semi(&mut self) {
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                ";" => {
                    self.bump();
                    return;
                }
                "{" => self.consume_balanced('{', '}'),
                "(" => self.consume_balanced('(', ')'),
                "[" => self.consume_balanced('[', ']'),
                _ => self.bump(),
            }
        }
    }

    /// Skips one attribute (`#[…]` or `#![…]`); current token is `#`.
    fn consume_attribute(&mut self) {
        self.bump();
        if self.peek_text() == "!" {
            self.bump();
        }
        if self.peek_text() == "[" {
            self.consume_balanced('[', ']');
        }
    }

    fn parse_vis(&mut self) -> Vis {
        if self.peek_text() != "pub" {
            return Vis::Private;
        }
        self.bump();
        if self.peek_text() == "(" {
            self.consume_balanced('(', ')');
            return Vis::Restricted;
        }
        Vis::Pub
    }

    /// `true` if the comment block directly above `line` (walking over
    /// attributes and doc comments) carries the hot-path marker.
    fn hot_marker_above(&self, line: usize) -> bool {
        let mut idx = line.saturating_sub(1); // 0-based index of the item line
        while idx > 0 {
            idx -= 1;
            let comment = self.file.comments[idx].trim();
            if comment.contains(HOT_PATH_MARKER) {
                return true;
            }
            let code = self.file.code[idx].trim();
            let attr_ish = code.starts_with("#[")
                || code.ends_with(")]")
                || code.ends_with(']')
                || (code.is_empty() && !comment.is_empty());
            if !attr_ish {
                return false;
            }
        }
        false
    }

    /// Parses items until the matching `}` of the enclosing scope (or EOF).
    /// `mods_public` tracks whether every enclosing module is plain `pub`;
    /// `in_body` is `true` inside function bodies (items there are never
    /// public API).
    fn items_until_close(&mut self, owner: Option<usize>, mods_public: bool, in_body: bool) {
        while let Some(t) = self.peek() {
            if t.text == "}" {
                self.bump();
                return;
            }
            if t.text == "#" {
                self.consume_attribute();
                continue;
            }
            let vis = self.parse_vis();
            // Modifier keywords that may precede `fn`.
            let mut k = self.i;
            while matches!(
                self.toks.get(k).map(|t| t.text.as_str()),
                Some("const" | "async" | "unsafe" | "extern" | "default")
            ) {
                // `const`/`static`/`type` items are handled below unless
                // they are followed by `fn`-introducing tokens.
                if self.toks[k].text == "const"
                    && !matches!(
                        self.toks.get(k + 1).map(|t| t.text.as_str()),
                        Some("fn" | "async" | "unsafe" | "extern")
                    )
                {
                    break;
                }
                k += 1;
            }
            let kw = self.toks.get(k).map(|t| t.text.clone()).unwrap_or_default();
            match kw.as_str() {
                "fn" => {
                    self.i = k;
                    self.parse_fn(owner, vis, mods_public && !in_body);
                }
                "impl" => {
                    self.i = k;
                    self.parse_impl(mods_public, in_body);
                }
                "trait" => {
                    self.i = k;
                    self.parse_trait(vis, mods_public, in_body);
                }
                "mod" => {
                    self.i = k;
                    self.parse_mod(vis, mods_public, in_body);
                }
                "struct" | "enum" | "union" => {
                    self.i = k;
                    self.parse_adt(vis, mods_public, in_body);
                }
                "const" | "static" | "type" => {
                    self.i = k;
                    self.parse_simple_decl(vis, mods_public, in_body);
                }
                "use" | "macro_rules" => {
                    self.i = k;
                    if kw == "macro_rules" {
                        // `macro_rules! name { … }`
                        self.bump(); // macro_rules
                        self.bump(); // !
                        self.bump(); // name
                        if self.peek_text() == "{" {
                            self.consume_balanced('{', '}');
                        } else {
                            self.consume_to_semi();
                        }
                    } else {
                        self.consume_to_semi();
                    }
                }
                _ => {
                    // Not an item head: in bodies this is ordinary code;
                    // at item level it is recovery. Either way, step over
                    // balanced groups so we never enter an expression brace
                    // thinking it is a module.
                    match self.peek_text() {
                        "{" => self.consume_balanced('{', '}'),
                        "(" => self.consume_balanced('(', ')'),
                        "[" => self.consume_balanced('[', ']'),
                        _ => self.bump(),
                    }
                }
            }
        }
    }

    fn parse_fn(&mut self, owner: Option<usize>, vis: Vis, public_path: bool) {
        let fn_line = self.toks[self.i].line;
        let sig_start = self.i;
        self.bump(); // fn
        let Some(name_tok) = self.peek() else { return };
        if !name_tok.ident {
            return;
        }
        let name = name_tok.text.clone();
        self.bump();
        if self.peek_text() == "<" {
            self.consume_generics();
        }
        if self.peek_text() == "(" {
            self.consume_balanced('(', ')');
        }
        // Return type / where clause: run to the body `{` or a `;`.
        loop {
            match self.peek_text() {
                "" | ";" | "{" => break,
                "<" => self.consume_generics(),
                "(" => self.consume_balanced('(', ')'),
                "[" => self.consume_balanced('[', ']'),
                _ => self.bump(),
            }
        }
        let sig = join_tokens(&self.toks[sig_start..self.i]);
        if self.peek_text() == ";" {
            self.bump(); // trait method declaration without a body
            return;
        }
        if self.peek_text() != "{" {
            return;
        }
        let body_start = self.i;
        self.consume_balanced('{', '}');
        let body_end = self.i - 1;
        let body_lines = (self.toks[body_start].line, self.toks[body_end].line);
        self.fns.push(FnItem {
            hot_path: self.hot_marker_above(fn_line),
            name,
            line: fn_line,
            sig,
            body: (body_start, body_end),
            body_lines,
            owner,
            vis,
            public_path,
            is_test: self.file.in_test_span(fn_line),
        });
        // Items nested inside the body (local fns, helper structs) are
        // parsed in a second bounded pass so they resolve as call targets
        // while staying off the public API surface.
        let save = self.i;
        self.i = body_start + 1;
        let end = body_end;
        self.nested_items(owner, end);
        self.i = save;
    }

    /// Scans a body span for nested `fn` items only (no full recursion —
    /// expression braces make deeper structure ambiguous, and local `fn`s
    /// are the only nested items the call graph needs).
    fn nested_items(&mut self, owner: Option<usize>, end: usize) {
        while self.i < end {
            if self.peek_text() == "fn" {
                // Exclude `Fn`-trait paths: previous token must not be a
                // path separator or `dyn`/`impl`.
                let prev = self.toks[..self.i]
                    .last()
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                if prev != ":" && prev != "dyn" && prev != "impl" && prev != "&" {
                    let save_len = self.fns.len();
                    self.parse_fn(owner, Vis::Private, false);
                    if self.fns.len() > save_len {
                        continue;
                    }
                }
            }
            self.bump();
        }
    }

    fn parse_impl(&mut self, mods_public: bool, in_body: bool) {
        let line = self.toks[self.i].line;
        self.bump(); // impl
        if self.peek_text() == "<" {
            self.consume_generics();
        }
        // Header tokens up to `{`, split on a top-level `for`.
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut seen_for = false;
        loop {
            match self.peek_text() {
                "" | "{" => break,
                "where" => {
                    // Skip the where clause entirely.
                    while !matches!(self.peek_text(), "" | "{") {
                        if self.peek_text() == "<" {
                            self.consume_generics();
                        } else {
                            self.bump();
                        }
                    }
                    break;
                }
                "for" => {
                    seen_for = true;
                    self.bump();
                }
                "<" => self.consume_generics(),
                "(" => self.consume_balanced('(', ')'),
                t => {
                    let dst = if seen_for {
                        &mut after_for
                    } else {
                        &mut before_for
                    };
                    dst.push(t.to_string());
                    self.bump();
                }
            }
        }
        let (trait_name, ty) = if seen_for {
            (
                last_path_segment(&before_for),
                last_path_segment(&after_for),
            )
        } else {
            (None, last_path_segment(&before_for))
        };
        let idx = self.impls.len();
        self.impls.push(ImplBlock {
            ty: ty.unwrap_or_default(),
            trait_name,
            line,
        });
        if self.peek_text() == "{" {
            self.bump();
            self.items_until_close(Some(idx), mods_public, in_body);
        }
    }

    fn parse_trait(&mut self, vis: Vis, mods_public: bool, in_body: bool) {
        let line = self.toks[self.i].line;
        self.bump(); // trait
        let name = self.peek().filter(|t| t.ident).map(|t| t.text.clone());
        let Some(name) = name else { return };
        self.bump();
        self.items.push(ItemDecl {
            kind: "trait",
            name: name.clone(),
            line,
            vis,
            public_path: mods_public && !in_body,
            is_test: self.file.in_test_span(line),
            external_mod: false,
        });
        while !matches!(self.peek_text(), "" | "{" | ";") {
            if self.peek_text() == "<" {
                self.consume_generics();
            } else if self.peek_text() == "(" {
                self.consume_balanced('(', ')');
            } else {
                self.bump();
            }
        }
        if self.peek_text() == "{" {
            let idx = self.impls.len();
            self.impls.push(ImplBlock {
                ty: name,
                trait_name: None,
                line,
            });
            self.bump();
            self.items_until_close(Some(idx), mods_public, in_body);
        } else if self.peek_text() == ";" {
            self.bump();
        }
    }

    fn parse_mod(&mut self, vis: Vis, mods_public: bool, in_body: bool) {
        let line = self.toks[self.i].line;
        self.bump(); // mod
        let name = self.peek().filter(|t| t.ident).map(|t| t.text.clone());
        let Some(name) = name else { return };
        self.bump();
        let external = self.peek_text() == ";";
        self.items.push(ItemDecl {
            kind: "mod",
            name,
            line,
            vis,
            public_path: mods_public && !in_body,
            is_test: self.file.in_test_span(line),
            external_mod: external,
        });
        if external {
            self.bump();
        } else if self.peek_text() == "{" {
            self.bump();
            self.items_until_close(None, mods_public && vis == Vis::Pub, in_body);
        }
    }

    fn parse_adt(&mut self, vis: Vis, mods_public: bool, in_body: bool) {
        let kind: &'static str = match self.peek_text() {
            "struct" => "struct",
            "enum" => "enum",
            _ => "union",
        };
        let line = self.toks[self.i].line;
        self.bump();
        let name = self.peek().filter(|t| t.ident).map(|t| t.text.clone());
        let Some(name) = name else { return };
        self.bump();
        self.items.push(ItemDecl {
            kind,
            name: name.clone(),
            line,
            vis,
            public_path: mods_public && !in_body,
            is_test: self.file.in_test_span(line),
            external_mod: false,
        });
        if self.peek_text() == "<" {
            self.consume_generics();
        }
        while !matches!(self.peek_text(), "" | "{" | "(" | ";") {
            if self.peek_text() == "<" {
                self.consume_generics();
            } else {
                self.bump();
            }
        }
        match self.peek_text() {
            "{" => {
                if kind == "struct" {
                    self.parse_struct_fields(&name);
                } else {
                    self.consume_balanced('{', '}');
                }
            }
            "(" => {
                self.consume_balanced('(', ')');
                if self.peek_text() == ";" {
                    self.bump();
                }
            }
            ";" => self.bump(),
            _ => {}
        }
    }

    /// Records `name: Type` fields of a struct body; current token is `{`.
    fn parse_struct_fields(&mut self, owner: &str) {
        self.bump(); // {
        loop {
            match self.peek_text() {
                "" => return,
                "}" => {
                    self.bump();
                    return;
                }
                "#" => {
                    self.consume_attribute();
                    continue;
                }
                _ => {}
            }
            let _ = self.parse_vis();
            let (name_ok, field_name) = match self.peek() {
                Some(t) if t.ident => (true, t.text.clone()),
                _ => (false, String::new()),
            };
            if !name_ok || self.peek2_text() != ":" {
                // Recovery: skip one token.
                self.bump();
                continue;
            }
            self.bump(); // name
            self.bump(); // :
            let ty_start = self.i;
            // Type runs to the `,` or `}` at this level.
            loop {
                match self.peek_text() {
                    "" | "," | "}" => break,
                    "<" => self.consume_generics(),
                    "(" => self.consume_balanced('(', ')'),
                    "[" => self.consume_balanced('[', ']'),
                    "{" => self.consume_balanced('{', '}'),
                    _ => self.bump(),
                }
            }
            self.fields.push(FieldDecl {
                owner: owner.to_string(),
                name: field_name,
                ty: join_tokens(&self.toks[ty_start..self.i]),
            });
            if self.peek_text() == "," {
                self.bump();
            }
        }
    }

    fn parse_simple_decl(&mut self, vis: Vis, mods_public: bool, in_body: bool) {
        let kind: &'static str = match self.peek_text() {
            "const" => "const",
            "static" => "static",
            _ => "type",
        };
        let line = self.toks[self.i].line;
        self.bump();
        if self.peek_text() == "mut" {
            self.bump();
        }
        let Some(name) = self.peek().filter(|t| t.ident).map(|t| t.text.clone()) else {
            return;
        };
        if name == "_" {
            self.consume_to_semi();
            return;
        }
        self.items.push(ItemDecl {
            kind,
            name,
            line,
            vis,
            public_path: mods_public && !in_body,
            is_test: self.file.in_test_span(line),
            external_mod: false,
        });
        self.consume_to_semi();
    }
}

/// Joins tokens back into readable single-spaced text (`fn new ( ) -> Self`
/// becomes `fn new() -> Self`-ish; exact spacing is not load-bearing).
#[must_use]
pub fn join_tokens(toks: &[Token]) -> String {
    let mut out = String::new();
    for t in toks {
        let glue = matches!(
            t.text.as_str(),
            "(" | ")" | "[" | "]" | "<" | ">" | "," | ";" | ":" | "'" | "!" | "?"
        ) || out.ends_with(['(', '[', '<', '&', ':', '\''])
            || out.is_empty();
        if !glue {
            out.push(' ');
        }
        out.push_str(&t.text);
    }
    out
}

/// The last `::`-separated path segment of a token run (`fmt Display` from
/// `fmt :: Display`), ignoring everything after the path ends.
fn last_path_segment(toks: &[String]) -> Option<String> {
    let mut last = None;
    for t in toks {
        if t == ":" || t == "&" || t == "mut" || t == "dyn" {
            continue;
        }
        if t.chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            last = Some(t.clone());
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse(&SourceFile::parse("crates/core/src/x.rs", src))
    }

    #[test]
    fn functions_and_bodies_are_found() {
        let p = parse("pub fn a(x: u8) -> u8 {\n    helper(x)\n}\nfn helper(x: u8) -> u8 { x }\n");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "a");
        assert_eq!(p.fns[0].vis, Vis::Pub);
        assert_eq!(p.fns[0].body_lines, (1, 3));
        assert_eq!(p.fns[1].name, "helper");
        assert_eq!(p.fns[1].vis, Vis::Private);
        assert!(p.fns[0].sig.contains("fn a"));
    }

    #[test]
    fn impl_blocks_attribute_methods() {
        let p = parse(
            "struct S;\nimpl S {\n    pub fn new() -> S { S }\n}\nimpl Workload for S {\n    fn compute(&mut self) {}\n}\n",
        );
        assert_eq!(p.impls.len(), 2);
        assert_eq!(p.impls[0].ty, "S");
        assert_eq!(p.impls[0].trait_name, None);
        assert_eq!(p.impls[1].ty, "S");
        assert_eq!(p.impls[1].trait_name.as_deref(), Some("Workload"));
        let compute = p.fns.iter().find(|f| f.name == "compute").expect("compute");
        assert_eq!(compute.owner, Some(1));
    }

    #[test]
    fn generics_and_where_clauses_do_not_confuse_bodies() {
        let p = parse(
            "pub fn map<F: Fn(u8) -> u8>(f: F) -> Vec<u8>\nwhere\n    F: Copy,\n{\n    vec![f(1)]\n}\n",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "map");
        assert_eq!(p.fns[0].body_lines, (4, 6));
    }

    #[test]
    fn restricted_visibility_is_tracked() {
        let p = parse("pub(crate) fn a() {}\npub(super) struct B;\npub fn c() {}\n");
        assert_eq!(p.fns[0].vis, Vis::Restricted);
        assert_eq!(p.items[0].vis, Vis::Restricted);
        assert_eq!(p.fns[1].vis, Vis::Pub);
    }

    #[test]
    fn private_mod_breaks_the_public_path() {
        let p = parse(
            "mod inner {\n    pub fn hidden() {}\n}\npub mod outer {\n    pub fn shown() {}\n}\n",
        );
        let hidden = p.fns.iter().find(|f| f.name == "hidden").expect("hidden");
        assert!(!hidden.public_path);
        let shown = p.fns.iter().find(|f| f.name == "shown").expect("shown");
        assert!(shown.public_path);
    }

    #[test]
    fn struct_fields_record_types() {
        let p = parse("pub struct G {\n    seeds: SeedTree,\n    pub n: Vec<u8>,\n}\n");
        assert_eq!(p.fields.len(), 2);
        assert_eq!(p.fields[0].owner, "G");
        assert_eq!(p.fields[0].name, "seeds");
        assert_eq!(p.fields[0].ty, "SeedTree");
        assert!(p.fields[1].ty.contains("Vec"));
    }

    #[test]
    fn hot_path_marker_is_detected_above_attributes() {
        let src = "// iotse-lint: hot-path\n#[inline]\nfn tick() {}\nfn cold() {}\n";
        let p = parse(src);
        assert!(p.fns[0].hot_path);
        assert!(!p.fns[1].hot_path);
    }

    #[test]
    fn nested_fns_are_recorded() {
        let p = parse("fn outer() {\n    fn inner(x: u8) -> u8 { x }\n    inner(1);\n}\n");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[1].name, "inner");
        assert!(!p.fns[1].public_path);
    }

    #[test]
    fn const_fn_and_const_item_are_distinguished() {
        let p = parse("pub const MAX: usize = 3;\npub const fn zero() -> u8 { 0 }\n");
        assert_eq!(p.items.len(), 1);
        assert_eq!(p.items[0].kind, "const");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "zero");
    }

    #[test]
    fn struct_literal_in_const_is_not_a_scope() {
        let p = parse("const C: P = P { x: 1 };\npub fn after() {}\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "after");
        assert!(p.fns[0].public_path);
    }

    #[test]
    fn trait_decls_host_default_bodies() {
        let p = parse(
            "pub trait W {\n    fn id(&self) -> u8;\n    fn memoizable(&self) -> bool {\n        false\n    }\n}\n",
        );
        assert_eq!(p.fns.len(), 1, "only the default body is recorded");
        assert_eq!(p.fns[0].name, "memoizable");
        let owner = p.fns[0].owner.expect("trait pseudo-impl");
        assert_eq!(p.impls[owner].ty, "W");
    }

    #[test]
    fn cfg_test_functions_are_marked() {
        let p = parse("#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn real() {}\n");
        let t = p.fns.iter().find(|f| f.name == "t").expect("t");
        assert!(t.is_test);
        let real = p.fns.iter().find(|f| f.name == "real").expect("real");
        assert!(!real.is_test);
    }
}
