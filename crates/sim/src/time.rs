//! Simulated time.
//!
//! All simulation time is kept in integer **nanoseconds** so that event
//! ordering is exact and runs are bit-for-bit reproducible. Two newtypes are
//! provided: [`SimTime`] (an absolute instant since simulation start) and
//! [`SimDuration`] (a span between instants). Arithmetic between them mirrors
//! `std::time::{Instant, Duration}`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds since t = 0.
///
/// # Examples
///
/// ```
/// use iotse_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(3_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use iotse_sim::time::SimDuration;
///
/// let d = SimDuration::from_micros(250) * 4;
/// assert_eq!(d, SimDuration::from_millis(1));
/// assert_eq!(d.as_secs_f64(), 0.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, truncated.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start, truncated.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float (lossy for > 2^53 ns).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start as a float.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (simulated time never runs
    /// backwards, so this indicates a scheduling bug).
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        match self.0.checked_sub(earlier.0) {
            Some(d) => SimDuration(d),
            // iotse-lint: allow(IOTSE-E04) documented panic contract: time never runs backwards
            None => panic!("duration_since: {earlier} is later than {self}"),
        }
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    #[must_use]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, returning `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Adds a duration, clamping at [`SimTime::MAX`].
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large to represent.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let nanos = secs * 1e9;
        assert!(nanos <= u64::MAX as f64, "duration overflow: {secs} s");
        SimDuration(nanos.round() as u64)
    }

    /// Creates a span from fractional milliseconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative, non-finite, or too large to represent.
    #[must_use]
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Creates a span from fractional microseconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `micros` is negative, non-finite, or too large to represent.
    #[must_use]
    pub fn from_micros_f64(micros: f64) -> Self {
        Self::from_secs_f64(micros / 1e6)
    }

    /// The span in whole nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in whole microseconds, truncated.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in whole milliseconds, truncated.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if the span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Adds two spans, returning `None` on overflow.
    #[must_use]
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Adds two spans, clamping at [`SimDuration::MAX`].
    #[must_use]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Subtracts, clamping at zero.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a float factor, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative, non-finite, or the result overflows.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        Self::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// The larger of two spans.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                // iotse-lint: allow(IOTSE-E04) overflow is a simulation bug; std::time panics too
                .expect("simulated time overflow (more than ~584 years)"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                // iotse-lint: allow(IOTSE-E04) underflow is a simulation bug; std::time panics too
                .expect("simulated time underflow (before t = 0)"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        // iotse-lint: allow(IOTSE-E04) overflow is a simulation bug; std::time panics too
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        // iotse-lint: allow(IOTSE-E04) underflow is a simulation bug; std::time panics too
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        // iotse-lint: allow(IOTSE-E04) overflow is a simulation bug; std::time panics too
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0ns")
        } else if ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_nanos(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_nanos(2_000_000_000)
        );
    }

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_since_is_exact() {
        let a = SimTime::from_nanos(17);
        let b = SimTime::from_nanos(42);
        assert_eq!(b.duration_since(a), SimDuration::from_nanos(25));
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn duration_since_panics_when_backwards() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn from_secs_f64_rounds_to_nanos() {
        assert_eq!(
            SimDuration::from_secs_f64(0.000_000_001_4),
            SimDuration::from_nanos(1)
        );
        assert_eq!(
            SimDuration::from_secs_f64(0.000_000_001_6),
            SimDuration::from_nanos(2)
        );
        assert_eq!(
            SimDuration::from_millis_f64(0.192),
            SimDuration::from_micros(192)
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(SimDuration::from_nanos(7).to_string(), "7ns");
        assert_eq!(SimDuration::from_micros(48).to_string(), "48us");
        assert_eq!(SimDuration::from_millis(192).to_string(), "192ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3s");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimTime::from_millis(1).to_string(), "t+1ms");
    }

    #[test]
    fn mul_div_scale() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d * 10, SimDuration::from_millis(1));
        assert_eq!(d / 4, SimDuration::from_micros(25));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(50));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_nanos(3).saturating_sub(SimDuration::from_nanos(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn min_max_select_endpoints() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_micros(5);
        let y = SimDuration::from_micros(9);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn converts_to_std_duration() {
        let d: std::time::Duration = SimDuration::from_millis(12).into();
        assert_eq!(d, std::time::Duration::from_millis(12));
    }
}
