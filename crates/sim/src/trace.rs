//! Execution tracing.
//!
//! A [`TraceLog`] records what happened and when — sensor reads, interrupts,
//! transfers, power-state changes — as structured entries. Experiments use it
//! to regenerate the paper's Figure 5 timelines and tests use it to assert
//! exact event sequences.

use std::fmt;

use crate::time::SimTime;

/// The kind of a trace entry. Categories mirror the paper's four sub-tasks
/// plus platform housekeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceKind {
    /// A sensor sample was collected at the MCU (Tasks I–III of §II-B).
    SensorRead,
    /// The MCU raised an interrupt to the CPU.
    Interrupt,
    /// Data moved between the MCU board and the Main board.
    DataTransfer,
    /// App-specific computation ran (on CPU or MCU).
    Compute,
    /// A device changed power state.
    PowerState,
    /// Scheme-level bookkeeping (batch flushed, offload dispatched, …).
    Scheme,
    /// QoS accounting (deadline met/missed).
    Qos,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::SensorRead => "sensor-read",
            TraceKind::Interrupt => "interrupt",
            TraceKind::DataTransfer => "data-transfer",
            TraceKind::Compute => "compute",
            TraceKind::PowerState => "power-state",
            TraceKind::Scheme => "scheme",
            TraceKind::Qos => "qos",
        };
        f.write_str(s)
    }
}

/// One trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// When it happened.
    pub time: SimTime,
    /// What category of thing happened.
    pub kind: TraceKind,
    /// Which component reported it (e.g. `"cpu"`, `"mcu"`, `"app:A2"`).
    pub source: String,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {}: {}",
            self.time, self.kind, self.source, self.detail
        )
    }
}

/// An append-only, optionally disabled, in-memory trace.
///
/// Tracing is off by default so the hot experiment loops pay nothing; tests
/// and the Figure 5 harness enable it explicitly.
///
/// # Examples
///
/// ```
/// use iotse_sim::trace::{TraceKind, TraceLog};
/// use iotse_sim::time::SimTime;
///
/// let mut log = TraceLog::enabled();
/// log.record(SimTime::from_millis(1), TraceKind::Interrupt, "mcu", "sample ready");
/// assert_eq!(log.entries().len(), 1);
/// assert_eq!(log.count(TraceKind::Interrupt), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    enabled: bool,
    entries: Vec<TraceEntry>,
}

impl TraceLog {
    /// Creates a disabled (zero-cost) trace.
    #[must_use]
    pub fn disabled() -> Self {
        TraceLog {
            enabled: false,
            entries: Vec::new(),
        }
    }

    /// Creates an enabled trace.
    #[must_use]
    pub fn enabled() -> Self {
        TraceLog {
            enabled: true,
            entries: Vec::new(),
        }
    }

    /// `true` if entries are being kept.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off (existing entries are kept).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records an entry if enabled.
    pub fn record(
        &mut self,
        time: SimTime,
        kind: TraceKind,
        source: impl Into<String>,
        detail: impl Into<String>,
    ) {
        if self.enabled {
            self.entries.push(TraceEntry {
                time,
                kind,
                source: source.into(),
                detail: detail.into(),
            });
        }
    }

    /// All recorded entries, in recording order (which is time order, since
    /// the engine only moves forward).
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries of `kind`.
    #[must_use]
    pub fn count(&self, kind: TraceKind) -> usize {
        self.entries.iter().filter(|e| e.kind == kind).count()
    }

    /// Iterator over entries of `kind`.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(SimTime::ZERO, TraceKind::Compute, "cpu", "x");
        assert!(log.entries().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn enabled_log_keeps_order_and_counts() {
        let mut log = TraceLog::enabled();
        log.record(SimTime::from_millis(1), TraceKind::Interrupt, "mcu", "a");
        log.record(
            SimTime::from_millis(2),
            TraceKind::DataTransfer,
            "link",
            "b",
        );
        log.record(SimTime::from_millis(3), TraceKind::Interrupt, "mcu", "c");
        assert_eq!(log.count(TraceKind::Interrupt), 2);
        assert_eq!(log.count(TraceKind::DataTransfer), 1);
        assert_eq!(log.count(TraceKind::Compute), 0);
        let ints: Vec<&str> = log
            .of_kind(TraceKind::Interrupt)
            .map(|e| e.detail.as_str())
            .collect();
        assert_eq!(ints, vec!["a", "c"]);
    }

    #[test]
    fn toggling_preserves_existing_entries() {
        let mut log = TraceLog::enabled();
        log.record(SimTime::ZERO, TraceKind::Qos, "exec", "kept");
        log.set_enabled(false);
        log.record(SimTime::ZERO, TraceKind::Qos, "exec", "dropped");
        assert_eq!(log.entries().len(), 1);
        log.set_enabled(true);
        log.record(SimTime::ZERO, TraceKind::Qos, "exec", "kept2");
        assert_eq!(log.entries().len(), 2);
    }

    #[test]
    fn display_formats_are_readable() {
        let e = TraceEntry {
            time: SimTime::from_millis(5),
            kind: TraceKind::SensorRead,
            source: "mcu".into(),
            detail: "S4 sample 12B".into(),
        };
        assert_eq!(e.to_string(), "[t+5ms] sensor-read mcu: S4 sample 12B");
    }
}
