//! Execution tracing: hierarchical spans, typed events, interned labels.
//!
//! A [`TraceLog`] records what happened and when — sensor reads, interrupts,
//! transfers, power-state changes — and *inside what*: work is organized as
//! a tree of [`Span`]s (enter/exit at [`SimTime`], parent links, a `weight`
//! accumulator the executor charges energy into), with point-in-time
//! [`TraceEvent`]s attached to the innermost open span. Experiments use the
//! log to regenerate the paper's Figure 5 timelines, the flamegraph fold
//! reads span weights, and tests assert exact event sequences.
//!
//! Three design rules keep the hot path honest:
//!
//! 1. **Zero cost when disabled.** Every recording method checks
//!    `enabled` before doing *any* work — no interning, no allocation, no
//!    formatting. Callers pass `&'static str` labels and stack-allocated
//!    field slices, so a disabled log costs one branch per call.
//! 2. **No per-entry heap formatting when enabled.** Labels and field names
//!    are interned once into a [`Label`] table; values are typed
//!    [`FieldValue`]s, not preformatted `String`s. Rendering happens only
//!    at export time.
//! 3. **Determinism.** The log is plain data driven by the simulation
//!    clock; two identical runs produce bitwise-identical logs.
//!
//! The PR-0 `record(time, kind, source, detail)` API survives as a thin
//! compatibility layer: it records a [`TraceEvent`] whose detail string is
//! interned, and [`TraceLog::entries`] renders every event back into the
//! old [`TraceEntry`] shape.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimTime;

/// The kind of a trace entry. Categories mirror the paper's four sub-tasks
/// plus platform housekeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceKind {
    /// A sensor sample was collected at the MCU (Tasks I–III of §II-B).
    SensorRead,
    /// The MCU raised an interrupt to the CPU.
    Interrupt,
    /// Data moved between the MCU board and the Main board.
    DataTransfer,
    /// App-specific computation ran (on CPU or MCU).
    Compute,
    /// A device changed power state.
    PowerState,
    /// Scheme-level bookkeeping (batch flushed, offload dispatched, …).
    Scheme,
    /// QoS accounting (deadline met/missed).
    Qos,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::SensorRead => "sensor-read",
            TraceKind::Interrupt => "interrupt",
            TraceKind::DataTransfer => "data-transfer",
            TraceKind::Compute => "compute",
            TraceKind::PowerState => "power-state",
            TraceKind::Scheme => "scheme",
            TraceKind::Qos => "qos",
        };
        f.write_str(s)
    }
}

/// An interned string: an index into the log's label table.
///
/// Interning happens once per distinct string; recording a span or event
/// with an already-known label is allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(u32);

/// The identity of one span in a [`TraceLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u32);

impl SpanId {
    /// The sentinel returned by [`TraceLog::enter_span`] on a disabled log.
    /// Every span operation on it is a no-op, so callers never need to
    /// branch on whether tracing is live.
    pub const DISABLED: SpanId = SpanId(u32::MAX);

    /// Index into [`TraceLog::spans`], or `None` for the disabled sentinel.
    #[must_use]
    pub fn index(self) -> Option<usize> {
        (self != SpanId::DISABLED).then_some(self.0 as usize)
    }

    /// The id of the span at index `i` of [`TraceLog::spans`] (ids are
    /// dense in enter order). For consumers walking a recorded log.
    #[must_use]
    pub fn from_index(i: usize) -> SpanId {
        SpanId(i as u32)
    }
}

/// A typed field value — recorded raw, formatted only at export time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// An unsigned count (bytes, samples, window index…).
    U64(u64),
    /// A signed quantity.
    I64(i64),
    /// An interned string.
    Str(Label),
    /// An instant on the simulated clock.
    Time(SimTime),
}

impl FieldValue {
    /// Renders the value with `labels` resolving interned strings.
    fn render(self, labels: &LabelTable) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::Str(l) => labels.resolve(l).to_string(),
            FieldValue::Time(t) => t.to_string(),
        }
    }
}

/// Inline capacity of a [`FieldList`]. The widest field set any recorder
/// attaches (the QoS event's result/window/deadline triple) fits here, so
/// steady-state tracing allocates for label interning only — once per
/// distinct string, never per span or event.
const FIELDS_INLINE: usize = 3;

/// Padding for unused inline slots (the disabled-intern sentinel label).
const FIELD_PAD: (Label, FieldValue) = (Label(u32::MAX), FieldValue::U64(0));

/// A span/event field list with inline storage for up to [`FIELDS_INLINE`]
/// pairs; longer lists spill to the heap. Dereferences to a
/// `[(Label, FieldValue)]` slice, so consumers iterate and index it like
/// the `Vec` it replaced.
#[derive(Debug, Clone)]
pub struct FieldList(FieldStore);

#[derive(Debug, Clone)]
enum FieldStore {
    /// `len` live pairs; slots past `len` hold [`FIELD_PAD`].
    Inline {
        len: u8,
        buf: [(Label, FieldValue); FIELDS_INLINE],
    },
    /// Spilled storage for lists longer than [`FIELDS_INLINE`].
    Heap(Vec<(Label, FieldValue)>),
}

impl FieldList {
    /// An empty list (allocation-free).
    #[must_use]
    pub fn new() -> Self {
        FieldList(FieldStore::Inline {
            len: 0,
            buf: [FIELD_PAD; FIELDS_INLINE],
        })
    }

    /// Appends a pair, spilling to the heap past the inline capacity.
    pub fn push(&mut self, pair: (Label, FieldValue)) {
        match &mut self.0 {
            FieldStore::Inline { len, buf } => {
                if (*len as usize) < FIELDS_INLINE {
                    buf[*len as usize] = pair;
                    *len += 1;
                } else {
                    // lint: cold spill past the inline capacity (> FIELDS_INLINE pairs)
                    let mut spilled = buf.to_vec();
                    spilled.push(pair);
                    self.0 = FieldStore::Heap(spilled);
                }
            }
            FieldStore::Heap(v) => v.push(pair),
        }
    }

    /// The live pairs as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[(Label, FieldValue)] {
        match &self.0 {
            FieldStore::Inline { len, buf } => &buf[..*len as usize],
            FieldStore::Heap(v) => v,
        }
    }
}

impl Default for FieldList {
    fn default() -> Self {
        FieldList::new()
    }
}

impl std::ops::Deref for FieldList {
    type Target = [(Label, FieldValue)];
    fn deref(&self) -> &Self::Target {
        self.as_slice()
    }
}

impl PartialEq for FieldList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl FromIterator<(Label, FieldValue)> for FieldList {
    fn from_iter<I: IntoIterator<Item = (Label, FieldValue)>>(iter: I) -> Self {
        let mut list = FieldList::new();
        for pair in iter {
            list.push(pair);
        }
        list
    }
}

impl<'a> IntoIterator for &'a FieldList {
    type Item = &'a (Label, FieldValue);
    type IntoIter = std::slice::Iter<'a, (Label, FieldValue)>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// One node of the span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// The enclosing span, or `None` for a root.
    pub parent: Option<SpanId>,
    /// Category (drives export lane/color).
    pub kind: TraceKind,
    /// Interned span name (e.g. `iotse_core_transfer`).
    pub label: Label,
    /// When the span was entered.
    pub enter: SimTime,
    /// When the span was exited; `None` while still open.
    pub exit: Option<SimTime>,
    /// Accumulated weight. The unit is the caller's; the `iotse` executor
    /// charges **microjoules** of ledger energy here, so folding weights up
    /// the tree reproduces `EnergyLedger::total()` exactly.
    pub weight: f64,
    /// Typed key/value attachments.
    pub fields: FieldList,
}

/// One point-in-time event, attached to the innermost open span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// What category of thing happened.
    pub kind: TraceKind,
    /// The innermost span open at recording time, if any.
    pub span: Option<SpanId>,
    /// Which component reported it (interned; e.g. `"mcu"`, `"link"`).
    pub source: Label,
    /// Typed key/value attachments.
    pub fields: FieldList,
}

/// One trace entry — the PR-0 compatibility shape, rendered on demand by
/// [`TraceLog::entries`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// When it happened.
    pub time: SimTime,
    /// What category of thing happened.
    pub kind: TraceKind,
    /// Which component reported it (e.g. `"cpu"`, `"mcu"`, `"app:A2"`).
    pub source: String,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {}: {}",
            self.time, self.kind, self.source, self.detail
        )
    }
}

/// Aggregate shape of a recorded span tree — cheap to compare and to carry
/// in a `RunResult` without cloning the whole log.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanSummary {
    /// Number of spans recorded.
    pub spans: usize,
    /// Number of point events recorded.
    pub events: usize,
    /// Deepest nesting level (a root span has depth 1; 0 if no spans).
    pub max_depth: usize,
    /// Sum of every span's own weight (for the executor: microjoules).
    pub total_weight: f64,
}

/// The interned-string table.
#[derive(Debug, Clone, Default, PartialEq)]
struct LabelTable {
    strings: Vec<String>,
    index: BTreeMap<String, u32>,
}

impl LabelTable {
    fn intern(&mut self, s: &str) -> Label {
        if let Some(&i) = self.index.get(s) {
            return Label(i);
        }
        let i = self.strings.len() as u32;
        // lint: interning allocates once per distinct label, then hits the map
        self.strings.push(s.to_string());
        // lint: second owned copy keys the lookup map, same once-per-label cost
        self.index.insert(s.to_string(), i);
        Label(i)
    }

    fn resolve(&self, label: Label) -> &str {
        self.strings
            .get(label.0 as usize)
            .map_or("<unknown-label>", String::as_str)
    }
}

/// An append-only, optionally disabled, in-memory structured trace.
///
/// Tracing is off by default so the hot experiment loops pay nothing; tests
/// and the export harnesses enable it explicitly.
///
/// # Examples
///
/// ```
/// use iotse_sim::trace::{FieldValue, TraceKind, TraceLog};
/// use iotse_sim::time::SimTime;
///
/// let mut log = TraceLog::enabled();
/// let run = log.enter_span(SimTime::ZERO, TraceKind::Scheme, "iotse_sim_example");
/// log.event(
///     SimTime::from_millis(1),
///     TraceKind::Interrupt,
///     "mcu",
///     &[("bytes", FieldValue::U64(12))],
/// );
/// log.charge_span(run, 42.0);
/// log.exit_span(run, SimTime::from_millis(2));
/// assert_eq!(log.spans().len(), 1);
/// assert_eq!(log.entries().len(), 1);
/// assert_eq!(log.count(TraceKind::Interrupt), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    enabled: bool,
    labels: LabelTable,
    spans: Vec<Span>,
    events: Vec<TraceEvent>,
    /// Stack of currently-open spans (indices into `spans`).
    open: Vec<SpanId>,
}

impl TraceLog {
    /// Creates a disabled (zero-cost) trace.
    #[must_use]
    pub fn disabled() -> Self {
        TraceLog::default()
    }

    /// Creates an enabled trace.
    #[must_use]
    pub fn enabled() -> Self {
        TraceLog {
            enabled: true,
            ..TraceLog::default()
        }
    }

    /// `true` if spans and events are being kept.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off (existing spans and events are kept).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Resolves an interned label back to its string.
    #[must_use]
    pub fn label(&self, label: Label) -> &str {
        self.labels.resolve(label)
    }

    // ------------------------------------------------------------ spans --

    /// Opens a span named `label` at `time`, nested under the innermost
    /// open span. Returns [`SpanId::DISABLED`] (on which every operation is
    /// a no-op) when the log is disabled.
    pub fn enter_span(&mut self, time: SimTime, kind: TraceKind, label: &str) -> SpanId {
        if !self.enabled {
            return SpanId::DISABLED;
        }
        let label = self.labels.intern(label);
        let id = SpanId(self.spans.len() as u32);
        self.spans.push(Span {
            parent: self.open.last().copied(),
            kind,
            label,
            enter: time,
            exit: None,
            weight: 0.0,
            fields: FieldList::new(),
        });
        self.open.push(id);
        id
    }

    /// Closes span `id` at `time`. Spans close LIFO: `id` must be the
    /// innermost open span.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the innermost open span, or if `time` precedes
    /// its enter time (both are recording bugs, not data conditions).
    pub fn exit_span(&mut self, id: SpanId, time: SimTime) {
        if !self.enabled || id == SpanId::DISABLED {
            return;
        }
        assert!(
            self.open.last() == Some(&id),
            "spans must exit LIFO (exiting {id:?}, innermost is {:?})",
            self.open.last()
        );
        self.open.pop();
        let span = &mut self.spans[id.0 as usize];
        assert!(
            time >= span.enter,
            "span exit ({time}) precedes enter ({})",
            span.enter
        );
        span.exit = Some(time);
    }

    /// Adds `weight` to span `id` (the executor charges microjoules of
    /// ledger energy). No-op on a disabled log or the disabled sentinel.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative — weights only accumulate.
    pub fn charge_span(&mut self, id: SpanId, weight: f64) {
        if !self.enabled || id == SpanId::DISABLED {
            return;
        }
        assert!(weight >= 0.0, "span weight must be non-negative ({weight})");
        self.spans[id.0 as usize].weight += weight;
    }

    /// Attaches a typed field to span `id`. No-op when disabled.
    pub fn span_field(&mut self, id: SpanId, name: &str, value: FieldValue) {
        if !self.enabled || id == SpanId::DISABLED {
            return;
        }
        let name = self.labels.intern(name);
        self.spans[id.0 as usize].fields.push((name, value));
    }

    /// Interns `s` for use in a [`FieldValue::Str`]. Returns a throwaway
    /// label on a disabled log (no field will ever render it).
    pub fn intern(&mut self, s: &str) -> Label {
        if !self.enabled {
            return Label(u32::MAX);
        }
        self.labels.intern(s)
    }

    /// The recorded spans, in enter order. `SpanId(i)` is `spans()[i]`.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The innermost currently-open span, if any.
    #[must_use]
    pub fn current_span(&self) -> Option<SpanId> {
        self.open.last().copied()
    }

    /// Nesting depth of span `id` (a root has depth 1).
    #[must_use]
    pub fn depth(&self, id: SpanId) -> usize {
        let mut depth = 0;
        let mut cursor = id.index();
        while let Some(i) = cursor {
            depth += 1;
            cursor = self.spans[i].parent.and_then(SpanId::index);
        }
        depth
    }

    /// The `;`-joined label path from the root to span `id` — one stack of
    /// the flamegraph fold.
    #[must_use]
    pub fn stack(&self, id: SpanId) -> String {
        let mut parts: Vec<&str> = Vec::new();
        let mut cursor = id.index();
        while let Some(i) = cursor {
            parts.push(self.labels.resolve(self.spans[i].label));
            cursor = self.spans[i].parent.and_then(SpanId::index);
        }
        parts.reverse();
        parts.join(";")
    }

    /// Aggregate shape of the log (span/event counts, depth, total weight).
    #[must_use]
    pub fn summary(&self) -> SpanSummary {
        let mut max_depth = 0;
        let mut total_weight = 0.0;
        for (i, span) in self.spans.iter().enumerate() {
            max_depth = max_depth.max(self.depth(SpanId(i as u32)));
            total_weight += span.weight;
        }
        SpanSummary {
            spans: self.spans.len(),
            events: self.events.len(),
            max_depth,
            total_weight,
        }
    }

    // ----------------------------------------------------------- events --

    /// Records a typed event attached to the innermost open span. The
    /// `fields` slice lives on the caller's stack; nothing is interned or
    /// allocated when the log is disabled.
    pub fn event(
        &mut self,
        time: SimTime,
        kind: TraceKind,
        source: &str,
        fields: &[(&str, FieldValue)],
    ) {
        if !self.enabled {
            return;
        }
        let source = self.labels.intern(source);
        let fields: FieldList = fields
            .iter()
            .map(|&(name, value)| (self.labels.intern(name), value))
            // lint: runs only when a trace sink is enabled (early return above)
            .collect();
        self.events.push(TraceEvent {
            time,
            kind,
            span: self.open.last().copied(),
            source,
            fields,
        });
    }

    /// Records an entry if enabled — the PR-0 compatibility API. The detail
    /// string still allocates when enabled; hot paths should prefer
    /// [`TraceLog::event`] (typed fields) or [`TraceLog::record_with`]
    /// (lazy detail).
    pub fn record(
        &mut self,
        time: SimTime,
        kind: TraceKind,
        source: impl Into<String>,
        detail: impl Into<String>,
    ) {
        if !self.enabled {
            return;
        }
        let detail: String = detail.into();
        let detail = self.labels.intern(&detail);
        self.event_with_msg(time, kind, &source.into(), detail);
    }

    /// Records an entry whose detail is built only when the log is enabled
    /// — use when the detail genuinely needs formatting (error strings).
    pub fn record_with(
        &mut self,
        time: SimTime,
        kind: TraceKind,
        source: &str,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        let detail = detail();
        let detail = self.labels.intern(&detail);
        self.event_with_msg(time, kind, source, detail);
    }

    fn event_with_msg(&mut self, time: SimTime, kind: TraceKind, source: &str, msg: Label) {
        let source = self.labels.intern(source);
        let name = self.labels.intern("msg");
        let mut fields = FieldList::new();
        fields.push((name, FieldValue::Str(msg)));
        self.events.push(TraceEvent {
            time,
            kind,
            span: self.open.last().copied(),
            source,
            fields,
        });
    }

    /// The recorded events, in recording order (which is time order within
    /// each engine callback, and the engine only moves forward).
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Renders one event's fields as a human-readable detail string: the
    /// bare `msg` value for compat entries, `k=v` pairs otherwise.
    #[must_use]
    pub fn detail(&self, event: &TraceEvent) -> String {
        match event.fields.as_slice() {
            [(name, FieldValue::Str(msg))] if self.labels.resolve(*name) == "msg" => {
                self.labels.resolve(*msg).to_string()
            }
            fields => {
                let mut out = String::new();
                for (i, &(name, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    out.push_str(self.labels.resolve(name));
                    out.push('=');
                    out.push_str(&value.render(&self.labels));
                }
                out
            }
        }
    }

    /// All recorded events rendered into the PR-0 [`TraceEntry`] shape —
    /// the thin compatibility view over the typed log.
    #[must_use]
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.events
            .iter()
            .map(|e| TraceEntry {
                time: e.time,
                kind: e.kind,
                source: self.labels.resolve(e.source).to_string(),
                detail: self.detail(e),
            })
            .collect()
    }

    /// Number of events of `kind`.
    #[must_use]
    pub fn count(&self, kind: TraceKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Iterator over events of `kind`.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Drops all spans, events and the open stack (labels stay interned).
    pub fn clear(&mut self) {
        self.spans.clear();
        self.events.clear();
        self.open.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(SimTime::ZERO, TraceKind::Compute, "cpu", "x");
        log.event(
            SimTime::ZERO,
            TraceKind::Compute,
            "cpu",
            &[("n", FieldValue::U64(1))],
        );
        let span = log.enter_span(SimTime::ZERO, TraceKind::Scheme, "iotse_sim_test");
        assert_eq!(span, SpanId::DISABLED);
        log.charge_span(span, 5.0);
        log.exit_span(span, SimTime::from_millis(1));
        assert!(log.entries().is_empty());
        assert!(log.spans().is_empty());
        assert!(!log.is_enabled());
        assert_eq!(log.summary(), SpanSummary::default());
    }

    #[test]
    fn enabled_log_keeps_order_and_counts() {
        let mut log = TraceLog::enabled();
        log.record(SimTime::from_millis(1), TraceKind::Interrupt, "mcu", "a");
        log.record(
            SimTime::from_millis(2),
            TraceKind::DataTransfer,
            "link",
            "b",
        );
        log.record(SimTime::from_millis(3), TraceKind::Interrupt, "mcu", "c");
        assert_eq!(log.count(TraceKind::Interrupt), 2);
        assert_eq!(log.count(TraceKind::DataTransfer), 1);
        assert_eq!(log.count(TraceKind::Compute), 0);
        let ints: Vec<String> = log
            .of_kind(TraceKind::Interrupt)
            .map(|e| log.detail(e))
            .collect();
        assert_eq!(ints, vec!["a", "c"]);
    }

    #[test]
    fn toggling_preserves_existing_entries() {
        let mut log = TraceLog::enabled();
        log.record(SimTime::ZERO, TraceKind::Qos, "exec", "kept");
        log.set_enabled(false);
        log.record(SimTime::ZERO, TraceKind::Qos, "exec", "dropped");
        assert_eq!(log.entries().len(), 1);
        log.set_enabled(true);
        log.record(SimTime::ZERO, TraceKind::Qos, "exec", "kept2");
        assert_eq!(log.entries().len(), 2);
    }

    #[test]
    fn display_formats_are_readable() {
        let mut log = TraceLog::enabled();
        log.record(
            SimTime::from_millis(5),
            TraceKind::SensorRead,
            "mcu",
            "S4 sample 12B",
        );
        let entries = log.entries();
        assert_eq!(
            entries[0].to_string(),
            "[t+5ms] sensor-read mcu: S4 sample 12B"
        );
    }

    #[test]
    fn spans_nest_and_carry_weight() {
        let mut log = TraceLog::enabled();
        let root = log.enter_span(SimTime::ZERO, TraceKind::Scheme, "iotse_sim_root");
        let child = log.enter_span(
            SimTime::from_millis(1),
            TraceKind::Compute,
            "iotse_sim_leaf",
        );
        log.charge_span(child, 2.5);
        log.charge_span(child, 0.5);
        log.exit_span(child, SimTime::from_millis(3));
        log.charge_span(root, 1.0);
        log.exit_span(root, SimTime::from_millis(4));
        let spans = log.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(root));
        assert_eq!(spans[1].weight, 3.0);
        assert_eq!(spans[1].exit, Some(SimTime::from_millis(3)));
        assert_eq!(log.depth(child), 2);
        assert_eq!(log.stack(child), "iotse_sim_root;iotse_sim_leaf");
        let summary = log.summary();
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.max_depth, 2);
        assert_eq!(summary.total_weight, 4.0);
    }

    #[test]
    fn events_attach_to_the_innermost_open_span() {
        let mut log = TraceLog::enabled();
        log.event(SimTime::ZERO, TraceKind::Qos, "exec", &[]);
        let root = log.enter_span(SimTime::ZERO, TraceKind::Scheme, "iotse_sim_root");
        log.event(
            SimTime::from_millis(1),
            TraceKind::DataTransfer,
            "link",
            &[("bytes", FieldValue::U64(2400))],
        );
        log.exit_span(root, SimTime::from_millis(2));
        log.event(SimTime::from_millis(3), TraceKind::Qos, "exec", &[]);
        let events = log.events();
        assert_eq!(events[0].span, None);
        assert_eq!(events[1].span, Some(root));
        assert_eq!(events[2].span, None);
        assert_eq!(log.detail(&events[1]), "bytes=2400");
    }

    #[test]
    fn field_lists_hold_inline_then_spill() {
        let mut log = TraceLog::enabled();
        let span = log.enter_span(SimTime::ZERO, TraceKind::Scheme, "iotse_sim_wide");
        for i in 0..5u64 {
            log.span_field(span, "k", FieldValue::U64(i));
        }
        log.exit_span(span, SimTime::ZERO);
        let k = log.intern("k");
        let fields = &log.spans()[0].fields;
        assert_eq!(fields.len(), 5);
        for (i, &(name, value)) in fields.iter().enumerate() {
            assert_eq!(name, k);
            assert_eq!(value, FieldValue::U64(i as u64));
        }
        // Equality is by contents, inline or spilled.
        let a: FieldList = (0..2u64).map(|i| (k, FieldValue::U64(i))).collect();
        let b: FieldList = (0..2u64).map(|i| (k, FieldValue::U64(i))).collect();
        assert_eq!(a, b);
        assert_ne!(a, FieldList::new());
    }

    #[test]
    fn labels_are_interned_once() {
        let mut log = TraceLog::enabled();
        let a = log.intern("iotse_sim_x");
        let b = log.intern("iotse_sim_x");
        assert_eq!(a, b);
        assert_eq!(log.label(a), "iotse_sim_x");
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn out_of_order_exit_panics() {
        let mut log = TraceLog::enabled();
        let a = log.enter_span(SimTime::ZERO, TraceKind::Scheme, "iotse_sim_a");
        let _b = log.enter_span(SimTime::ZERO, TraceKind::Scheme, "iotse_sim_b");
        log.exit_span(a, SimTime::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "precedes enter")]
    fn backwards_exit_panics() {
        let mut log = TraceLog::enabled();
        let a = log.enter_span(SimTime::from_millis(5), TraceKind::Scheme, "iotse_sim_a");
        log.exit_span(a, SimTime::from_millis(1));
    }

    #[test]
    fn record_with_is_lazy_when_disabled() {
        let mut log = TraceLog::disabled();
        let mut called = false;
        log.record_with(SimTime::ZERO, TraceKind::SensorRead, "mcu", || {
            called = true;
            "expensive".to_string()
        });
        assert!(!called, "detail closure ran on a disabled log");
        log.set_enabled(true);
        log.record_with(SimTime::ZERO, TraceKind::SensorRead, "mcu", || {
            "built".to_string()
        });
        assert_eq!(log.entries()[0].detail, "built");
    }

    #[test]
    fn clear_drops_data_but_keeps_enablement() {
        let mut log = TraceLog::enabled();
        let s = log.enter_span(SimTime::ZERO, TraceKind::Scheme, "iotse_sim_s");
        log.exit_span(s, SimTime::ZERO);
        log.record(SimTime::ZERO, TraceKind::Qos, "exec", "x");
        log.clear();
        assert!(log.spans().is_empty());
        assert!(log.events().is_empty());
        assert!(log.is_enabled());
    }
}
