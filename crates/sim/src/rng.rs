//! Deterministic random-number plumbing.
//!
//! Every stochastic element of the workspace (synthetic sensor signals,
//! jitter, noise) draws from a stream derived from a single experiment seed,
//! so a whole scenario replays identically from one `u64`. Streams are
//! derived by hashing `(seed, label)` with SplitMix64, so adding a new
//! consumer never shifts the draws of existing ones — unlike handing a
//! single RNG around.
//!
//! The generator itself ([`SimRng`], xoshiro256++) is implemented here with
//! no external dependencies, which keeps the workspace `std`-only and — more
//! importantly — makes every draw bit-stable across platforms, compiler
//! versions and thread schedules. That stability is what the parallel fleet
//! runner in `iotse-core` leans on: a scenario seeded from its key produces
//! the same byte-identical result whether it runs alone or on any worker of
//! an 8-thread pool.

use std::ops::{Range, RangeInclusive};

/// One round of the SplitMix64 mixing function.
#[must_use]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ stream.
///
/// The API intentionally mirrors the small slice of `rand` the workspace
/// used (`gen`, `gen_range`, `gen_bool`), so signal generators read the
/// same; the implementation is self-contained and bit-reproducible.
///
/// # Examples
///
/// ```
/// use iotse_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.gen::<f64>(), b.gen::<f64>());
/// assert!((0..10u32).contains(&a.gen_range(0..10u32)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seeds a stream by expanding `seed` through SplitMix64 (the xoshiro
    /// authors' recommended initialization).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(z);
        }
        // The all-zero state is the one fixed point; SplitMix64 cannot
        // produce four zero outputs from sequential inputs, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// The next raw 64-bit draw (xoshiro256++).
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw of type `T` (full integer range, `[0, 1)` for floats,
    /// fair coin for `bool`).
    #[must_use]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Splits off an independent child stream and advances the parent.
    ///
    /// The child's seed is a SplitMix64 hash of one parent draw, so (a)
    /// repeated splits from the same parent state yield the same sequence of
    /// children, and (b) the child's output prefix does not replay the
    /// parent's — the fleet runner uses this to hand each worker-local
    /// consumer its own stream without any cross-thread coordination.
    #[must_use]
    pub fn split(&mut self) -> SimRng {
        // XOR with a distinct constant keeps the child's seed domain apart
        // from plain `seed_from_u64(next_u64())` usage.
        SimRng::seed_from_u64(splitmix64(self.next_u64() ^ 0xA5A5_5A5A_C3C3_3C3C))
    }
}

/// Types [`SimRng::gen`] can draw uniformly.
pub trait Sample {
    /// Draws one value.
    fn sample(rng: &mut SimRng) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            // lint: truncating a uniform u64 to a narrower int keeps it uniform
            #[allow(clippy::cast_possible_truncation)]
            fn sample(rng: &mut SimRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample(rng: &mut SimRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample(rng: &mut SimRng) -> Self {
        // 53 high bits → [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Sample for f32 {
    // lint: the >> 40 leaves 24 bits, which f32's mantissa holds exactly
    #[allow(clippy::cast_possible_truncation)]
    fn sample(rng: &mut SimRng) -> Self {
        ((rng.next_u64() >> 40) as f32) / (1u64 << 24) as f32
    }
}

/// Ranges [`SimRng::gen_range`] can draw from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut SimRng) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            // lint: uniform_u64(span) < span, which fits the range's own type
            #[allow(clippy::cast_possible_truncation)]
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            // lint: uniform_u64(span + 1) <= span, which fits the range's own type
            #[allow(clippy::cast_possible_truncation)]
            fn sample(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            // lint: two's-complement wrapping offset maps back into the signed range
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            // lint: two's-complement wrapping offset maps back into the signed range
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut SimRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u: f64 = rng.gen();
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back in.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut SimRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        let u: f32 = rng.gen();
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Uniform draw from `[0, bound)` by multiply-shift (Lemire), debiased with
/// one rejection round at most in practice.
fn uniform_u64(rng: &mut SimRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Widening multiply keeps the draw unbiased enough for simulation use
    // while staying branch-cheap; the slight modulo bias of a naive `%`
    // would still be deterministic but this is just as cheap.
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        // lint: Lemire rejection wants exactly the low 64 bits of the product
        #[allow(clippy::cast_possible_truncation)]
        let lo = m as u64;
        if lo >= bound.wrapping_neg() % bound {
            // lint: m >> 64 of a u128 product is by construction < 2^64
            #[allow(clippy::cast_possible_truncation)]
            return (m >> 64) as u64;
        }
    }
}

/// A root seed from which independent, label-addressed RNG streams are
/// derived.
///
/// # Examples
///
/// ```
/// use iotse_sim::rng::SeedTree;
///
/// let tree = SeedTree::new(42);
/// let mut accel = tree.stream("sensor/accelerometer");
/// let mut sound = tree.stream("sensor/sound");
/// // Streams are independent and reproducible:
/// let a1: f64 = accel.gen();
/// let mut accel2 = SeedTree::new(42).stream("sensor/accelerometer");
/// assert_eq!(a1, accel2.gen::<f64>());
/// let _ = sound;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedTree {
    root: u64,
}

impl SeedTree {
    /// Creates a seed tree from a root seed.
    #[must_use]
    pub fn new(root: u64) -> Self {
        SeedTree { root }
    }

    /// The root seed.
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives the 64-bit sub-seed for `label`.
    #[must_use]
    pub fn derive(&self, label: &str) -> u64 {
        // FNV-1a over the label, mixed with the root through SplitMix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        splitmix64(self.root ^ splitmix64(h))
    }

    /// Returns a fresh RNG for `label`, independent of all other labels.
    #[must_use]
    pub fn stream(&self, label: &str) -> SimRng {
        SimRng::seed_from_u64(self.derive(label))
    }

    /// Returns `n` index-addressed sibling streams split under `label`.
    ///
    /// Stream `i` is reproducible from `(root, label, i)` alone — the fleet
    /// runner derives one per scenario so workers never share RNG state.
    #[must_use]
    pub fn streams(&self, label: &str, n: usize) -> Vec<SimRng> {
        (0..n)
            .map(|i| SimRng::seed_from_u64(splitmix64(self.derive(label) ^ i as u64)))
            .collect()
    }

    /// Derives a child tree, for namespacing (e.g. one tree per app
    /// instance).
    #[must_use]
    pub fn child(&self, label: &str) -> SeedTree {
        SeedTree {
            root: self.derive(label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let t = SeedTree::new(7);
        let mut s1 = t.stream("x");
        let mut s2 = t.stream("x");
        let a: Vec<u32> = (0..8).map(|_| s1.gen()).collect();
        let b: Vec<u32> = (0..8).map(|_| s2.gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let t = SeedTree::new(7);
        assert_ne!(t.derive("x"), t.derive("y"));
        assert_ne!(t.derive("x"), t.derive("x/2"));
    }

    #[test]
    fn different_roots_differ() {
        assert_ne!(SeedTree::new(1).derive("x"), SeedTree::new(2).derive("x"));
    }

    #[test]
    fn child_trees_are_namespaced() {
        let t = SeedTree::new(9);
        let c1 = t.child("app/A2");
        let c2 = t.child("app/A7");
        assert_ne!(c1.derive("noise"), c2.derive("noise"));
        // Child derivation is itself deterministic.
        assert_eq!(c1.derive("noise"), t.child("app/A2").derive("noise"));
    }

    #[test]
    fn splitmix_known_values_are_stable() {
        // Pinned so that seed-derivation changes are caught by tests:
        // experiment outputs depend on these.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn f64_draws_live_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SimRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!((10..20u32).contains(&r.gen_range(10..20u32)));
            assert!((0..=5i16).contains(&r.gen_range(0..=5i16)));
            assert!((-4..=4i16).contains(&r.gen_range(-4..=4i16)));
            let f = r.gen_range(1e-12..1.0f64);
            assert!((1e-12..1.0).contains(&f));
        }
    }

    #[test]
    fn range_draws_cover_the_support() {
        let mut r = SimRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SimRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn split_children_are_reproducible_and_independent() {
        let mut parent1 = SimRng::seed_from_u64(11);
        let mut parent2 = SimRng::seed_from_u64(11);
        let mut c1 = parent1.split();
        let mut c2 = parent2.split();
        assert_eq!(c1.next_u64(), c2.next_u64());
        // A second split from the advanced parent differs from the first.
        let mut d1 = parent1.split();
        assert_ne!(c1.next_u64(), d1.next_u64());
    }

    /// Property-style harness: runs `body` over `cases` generated seeds.
    fn forall_seeds(cases: u64, mut body: impl FnMut(u64)) {
        for case in 0..cases {
            body(splitmix64(0x51EE_D000 ^ case));
        }
    }

    const PREFIX: usize = 32;

    fn prefix(rng: &mut SimRng) -> Vec<u64> {
        (0..PREFIX).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn prop_split_prefixes_are_pairwise_disjoint() {
        // For any seed: the parent and a family of split children must not
        // share a single u64 in their first 32 draws. With 64-bit outputs a
        // chance collision is ~2⁻⁵³ per pair, so any hit means overlapping
        // streams — the failure mode that would correlate "independent"
        // sensor noise across fleet workers.
        use std::collections::HashMap;
        forall_seeds(200, |seed| {
            let mut parent = SimRng::seed_from_u64(seed);
            let mut streams = vec![parent.split(), parent.split(), parent.split()];
            streams.push(parent); // the advanced parent is a stream too
            let mut owner: HashMap<u64, usize> = HashMap::new();
            for (i, s) in streams.iter_mut().enumerate() {
                for draw in prefix(s) {
                    if let Some(j) = owner.insert(draw, i) {
                        assert_ne!(i, j, "stream {i} repeated a draw (seed {seed:#x})");
                        panic!("seed {seed:#x}: streams {j} and {i} share draw {draw:#x}");
                    }
                }
            }
        });
    }

    #[test]
    fn prop_split_children_replay_from_the_parent_seed() {
        // For any seed and any split depth: rebuilding the parent from its
        // seed and re-splitting reproduces every child bit for bit.
        forall_seeds(200, |seed| {
            let mut a = SimRng::seed_from_u64(seed);
            let mut b = SimRng::seed_from_u64(seed);
            for depth in 0..4 {
                assert_eq!(
                    prefix(&mut a.split()),
                    prefix(&mut b.split()),
                    "split #{depth} of seed {seed:#x} not reproducible"
                );
            }
            // The parents themselves stayed in lockstep throughout.
            assert_eq!(a, b);
        });
    }

    #[test]
    fn prop_sibling_streams_are_disjoint_and_index_addressed() {
        // SeedTree::streams hands the fleet one stream per scenario; stream
        // `i` must depend only on (root, label, i) and never collide with a
        // sibling's prefix.
        forall_seeds(100, |seed| {
            let tree = SeedTree::new(seed);
            let mut siblings = tree.streams("fleet", 8);
            let prefixes: Vec<Vec<u64>> = siblings.iter_mut().map(prefix).collect();
            for i in 0..prefixes.len() {
                for j in i + 1..prefixes.len() {
                    assert!(
                        prefixes[i].iter().all(|d| !prefixes[j].contains(d)),
                        "siblings {i}/{j} overlap (root {seed:#x})"
                    );
                }
            }
            // Index-addressed: a shorter family is a prefix of a longer one.
            let mut fewer = tree.streams("fleet", 3);
            for (i, s) in fewer.iter_mut().enumerate() {
                assert_eq!(prefix(s), prefixes[i], "stream {i} depends on n");
            }
        });
    }
}
