//! Deterministic random-number plumbing.
//!
//! Every stochastic element of the workspace (synthetic sensor signals,
//! jitter, noise) draws from a stream derived from a single experiment seed,
//! so a whole scenario replays identically from one `u64`. Streams are
//! derived by hashing `(seed, label)` with SplitMix64, so adding a new
//! consumer never shifts the draws of existing ones — unlike handing a
//! single RNG around.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One round of the SplitMix64 mixing function.
#[must_use]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A root seed from which independent, label-addressed RNG streams are
/// derived.
///
/// # Examples
///
/// ```
/// use iotse_sim::rng::SeedTree;
/// use rand::Rng;
///
/// let tree = SeedTree::new(42);
/// let mut accel = tree.stream("sensor/accelerometer");
/// let mut sound = tree.stream("sensor/sound");
/// // Streams are independent and reproducible:
/// let a1: f64 = accel.gen();
/// let mut accel2 = SeedTree::new(42).stream("sensor/accelerometer");
/// assert_eq!(a1, accel2.gen::<f64>());
/// let _ = sound;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedTree {
    root: u64,
}

impl SeedTree {
    /// Creates a seed tree from a root seed.
    #[must_use]
    pub fn new(root: u64) -> Self {
        SeedTree { root }
    }

    /// The root seed.
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives the 64-bit sub-seed for `label`.
    #[must_use]
    pub fn derive(&self, label: &str) -> u64 {
        // FNV-1a over the label, mixed with the root through SplitMix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        splitmix64(self.root ^ splitmix64(h))
    }

    /// Returns a fresh RNG for `label`, independent of all other labels.
    #[must_use]
    pub fn stream(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.derive(label))
    }

    /// Derives a child tree, for namespacing (e.g. one tree per app
    /// instance).
    #[must_use]
    pub fn child(&self, label: &str) -> SeedTree {
        SeedTree {
            root: self.derive(label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let t = SeedTree::new(7);
        let a: Vec<u32> = t
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = t
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let t = SeedTree::new(7);
        assert_ne!(t.derive("x"), t.derive("y"));
        assert_ne!(t.derive("x"), t.derive("x/2"));
    }

    #[test]
    fn different_roots_differ() {
        assert_ne!(SeedTree::new(1).derive("x"), SeedTree::new(2).derive("x"));
    }

    #[test]
    fn child_trees_are_namespaced() {
        let t = SeedTree::new(9);
        let c1 = t.child("app/A2");
        let c2 = t.child("app/A7");
        assert_ne!(c1.derive("noise"), c2.derive("noise"));
        // Child derivation is itself deterministic.
        assert_eq!(c1.derive("noise"), t.child("app/A2").derive("noise"));
    }

    #[test]
    fn splitmix_known_values_are_stable() {
        // Pinned so that seed-derivation changes are caught by tests:
        // experiment outputs depend on these.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }
}
