//! The discrete-event execution loop.
//!
//! [`Engine`] owns the simulated clock and the pending-event set; the caller
//! owns the world state `S`. Events are `FnOnce(&mut S, &mut Engine<S>)`
//! closures, so a handler can mutate the world *and* schedule follow-up
//! events. Execution is strictly ordered by `(time, insertion order)` — see
//! [`crate::queue::EventQueue`] — which makes every run deterministic.
//!
//! # Examples
//!
//! ```
//! use iotse_sim::engine::Engine;
//! use iotse_sim::time::{SimDuration, SimTime};
//!
//! // World state: a counter.
//! let mut hits = 0u32;
//! let mut engine = Engine::new();
//!
//! // A self-rescheduling periodic event.
//! fn tick(hits: &mut u32, engine: &mut Engine<u32>) {
//!     *hits += 1;
//!     if *hits < 5 {
//!         engine.schedule_in(SimDuration::from_millis(10), tick);
//!     }
//! }
//! engine.schedule_at(SimTime::ZERO, tick);
//! engine.run(&mut hits);
//!
//! assert_eq!(hits, 5);
//! assert_eq!(engine.now(), SimTime::from_millis(40));
//! ```

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A scheduled event handler.
pub type EventFn<S> = Box<dyn FnOnce(&mut S, &mut Engine<S>)>;

/// A plain-function event handler carrying two integer arguments — the
/// allocation-free fast path for dense periodic schedules (see
/// [`Engine::schedule_call`]).
pub type CallFn<S> = fn(&mut S, &mut Engine<S>, u64, u64);

enum EventBody<S> {
    /// A boxed closure: flexible, one heap allocation per event.
    Boxed(EventFn<S>),
    /// A plain `fn` plus two `u64` payload words: zero allocations. Dense
    /// schedules (the executor's per-tick events) use this so scheduling a
    /// million ticks costs no per-event heap traffic.
    Call { f: CallFn<S>, a: u64, b: u64 },
}

struct Event<S> {
    label: &'static str,
    body: EventBody<S>,
}

impl<S> std::fmt::Debug for Event<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event").field("label", &self.label).finish()
    }
}

/// Why [`Engine::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// The pending-event set drained completely.
    Drained,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// A handler called [`Engine::request_stop`].
    Stopped,
}

/// The discrete-event engine: clock plus pending-event set.
///
/// See the [module documentation](self) for an end-to-end example.
#[derive(Debug)]
pub struct Engine<S> {
    now: SimTime,
    queue: EventQueue<Event<S>>,
    executed: u64,
    stop_requested: bool,
}

impl<S> Engine<S> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            executed: 0,
            stop_requested: false,
        }
    }

    /// Creates an engine whose pending-event set has room for `events`
    /// without reallocating — callers that schedule a whole run up front
    /// (the executor schedules every tick of every window) avoid the heap's
    /// doubling regrowth.
    #[must_use]
    pub fn with_capacity(events: usize) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity(events),
            executed: 0,
            stop_requested: false,
        }
    }

    /// Creates an engine on the reference binary-heap queue backend
    /// ([`EventQueue::reference_with_capacity`]). The run loop, clock, and
    /// event contract are identical to [`Engine::with_capacity`]; only the
    /// queue's complexity profile differs. The tier-1 equivalence suite
    /// pins full-`RunResult` byte identity between the two.
    #[must_use]
    pub fn reference_with_capacity(events: usize) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::reference_with_capacity(events),
            executed: 0,
            stop_requested: false,
        }
    }

    /// `true` when this engine runs on the reference heap backend.
    #[must_use]
    pub fn is_reference(&self) -> bool {
        self.queue.is_reference()
    }

    /// The current simulated instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[must_use]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`Engine::now`] — simulated time
    /// never runs backwards.
    pub fn schedule_at(
        &mut self,
        time: SimTime,
        event: impl FnOnce(&mut S, &mut Engine<S>) + 'static,
    ) {
        self.schedule_labeled(time, "event", event);
    }

    /// Schedules `event` after the relative delay `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut S, &mut Engine<S>) + 'static,
    ) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at `time` with a static label that shows up in
    /// `Debug` output; useful when diagnosing stuck scenarios.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`Engine::now`].
    pub fn schedule_labeled(
        &mut self,
        time: SimTime,
        label: &'static str,
        event: impl FnOnce(&mut S, &mut Engine<S>) + 'static,
    ) {
        assert!(
            time >= self.now,
            "cannot schedule {label:?} at {time} which is before now ({})",
            self.now
        );
        self.queue.push(
            time,
            Event {
                label,
                body: EventBody::Boxed(Box::new(event)),
            },
        );
    }

    /// Schedules a plain-function event carrying two integer payload words.
    /// Unlike the closure-based `schedule_*` methods this allocates nothing:
    /// the handler and its arguments live inline in the event queue. Hot
    /// schedulers (the executor's tick fan-out) use this.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`Engine::now`].
    // iotse-lint: hot-path
    pub fn schedule_call(
        &mut self,
        time: SimTime,
        label: &'static str,
        f: CallFn<S>,
        a: u64,
        b: u64,
    ) {
        assert!(
            time >= self.now,
            "cannot schedule {label:?} at {time} which is before now ({})",
            self.now
        );
        self.queue.push(
            time,
            Event {
                label,
                body: EventBody::Call { f, a, b },
            },
        );
    }

    /// Schedules a whole batch of plain-function events in one call,
    /// reserving queue capacity up front (via
    /// [`crate::queue::EventQueue::push_batch`]) so a dense warm-up schedule
    /// — the executor schedules every tick of every window before the run
    /// starts — never regrows the heap mid-loop. Firing order is identical
    /// to calling [`Engine::schedule_call`] once per `(time, a, b)` tuple in
    /// iteration order.
    ///
    /// # Panics
    ///
    /// Panics if any time is earlier than [`Engine::now`].
    // iotse-lint: hot-path
    pub fn schedule_call_batch(
        &mut self,
        label: &'static str,
        f: CallFn<S>,
        calls: impl IntoIterator<Item = (SimTime, u64, u64)>,
    ) {
        let now = self.now;
        self.queue.push_batch(calls.into_iter().map(|(time, a, b)| {
            assert!(
                time >= now,
                "cannot schedule {label:?} at {time} which is before now ({now})"
            );
            (
                time,
                Event {
                    label,
                    body: EventBody::Call { f, a, b },
                },
            )
        }));
    }

    /// Asks the run loop to stop after the current handler returns. Pending
    /// events are kept, so a later `run*` call resumes where it left off.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// Executes the single earliest pending event, advancing the clock to its
    /// due time. Returns `false` if nothing was pending.
    pub fn step(&mut self, state: &mut S) -> bool {
        let Some(scheduled) = self.queue.pop() else {
            return false;
        };
        debug_assert!(scheduled.time >= self.now);
        self.now = scheduled.time;
        self.executed += 1;
        match scheduled.item.body {
            EventBody::Boxed(run) => run(state, self),
            EventBody::Call { f, a, b } => f(state, self, a, b),
        }
        true
    }

    /// Runs until the pending-event set drains or a handler requests a stop.
    pub fn run(&mut self, state: &mut S) -> RunOutcome {
        self.run_until(state, SimTime::MAX)
    }

    /// Runs until the pending-event set drains, a handler requests a stop, or
    /// the next event would fire strictly after `horizon`. On
    /// [`RunOutcome::HorizonReached`], the clock is advanced to exactly
    /// `horizon` (so time-weighted accounting can close out the interval) and
    /// later events remain pending.
    ///
    /// Same-tick entries are batch-drained: the loop peeks the frontier
    /// time once per tick and then pops with
    /// [`crate::queue::EventQueue::pop_at`] until the tick is exhausted —
    /// one slot visit fires the whole tick instead of a peek/pop pair per
    /// event. Events a handler schedules *at the current tick* join the
    /// same drain (they get higher seqs, so they fire after everything
    /// already pending at that tick), which is exactly the order the
    /// pop-per-event loop produced.
    // iotse-lint: hot-path
    pub fn run_until(&mut self, state: &mut S, horizon: SimTime) -> RunOutcome {
        self.stop_requested = false;
        loop {
            let t = match self.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > horizon => {
                    if horizon != SimTime::MAX {
                        self.now = self.now.max(horizon);
                    }
                    return RunOutcome::HorizonReached;
                }
                Some(t) => t,
            };
            debug_assert!(t >= self.now);
            self.now = t;
            while let Some(scheduled) = self.queue.pop_at(t) {
                self.executed += 1;
                match scheduled.item.body {
                    EventBody::Boxed(run) => run(state, self),
                    EventBody::Call { f, a, b } => f(state, self, a, b),
                }
                if self.stop_requested {
                    return RunOutcome::Stopped;
                }
            }
        }
    }
}

impl<S> Default for Engine<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_order_and_advance_clock() {
        let mut log: Vec<(u64, &str)> = Vec::new();
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_millis(2), |log: &mut Vec<(u64, &str)>, e| {
            log.push((e.now().as_millis(), "b"));
        });
        engine.schedule_at(SimTime::from_millis(1), |log: &mut Vec<(u64, &str)>, e| {
            log.push((e.now().as_millis(), "a"));
        });
        let outcome = engine.run(&mut log);
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(log, vec![(1, "a"), (2, "b")]);
        assert_eq!(engine.events_executed(), 2);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut total = 0u64;
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_millis(1), |total: &mut u64, e| {
            *total += 1;
            e.schedule_in(SimDuration::from_millis(1), |total: &mut u64, _| {
                *total += 10;
            });
        });
        engine.run(&mut total);
        assert_eq!(total, 11);
        assert_eq!(engine.now(), SimTime::from_millis(2));
    }

    #[test]
    fn run_until_leaves_later_events_pending() {
        let mut fired = Vec::new();
        let mut engine = Engine::new();
        for ms in [1u64, 5, 10] {
            engine.schedule_at(SimTime::from_millis(ms), move |fired: &mut Vec<u64>, _| {
                fired.push(ms);
            });
        }
        let outcome = engine.run_until(&mut fired, SimTime::from_millis(6));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(fired, vec![1, 5]);
        assert_eq!(engine.now(), SimTime::from_millis(6));
        assert_eq!(engine.events_pending(), 1);
        // Resuming picks up the rest.
        engine.run(&mut fired);
        assert_eq!(fired, vec![1, 5, 10]);
    }

    #[test]
    fn stop_request_halts_loop_but_keeps_events() {
        let mut count = 0u32;
        let mut engine = Engine::new();
        engine.schedule_at(
            SimTime::from_millis(1),
            |count: &mut u32, e: &mut Engine<u32>| {
                *count += 1;
                e.request_stop();
            },
        );
        engine.schedule_at(SimTime::from_millis(2), |count: &mut u32, _| {
            *count += 1;
        });
        assert_eq!(engine.run(&mut count), RunOutcome::Stopped);
        assert_eq!(count, 1);
        assert_eq!(engine.events_pending(), 1);
        assert_eq!(engine.run(&mut count), RunOutcome::Drained);
        assert_eq!(count, 2);
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule_at(SimTime::from_millis(5), |_, _| {});
        engine.run(&mut ());
        engine.schedule_at(SimTime::from_millis(1), |_, _| {});
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut order = Vec::new();
        let mut engine = Engine::new();
        for i in 0..10 {
            engine.schedule_at(SimTime::from_millis(3), move |order: &mut Vec<i32>, _| {
                order.push(i);
            });
        }
        engine.run(&mut order);
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn step_on_empty_returns_false() {
        let mut engine: Engine<()> = Engine::new();
        assert!(!engine.step(&mut ()));
    }

    #[test]
    fn scheduled_calls_interleave_with_closures_in_fifo_order() {
        fn push(log: &mut Vec<(u64, u64)>, e: &mut Engine<Vec<(u64, u64)>>, a: u64, b: u64) {
            let now = e.now().as_millis();
            log.push((now * 100 + a, b));
        }
        let mut log: Vec<(u64, u64)> = Vec::new();
        let mut engine = Engine::with_capacity(4);
        engine.schedule_call(SimTime::from_millis(2), "call", push, 1, 10);
        engine.schedule_at(SimTime::from_millis(2), |log: &mut Vec<(u64, u64)>, _| {
            log.push((999, 0));
        });
        engine.schedule_call(SimTime::from_millis(1), "call", push, 2, 20);
        assert_eq!(engine.run(&mut log), RunOutcome::Drained);
        // Time order first, then insertion order at the same instant.
        assert_eq!(log, vec![(102, 20), (201, 10), (999, 0)]);
        assert_eq!(engine.events_executed(), 3);
    }

    #[test]
    fn scheduled_calls_can_schedule_followups() {
        fn tick(count: &mut u64, e: &mut Engine<u64>, n: u64, _: u64) {
            *count += n;
            if n < 4 {
                e.schedule_call(
                    e.now() + SimDuration::from_millis(1),
                    "tick",
                    tick,
                    n + 1,
                    0,
                );
            }
        }
        let mut count = 0u64;
        let mut engine = Engine::new();
        engine.schedule_call(SimTime::ZERO, "tick", tick, 1, 0);
        engine.run(&mut count);
        assert_eq!(count, 1 + 2 + 3 + 4);
    }

    #[test]
    fn batched_calls_match_a_schedule_loop() {
        fn push(log: &mut Vec<u64>, _: &mut Engine<Vec<u64>>, a: u64, _: u64) {
            log.push(a);
        }
        let ticks = |_| (0..20u64).map(|i| (SimTime::from_millis(i % 5), i, 0));
        let mut batched: Vec<u64> = Vec::new();
        let mut engine = Engine::with_capacity(20);
        engine.schedule_call_batch("tick", push, ticks(()));
        engine.run(&mut batched);
        let mut looped: Vec<u64> = Vec::new();
        let mut reference = Engine::with_capacity(20);
        for (t, a, b) in ticks(()) {
            reference.schedule_call(t, "tick", push, a, b);
        }
        reference.run(&mut looped);
        assert_eq!(batched, looped);
        assert_eq!(engine.events_executed(), 20);
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn batch_scheduling_in_the_past_panics() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule_at(SimTime::from_millis(5), |_, _| {});
        engine.run(&mut ());
        engine.schedule_call_batch(
            "late",
            |_, _, _, _| {},
            [(SimTime::from_millis(1), 0u64, 0u64)],
        );
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_a_call_in_the_past_panics() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule_at(SimTime::from_millis(5), |_, _| {});
        engine.run(&mut ());
        engine.schedule_call(SimTime::from_millis(1), "late", |_, _, _, _| {}, 0, 0);
    }
}
