//! A deterministic metrics registry: named counters, gauges, and
//! fixed-bucket histograms.
//!
//! [`stats`](crate::stats) supplies the raw accumulators; this module adds
//! the *registry* layer an observability surface needs: metrics are
//! registered once by name (`iotse_<crate>_<name>`, enforced by lint rule
//! IOTSE-M09), addressed afterwards by a cheap interned id so the hot path
//! never hashes or allocates, and snapshot into a [`MetricsReport`] whose
//! ordering is stable (sorted by name) so exported text is byte-identical
//! across runs and across `--jobs` settings.
//!
//! Like everything in this crate the registry is plain data: no interior
//! mutability, no globals, no background aggregation. A scenario owns its
//! registry, and the fleet runner merges per-run [`MetricsReport`]s after
//! the fact.
//!
//! # Examples
//!
//! ```
//! use iotse_sim::metrics::MetricsRegistry;
//!
//! let mut reg = MetricsRegistry::new();
//! let reads = reg.counter("iotse_sim_reads_total");
//! let depth = reg.gauge("iotse_sim_queue_depth");
//! let bytes = reg.histogram("iotse_sim_payload_bytes", &[16.0, 256.0, 4096.0]);
//! reg.inc(reads);
//! reg.add(reads, 9);
//! reg.set_gauge(depth, 3.0);
//! reg.observe(bytes, 100.0);
//! let report = reg.snapshot();
//! assert_eq!(report.counters, vec![("iotse_sim_reads_total".to_string(), 10)]);
//! ```

use std::collections::BTreeMap;

use crate::stats::Histogram;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CounterId(u32);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GaugeId(u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HistogramId(u32);

/// A registry of named metrics, addressed by interned ids after
/// registration.
///
/// Registration is idempotent: asking for an existing name returns the
/// original handle (for histograms the bounds must match — two call sites
/// registering the same name with different buckets is a naming bug, and
/// panics).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    index: BTreeMap<String, Slot>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram, f64)>, // (name, buckets, sum)
}

/// What a registered name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Counter(u32),
    Gauge(u32),
    Histogram(u32),
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or looks up) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(slot) = self.index.get(name) {
            match slot {
                Slot::Counter(i) => return CounterId(*i),
                // iotse-lint: allow(IOTSE-E04) — kind clash is a naming bug
                _ => panic!("metric `{name}` already registered with another kind"),
            }
        }
        let i = self.counters.len() as u32;
        self.counters.push((name.to_string(), 0));
        self.index.insert(name.to_string(), Slot::Counter(i));
        CounterId(i)
    }

    /// Registers (or looks up) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(slot) = self.index.get(name) {
            match slot {
                Slot::Gauge(i) => return GaugeId(*i),
                // iotse-lint: allow(IOTSE-E04) — kind clash is a naming bug
                _ => panic!("metric `{name}` already registered with another kind"),
            }
        }
        let i = self.gauges.len() as u32;
        self.gauges.push((name.to_string(), 0.0));
        self.index.insert(name.to_string(), Slot::Gauge(i));
        GaugeId(i)
    }

    /// Registers (or looks up) the histogram `name` with the given bucket
    /// upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind or with
    /// different bounds, or if `bounds` is empty / not strictly increasing.
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistogramId {
        if let Some(slot) = self.index.get(name) {
            match slot {
                Slot::Histogram(i) => {
                    assert!(
                        self.histograms[*i as usize].1.bounds() == bounds,
                        "histogram `{name}` re-registered with different bounds"
                    );
                    return HistogramId(*i);
                }
                // iotse-lint: allow(IOTSE-E04) — kind clash is a naming bug
                _ => panic!("metric `{name}` already registered with another kind"),
            }
        }
        let i = self.histograms.len() as u32;
        self.histograms
            .push((name.to_string(), Histogram::with_bounds(bounds), 0.0));
        self.index.insert(name.to_string(), Slot::Histogram(i));
        HistogramId(i)
    }

    /// Adds one to a counter.
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0 as usize].1 += 1;
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize].1 += n;
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0 as usize].1 = value;
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: HistogramId, x: f64) {
        let (_, hist, sum) = &mut self.histograms[id.0 as usize];
        hist.record(x);
        *sum += x;
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize].1
    }

    /// Current value of a gauge.
    #[must_use]
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0 as usize].1
    }

    /// Snapshots every metric into a stable-ordered report.
    #[must_use]
    pub fn snapshot(&self) -> MetricsReport {
        let mut counters = self.counters.clone();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges = self.gauges.clone();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .iter()
            .map(|(name, hist, sum)| HistogramSnapshot {
                name: name.clone(),
                bounds: hist.bounds().to_vec(),
                counts: hist.bucket_counts().to_vec(),
                overflow: hist.overflow(),
                count: hist.total(),
                sum: *sum,
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsReport {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (same length as `bounds`).
    pub counts: Vec<u64>,
    /// Observations at or above the last bound.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0..=1.0`) from the fixed buckets by
    /// linear interpolation inside the bucket holding the target rank.
    ///
    /// The estimate is *biased by the bucket layout*: a bucket's
    /// observations are assumed uniformly spread between its lower edge
    /// (0.0 for the first bucket) and its upper bound, so the true
    /// quantile can be off by up to one bucket width. Ranks landing in
    /// the overflow region clamp to the last bound — the snapshot does
    /// not retain the magnitude of overflowing observations. Returns
    /// `None` for an empty histogram or a `q` outside `0.0..=1.0`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Nearest-rank target, 1-based: ceil(q * count), clamped to >= 1.
        // lint: q in [0, 1] times a tally far below 2^53 — small, non-negative
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, (&bound, &n)) in self.bounds.iter().zip(&self.counts).enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                // Position of the target rank inside this bucket, in (0, 1].
                // lint: both operands are bucket tallies far below 2^53
                #[allow(clippy::cast_precision_loss)]
                let frac = (target - seen) as f64 / n as f64;
                return Some(lower + (bound - lower) * frac);
            }
            seen += n;
        }
        // Target rank lies in the overflow region: clamp to the last bound.
        self.bounds.last().copied()
    }
}

/// A stable-ordered snapshot of a [`MetricsRegistry`] — every list is
/// sorted by metric name, so rendering a report yields byte-identical text
/// for identical runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsReport {
    /// `true` if the report carries no metrics at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter value by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Looks up a gauge value by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// Looks up a histogram snapshot by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|h| h.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i])
    }

    /// Merges `other` into this report: counters, histogram buckets and
    /// sums add; gauges add too (across a fleet a gauge like
    /// `iotse_energy_total_microjoules` reads as a per-scheme total —
    /// callers wanting a mean divide by run count).
    ///
    /// # Panics
    ///
    /// Panics if the same histogram name appears with different bounds —
    /// reports from differently-configured registries cannot be merged.
    pub fn merge(&mut self, other: &MetricsReport) {
        for (name, value) in &other.counters {
            match self.counters.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.counters[i].1 += value,
                Err(i) => self.counters.insert(i, (name.clone(), *value)),
            }
        }
        for (name, value) in &other.gauges {
            match self.gauges.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.gauges[i].1 += value,
                Err(i) => self.gauges.insert(i, (name.clone(), *value)),
            }
        }
        for hist in &other.histograms {
            match self.histograms.binary_search_by(|h| h.name.cmp(&hist.name)) {
                Ok(i) => {
                    let mine = &mut self.histograms[i];
                    assert!(
                        mine.bounds == hist.bounds,
                        "cannot merge histogram `{}`: bucket bounds differ",
                        hist.name
                    );
                    for (a, b) in mine.counts.iter_mut().zip(&hist.counts) {
                        *a += b;
                    }
                    mine.overflow += hist.overflow;
                    mine.count += hist.count;
                    mine.sum += hist.sum;
                }
                Err(i) => self.histograms.insert(i, hist.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("iotse_sim_x_total");
        let b = reg.counter("iotse_sim_x_total");
        assert_eq!(a, b);
        let g = reg.gauge("iotse_sim_g");
        assert_eq!(reg.gauge("iotse_sim_g"), g);
        let h = reg.histogram("iotse_sim_h", &[1.0, 2.0]);
        assert_eq!(reg.histogram("iotse_sim_h", &[1.0, 2.0]), h);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_clash_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("iotse_sim_x");
        reg.gauge("iotse_sim_x");
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_bounds_clash_panics() {
        let mut reg = MetricsRegistry::new();
        reg.histogram("iotse_sim_h", &[1.0]);
        reg.histogram("iotse_sim_h", &[2.0]);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let mut reg = MetricsRegistry::new();
        let z = reg.counter("iotse_sim_z_total");
        let a = reg.counter("iotse_sim_a_total");
        reg.add(z, 2);
        reg.inc(a);
        let report = reg.snapshot();
        assert_eq!(
            report.counters,
            vec![
                ("iotse_sim_a_total".to_string(), 1),
                ("iotse_sim_z_total".to_string(), 2),
            ]
        );
        assert_eq!(report.counter("iotse_sim_z_total"), Some(2));
        assert_eq!(report.counter("missing"), None);
    }

    #[test]
    fn histogram_snapshot_tracks_sum_and_overflow() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("iotse_sim_bytes", &[10.0, 100.0]);
        reg.observe(h, 5.0);
        reg.observe(h, 50.0);
        reg.observe(h, 500.0);
        let report = reg.snapshot();
        let snap = &report.histograms[0];
        assert_eq!(snap.counts, vec![1, 1]);
        assert_eq!(snap.overflow, 1);
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 555.0);
    }

    #[test]
    fn merge_sums_counters_gauges_and_buckets() {
        let mut a = MetricsRegistry::new();
        let c = a.counter("iotse_sim_c_total");
        let g = a.gauge("iotse_sim_g");
        let h = a.histogram("iotse_sim_h", &[10.0]);
        a.add(c, 3);
        a.set_gauge(g, 1.5);
        a.observe(h, 5.0);

        let mut b = MetricsRegistry::new();
        let c2 = b.counter("iotse_sim_c_total");
        let g2 = b.gauge("iotse_sim_g");
        let h2 = b.histogram("iotse_sim_h", &[10.0]);
        let only = b.counter("iotse_sim_only_total");
        b.add(c2, 4);
        b.set_gauge(g2, 2.5);
        b.observe(h2, 50.0);
        b.inc(only);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("iotse_sim_c_total"), Some(7));
        assert_eq!(merged.counter("iotse_sim_only_total"), Some(1));
        assert_eq!(merged.gauge("iotse_sim_g"), Some(4.0));
        let snap = &merged.histograms[0];
        assert_eq!(snap.counts, vec![1]);
        assert_eq!(snap.overflow, 1);
        assert_eq!(snap.sum, 55.0);
        // names still sorted after inserts
        let names: Vec<&str> = merged.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn histogram_lookup_by_name() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("iotse_sim_h_ms", &[1.0, 10.0]);
        reg.observe(h, 0.5);
        let report = reg.snapshot();
        assert_eq!(report.histogram("iotse_sim_h_ms").map(|s| s.count), Some(1));
        assert!(report.histogram("missing").is_none());
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("iotse_sim_h_ms", &[10.0, 20.0, 40.0]);
        for _ in 0..8 {
            reg.observe(h, 5.0); // first bucket (0, 10]
        }
        reg.observe(h, 15.0); // second bucket (10, 20]
        reg.observe(h, 30.0); // third bucket (20, 40]
        let snap = report_histogram(&reg);
        // Rank 5 of 10 → 5/8 through the (0, 10] bucket.
        assert_eq!(snap.quantile(0.5), Some(6.25));
        // Rank 9 → sole observation of (10, 20] → its upper bound.
        assert_eq!(snap.quantile(0.9), Some(20.0));
        // Rank 10 → sole observation of (20, 40] → its upper bound.
        assert_eq!(snap.quantile(1.0), Some(40.0));
        // Tiny q clamps to rank 1.
        assert_eq!(snap.quantile(0.0), Some(1.25));
    }

    #[test]
    fn quantile_overflow_clamps_to_last_bound() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("iotse_sim_h_ms", &[10.0]);
        reg.observe(h, 5.0);
        reg.observe(h, 999.0); // overflow — magnitude not retained
        let snap = report_histogram(&reg);
        assert_eq!(snap.quantile(1.0), Some(10.0));
    }

    #[test]
    fn quantile_rejects_empty_and_out_of_range() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("iotse_sim_h_ms", &[10.0]);
        let empty = report_histogram(&reg);
        assert_eq!(empty.quantile(0.5), None);
        reg.observe(h, 1.0);
        let snap = report_histogram(&reg);
        assert_eq!(snap.quantile(-0.1), None);
        assert_eq!(snap.quantile(1.1), None);
        assert_eq!(snap.quantile(f64::NAN), None);
    }

    fn report_histogram(reg: &MetricsRegistry) -> HistogramSnapshot {
        reg.snapshot().histograms[0].clone()
    }

    /// Pins the gauge merge contract: gauges *add* (they are per-run
    /// totals), they do not last-write-win or average. A fleet mean is
    /// `merged / runs`, computed by the caller.
    #[test]
    fn merge_gauges_add_not_overwrite() {
        let mut a = MetricsRegistry::new();
        let g = a.gauge("iotse_sim_total_uj");
        a.set_gauge(g, 10.0);
        let mut b = MetricsRegistry::new();
        let g2 = b.gauge("iotse_sim_total_uj");
        b.set_gauge(g2, 4.0);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        merged.merge(&b.snapshot());
        assert_eq!(merged.gauge("iotse_sim_total_uj"), Some(18.0));
        // Order-independence: b+a folds to the same sum as a+b.
        let mut other = b.snapshot();
        other.merge(&a.snapshot());
        assert_eq!(other.gauge("iotse_sim_total_uj"), Some(14.0));
    }

    #[test]
    #[should_panic(expected = "bucket bounds differ")]
    fn merge_mismatched_histogram_bounds_panics() {
        let mut a = MetricsRegistry::new();
        a.histogram("iotse_sim_h_ms", &[1.0, 2.0]);
        let mut b = MetricsRegistry::new();
        b.histogram("iotse_sim_h_ms", &[1.0, 4.0]);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
    }

    #[test]
    fn merge_into_empty_copies_everything() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("iotse_sim_c_total");
        reg.inc(c);
        let mut empty = MetricsReport::default();
        assert!(empty.is_empty());
        empty.merge(&reg.snapshot());
        assert_eq!(empty.counter("iotse_sim_c_total"), Some(1));
        assert!(!empty.is_empty());
    }
}
