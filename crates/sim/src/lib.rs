//! # iotse-sim — deterministic discrete-event simulation engine
//!
//! The foundation of the `iotse` workspace, which reproduces *"Understanding
//! Energy Efficiency in IoT App Executions"* (ICDCS 2019) in simulation. The
//! paper measured real hardware in real time; this crate supplies the
//! substitute clock: an exact, integer-nanosecond, deterministically-ordered
//! event loop plus the measurement primitives the energy model is built on.
//!
//! * [`time`] — [`SimTime`] / [`SimDuration`]
//!   integer-nanosecond clock types.
//! * [`queue`] — the pending-event set with deterministic FIFO tie-breaking.
//! * [`engine`] — the [`Engine`] execution loop.
//! * [`stats`] — counters, streaming moments, histograms, time-weighted
//!   averages.
//! * [`metrics`] — deterministic registry of named counters, gauges and
//!   histograms, snapshotable to a stable-ordered report.
//! * [`trace`] — structured execution traces: hierarchical spans with typed
//!   fields (used for the paper's Figure 5 timelines and the energy
//!   flamegraph fold).
//! * [`timeseries`] — fixed-capacity windowed time series plus streaming
//!   EWMA/CUSUM drift detectors and budget watchdogs (the windowed
//!   telemetry layer's storage and alerting primitives).
//! * [`rng`] — label-addressed deterministic RNG streams.
//!
//! # Examples
//!
//! A minimal periodic process:
//!
//! ```
//! use iotse_sim::engine::Engine;
//! use iotse_sim::time::{SimDuration, SimTime};
//!
//! #[derive(Default)]
//! struct World {
//!     samples: u32,
//! }
//!
//! fn sample(w: &mut World, e: &mut Engine<World>) {
//!     w.samples += 1;
//!     if w.samples < 1000 {
//!         e.schedule_in(SimDuration::from_millis(1), sample); // 1 kHz
//!     }
//! }
//!
//! let mut world = World::default();
//! let mut engine = Engine::new();
//! engine.schedule_at(SimTime::ZERO, sample);
//! engine.run(&mut world);
//! assert_eq!(world.samples, 1000);
//! assert_eq!(engine.now(), SimTime::from_millis(999));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod faults;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timeseries;
pub mod trace;

pub use engine::{Engine, RunOutcome};
pub use faults::{FaultKind, FaultPlan, FaultScript, FaultStats};
pub use metrics::{MetricsRegistry, MetricsReport};
pub use rng::SeedTree;
pub use time::{SimDuration, SimTime};
pub use trace::{SpanId, TraceKind, TraceLog};
