//! The pending-event set.
//!
//! A thin wrapper around [`BinaryHeap`] that orders events by `(time, seq)`
//! where `seq` is a monotonically increasing insertion counter. The counter
//! makes ordering **total and deterministic**: two events scheduled for the
//! same instant fire in the order they were scheduled (FIFO), which is the
//! property every experiment in this workspace relies on for bit-for-bit
//! reproducibility.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled entry: a payload due at `time`, with an insertion sequence
/// number used to break ties deterministically.
#[derive(Debug)]
pub struct Scheduled<T> {
    /// When the entry is due.
    pub time: SimTime,
    /// Insertion order, unique per queue.
    pub seq: u64,
    /// The payload.
    pub item: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timed events.
///
/// # Examples
///
/// ```
/// use iotse_sim::queue::EventQueue;
/// use iotse_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "late");
/// q.push(SimTime::from_millis(1), "early");
/// q.push(SimTime::from_millis(1), "early-second");
/// assert_eq!(q.pop().map(|s| s.item), Some("early"));
/// assert_eq!(q.pop().map(|s| s.item), Some("early-second"));
/// assert_eq!(q.pop().map(|s| s.item), Some("late"));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with space for `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `item` at `time`. Returns the sequence number assigned,
    /// which is unique within this queue and reflects insertion order.
    pub fn push(&mut self, time: SimTime, item: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, item });
        seq
    }

    /// Ensures space for at least `additional` more entries without
    /// regrowing the heap.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules every `(time, item)` pair of `batch`, reserving capacity up
    /// front (from the iterator's lower size hint) so bulk scheduling does
    /// not regrow the heap entry by entry. Sequence numbers are assigned in
    /// iteration order — the result is indistinguishable from calling
    /// [`EventQueue::push`] in a loop. Returns the number of entries pushed.
    pub fn push_batch(&mut self, batch: impl IntoIterator<Item = (SimTime, T)>) -> usize {
        let batch = batch.into_iter();
        self.reserve(batch.size_hint().0);
        let mut pushed = 0;
        for (time, item) in batch {
            self.push(time, item);
            pushed += 1;
        }
        pushed
    }

    /// Removes and returns the earliest entry (FIFO among ties), or `None`
    /// if the queue is empty.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop()
    }

    /// The due time of the earliest entry without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no entries are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of entries ever scheduled on this queue.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Discards all pending entries (the sequence counter keeps advancing,
    /// so determinism is unaffected).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.item)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.item)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), "a");
        q.push(SimTime::from_nanos(1), "b");
        assert_eq!(q.pop().unwrap().item, "b");
        q.push(SimTime::from_nanos(2), "c");
        q.push(SimTime::from_nanos(9), "d");
        assert_eq!(q.pop().unwrap().item, "c");
        assert_eq!(q.pop().unwrap().item, "a");
        assert_eq!(q.pop().unwrap().item, "d");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn batch_push_preserves_seq_order() {
        // A batch push must be indistinguishable from a push loop: ties
        // stay FIFO in iteration order, and interleaving with singleton
        // pushes keeps one monotone sequence.
        let t = SimTime::from_millis(3);
        let mut batched = EventQueue::new();
        batched.push(t, -1);
        let pushed = batched.push_batch((0..50).map(|i| {
            let time = if i % 2 == 0 {
                t
            } else {
                SimTime::from_millis(1)
            };
            (time, i)
        }));
        assert_eq!(pushed, 50);
        batched.push(SimTime::from_millis(1), 99);

        let mut looped = EventQueue::new();
        looped.push(t, -1);
        for i in 0..50 {
            let time = if i % 2 == 0 {
                t
            } else {
                SimTime::from_millis(1)
            };
            looped.push(time, i);
        }
        looped.push(SimTime::from_millis(1), 99);

        assert_eq!(batched.scheduled_total(), looped.scheduled_total());
        let drain = |mut q: EventQueue<i32>| -> Vec<(u64, i32)> {
            std::iter::from_fn(|| q.pop().map(|s| (s.seq, s.item))).collect()
        };
        assert_eq!(drain(batched), drain(looped));
    }

    #[test]
    fn batch_push_reserves_capacity() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.reserve(8);
        // An exact-size iterator's lower bound covers the whole batch, so
        // the push loop cannot regrow what reserve() set aside.
        let n = q.push_batch((0..8u32).map(|i| (SimTime::from_nanos(u64::from(i)), i)));
        assert_eq!(n, 8);
        assert_eq!(q.len(), 8);
        assert_eq!(q.pop().map(|s| s.item), Some(0));
    }

    #[test]
    fn counters_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
        // Sequence numbers continue after clear.
        let seq = q.push(SimTime::ZERO, 3);
        assert_eq!(seq, 2);
    }
}
