//! The pending-event set.
//!
//! [`EventQueue`] orders events by `(time, seq)` where `seq` is a
//! monotonically increasing insertion counter. The counter makes ordering
//! **total and deterministic**: two events scheduled for the same instant
//! fire in the order they were scheduled (FIFO), which is the property
//! every experiment in this workspace relies on for bit-for-bit
//! reproducibility.
//!
//! # Backends
//!
//! The default backend is a **hierarchical timer wheel**: [`LEVELS`]
//! fixed-size levels of [`SLOTS`] slots each, level 0 at a granularity of
//! 2^[`SLOT_NS_BITS`] ns (≈1.05 ms), each higher level 64× coarser.
//! Scheduling an event hashes its due time to a slot — O(1) — and firing
//! takes whole slots at a time, so the dominant periodic-tick traffic
//! never pays the O(log n) sift of a binary heap. Events beyond the
//! wheel's span (≈2.2 years of simulated time from the cursor) wait in a
//! small overflow heap and are cascaded in as the cursor approaches them.
//!
//! Determinism is preserved structurally: the wheel keeps a *current*
//! list — all entries due at or before the cursor's slot, sorted by
//! `(time, seq)` — whose head is always the global minimum. Advancing to
//! the next occupied slot sorts that slot's entries once (an alloc-free
//! linked-list mergesort over the node arena), so ties stay FIFO and a
//! drain is seq-for-seq identical to the reference heap's.
//!
//! [`EventQueue::reference`] builds the original [`BinaryHeap`] backend
//! instead. It is kept as the *oracle*: the property suites drain random
//! schedules through both backends and require identical output, and the
//! tier-1 equivalence tests pin full-`RunResult` byte identity between
//! engines on either backend.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Log2 of the level-0 slot width in nanoseconds: 2^20 ns ≈ 1.05 ms, finer
/// than any Table 2 sampling interval, so consecutive periodic ticks land
/// in distinct slots and each slot sort stays tiny.
const SLOT_NS_BITS: u32 = 20;
/// Log2 of the slot count per wheel level.
const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Slot-index mask within a level.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Wheel levels. Six levels of 64 slots cover 2^36 level-0 slots ≈ 2.2
/// simulated years from the cursor; anything farther overflows to a heap.
const LEVELS: usize = 6;
/// Null arena index (the intrusive lists' terminator).
const NIL: u32 = u32::MAX;
/// Mergesort bins — enough for runs of up to 2^32 nodes, the arena's
/// index-width ceiling.
const SORT_BINS: usize = 33;

/// A scheduled entry: a payload due at `time`, with an insertion sequence
/// number used to break ties deterministically.
#[derive(Debug)]
pub struct Scheduled<T> {
    /// When the entry is due.
    pub time: SimTime,
    /// Insertion order, unique per queue.
    pub seq: u64,
    /// The payload.
    pub item: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The level-0 slot tick a due time hashes to.
fn slot_tick(time: SimTime) -> u64 {
    time.as_nanos() >> SLOT_NS_BITS
}

/// The wheel level whose slot granularity separates `slot` from `cursor`.
/// Requires `slot > cursor`; a result `>= LEVELS` means overflow.
fn level_for(slot: u64, cursor: u64) -> usize {
    debug_assert!(slot > cursor);
    (((slot ^ cursor).leading_zeros() ^ 63) / LEVEL_BITS) as usize
}

/// One arena slot: an intrusive singly-linked node. `item` is `None` only
/// while the node sits on the free list (the crate forbids `unsafe`, so
/// the option is the vacancy marker; for payloads with a niche it is
/// layout-free).
struct Node<T> {
    time: SimTime,
    seq: u64,
    next: u32,
    item: Option<T>,
}

/// An overflow-heap key: the `(time, seq)` of an arena node whose due time
/// lies beyond the wheel's span.
struct FarEntry {
    time: SimTime,
    seq: u64,
    node: u32,
}

impl PartialEq for FarEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for FarEntry {}
impl PartialOrd for FarEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FarEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed, like `Scheduled`: earliest first out of the max-heap.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The hierarchical timer wheel backend.
///
/// Invariants (checked by the property/oracle suites):
///
/// 1. every wheel entry sits in a slot strictly after `cursor` at its
///    level; every overflow entry is beyond the wheel's span from
///    `cursor`;
/// 2. the *current* list holds every pending entry whose slot is `<=
///    cursor`, sorted ascending by `(time, seq)` — its head is the global
///    minimum (current times end before the next slot begins, wheel
///    levels order below higher levels, and the overflow is beyond the
///    whole wheel);
/// 3. eager advance: `len > 0` ⇔ `current != NIL`, which makes
///    [`Wheel::peek_front_time`] a borrow-free O(1) read.
struct Wheel<T> {
    /// Node storage; pops recycle indices through the free list, so the
    /// arena length is the high-water pending count, exactly like the
    /// reference heap's buffer.
    arena: Vec<Node<T>>,
    free_head: u32,
    free_len: usize,
    heads: [[u32; SLOTS]; LEVELS],
    tails: [[u32; SLOTS]; LEVELS],
    /// Per-level occupancy bitmaps: bit `s` set ⇔ slot `s` is non-empty.
    occupied: [u64; LEVELS],
    overflow: BinaryHeap<FarEntry>,
    /// The level-0 slot tick of the current list (`time >> SLOT_NS_BITS`).
    cursor: u64,
    current: u32,
    current_tail: u32,
    len: usize,
}

impl<T> Wheel<T> {
    fn with_arena_capacity(capacity: usize) -> Wheel<T> {
        Wheel {
            arena: Vec::with_capacity(capacity),
            free_head: NIL,
            free_len: 0,
            heads: [[NIL; SLOTS]; LEVELS],
            tails: [[NIL; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            cursor: 0,
            current: NIL,
            current_tail: NIL,
            len: 0,
        }
    }

    fn alloc_node(&mut self, time: SimTime, seq: u64, item: T) -> u32 {
        let idx = self.free_head;
        if idx != NIL {
            self.free_head = self.arena[idx as usize].next;
            self.free_len -= 1;
            let node = &mut self.arena[idx as usize];
            node.time = time;
            node.seq = seq;
            node.next = NIL;
            node.item = Some(item);
            return idx;
        }
        assert!(
            self.arena.len() < NIL as usize,
            "event arena exhausted (u32 index space)"
        );
        self.arena.push(Node {
            time,
            seq,
            next: NIL,
            item: Some(item),
        });
        (self.arena.len() - 1) as u32
    }

    // iotse-lint: hot-path
    fn push_entry(&mut self, time: SimTime, seq: u64, item: T) {
        let idx = self.alloc_node(time, seq, item);
        self.len += 1;
        self.place_node(idx);
        if self.current == NIL {
            self.advance_wheel();
        }
    }

    /// Routes a node to the current list, a wheel slot, or the overflow
    /// heap according to its slot's distance from the cursor.
    // iotse-lint: hot-path
    fn place_node(&mut self, idx: u32) {
        let time = self.arena[idx as usize].time;
        let slot = slot_tick(time);
        if slot <= self.cursor {
            self.link_current(idx);
            return;
        }
        let level = level_for(slot, self.cursor);
        if level >= LEVELS {
            let seq = self.arena[idx as usize].seq;
            self.overflow.push(FarEntry {
                time,
                seq,
                node: idx,
            });
            return;
        }
        let si = ((slot >> (LEVEL_BITS * level as u32)) & SLOT_MASK) as usize;
        self.arena[idx as usize].next = NIL;
        let tail = self.tails[level][si];
        if tail == NIL {
            self.heads[level][si] = idx;
        } else {
            self.arena[tail as usize].next = idx;
        }
        self.tails[level][si] = idx;
        self.occupied[level] |= 1 << si;
    }

    /// Sorted insert into the current list. Pushes carry fresh (maximal)
    /// sequence numbers, so the common case appends at the tail in O(1);
    /// the walk only runs for out-of-order times within the slot span.
    // iotse-lint: hot-path
    fn link_current(&mut self, idx: u32) {
        let time = self.arena[idx as usize].time;
        let seq = self.arena[idx as usize].seq;
        if self.current == NIL {
            self.arena[idx as usize].next = NIL;
            self.current = idx;
            self.current_tail = idx;
            return;
        }
        let tail = self.current_tail;
        let tail_key = (
            self.arena[tail as usize].time,
            self.arena[tail as usize].seq,
        );
        if tail_key <= (time, seq) {
            self.arena[idx as usize].next = NIL;
            self.arena[tail as usize].next = idx;
            self.current_tail = idx;
            return;
        }
        let mut prev = NIL;
        let mut cur = self.current;
        while cur != NIL {
            let key = (self.arena[cur as usize].time, self.arena[cur as usize].seq);
            if key > (time, seq) {
                break;
            }
            prev = cur;
            cur = self.arena[cur as usize].next;
        }
        self.arena[idx as usize].next = cur;
        if prev == NIL {
            self.current = idx;
        } else {
            self.arena[prev as usize].next = idx;
        }
        // The tail key was larger, so the insert landed strictly before
        // the tail and `current_tail` is unchanged.
    }

    // iotse-lint: hot-path
    fn peek_front_time(&self) -> Option<SimTime> {
        if self.current == NIL {
            None
        } else {
            Some(self.arena[self.current as usize].time)
        }
    }

    // iotse-lint: hot-path
    fn pop_front(&mut self) -> Option<Scheduled<T>> {
        let idx = self.current;
        if idx == NIL {
            return None;
        }
        let i = idx as usize;
        let time = self.arena[i].time;
        let seq = self.arena[i].seq;
        let item = self.arena[i].item.take()?;
        self.current = self.arena[i].next;
        if self.current == NIL {
            self.current_tail = NIL;
        }
        self.arena[i].next = self.free_head;
        self.free_head = idx;
        self.free_len += 1;
        self.len -= 1;
        if self.current == NIL && self.len > 0 {
            self.advance_wheel();
        }
        Some(Scheduled { time, seq, item })
    }

    /// Pops the head only if it is due exactly at `time` — the engine's
    /// batched same-tick drain. Because the current head is the global
    /// minimum, a `None` here means no pending entry is due at `time`.
    // iotse-lint: hot-path
    fn pop_front_at(&mut self, time: SimTime) -> Option<Scheduled<T>> {
        if self.current == NIL || self.arena[self.current as usize].time != time {
            return None;
        }
        self.pop_front()
    }

    fn take_slot(&mut self, level: usize, si: usize) -> u32 {
        let head = self.heads[level][si];
        self.heads[level][si] = NIL;
        self.tails[level][si] = NIL;
        self.occupied[level] &= !(1 << si);
        head
    }

    /// Moves the cursor to the next pending entry and rebuilds the
    /// current list from its slot. Precondition: current empty, `len > 0`.
    // iotse-lint: hot-path
    fn advance_wheel(&mut self) {
        debug_assert!(self.current == NIL && self.len > 0);
        loop {
            // Far-future events that now fit the wheel's span come in
            // first; the overflow minimum is beyond every wheel entry, so
            // refilling before the scan cannot reorder anything.
            self.refill_from_overflow();
            if self.current != NIL {
                return;
            }
            // Nearest occupied level-0 slot in the current window.
            let i0 = (self.cursor & SLOT_MASK) as u32;
            let future = if i0 as usize == SLOTS - 1 {
                0
            } else {
                !0u64 << (i0 + 1)
            };
            let avail = self.occupied[0] & future;
            if avail != 0 {
                let si = avail.trailing_zeros() as usize;
                self.cursor = (self.cursor & !SLOT_MASK) | si as u64;
                let head = self.take_slot(0, si);
                self.relink_current_sorted(head);
                return;
            }
            if self.cascade_one() {
                if self.current != NIL {
                    return;
                }
                continue;
            }
            // Wheel empty: re-anchor on the earliest far-future event;
            // the next refill pulls it (and any now-fitting followers) in.
            let Some(far) = self.overflow.peek() else {
                debug_assert!(false, "len > 0 with empty wheel and overflow");
                return;
            };
            self.cursor = slot_tick(far.time);
        }
    }

    /// Drains every overflow entry that fits the wheel (or is already due)
    /// back through [`Wheel::place_node`].
    // iotse-lint: hot-path
    fn refill_from_overflow(&mut self) {
        while let Some(far) = self.overflow.peek() {
            let slot = slot_tick(far.time);
            if slot > self.cursor && level_for(slot, self.cursor) >= LEVELS {
                return;
            }
            let Some(far) = self.overflow.pop() else {
                return;
            };
            self.place_node(far.node);
        }
    }

    /// Cascades the nearest occupied slot of the lowest non-empty upper
    /// level: jumps the cursor to that slot's start and redistributes its
    /// entries to lower levels (or straight into the current list when
    /// they land on the cursor's own slot). Lower-level entries always
    /// precede higher-level ones, so taking the lowest level first
    /// preserves global order. Returns `false` when the wheel is empty.
    // iotse-lint: hot-path
    fn cascade_one(&mut self) -> bool {
        for level in 1..LEVELS {
            let shift = LEVEL_BITS * level as u32;
            let li = ((self.cursor >> shift) & SLOT_MASK) as u32;
            let future = if li as usize == SLOTS - 1 {
                0
            } else {
                !0u64 << (li + 1)
            };
            let avail = self.occupied[level] & future;
            if avail == 0 {
                continue;
            }
            let si = avail.trailing_zeros() as usize;
            // Cursor jumps to the start of the cascaded slot: bits above
            // the level keep their value, the level's index becomes `si`,
            // everything below resets to zero.
            let above = self.cursor >> (shift + LEVEL_BITS) << (shift + LEVEL_BITS);
            self.cursor = above | ((si as u64) << shift);
            let mut node = self.take_slot(level, si);
            while node != NIL {
                let next = self.arena[node as usize].next;
                self.place_node(node);
                node = next;
            }
            return true;
        }
        false
    }

    /// Sorts a freshly taken slot list and installs it as the current
    /// list.
    // iotse-lint: hot-path
    fn relink_current_sorted(&mut self, head: u32) {
        let sorted = self.sort_slot_list(head);
        self.current = sorted;
        let mut tail = sorted;
        if tail != NIL {
            while self.arena[tail as usize].next != NIL {
                tail = self.arena[tail as usize].next;
            }
        }
        self.current_tail = tail;
    }

    /// Alloc-free bottom-up linked-list mergesort by `(time, seq)`:
    /// `bins[i]` holds a sorted run of 2^i nodes (or `NIL`), runs carry-
    /// merge as singletons arrive, and the bins fold into one list at the
    /// end. Keys are unique (seqs never repeat), so the order is total.
    // iotse-lint: hot-path
    fn sort_slot_list(&mut self, head: u32) -> u32 {
        let mut bins = [NIL; SORT_BINS];
        let mut node = head;
        while node != NIL {
            let next = self.arena[node as usize].next;
            self.arena[node as usize].next = NIL;
            let mut run = node;
            let mut i = 0;
            while bins[i] != NIL {
                run = self.merge_sorted(bins[i], run);
                bins[i] = NIL;
                i += 1;
            }
            bins[i] = run;
            node = next;
        }
        let mut sorted = NIL;
        for bin in bins {
            if bin != NIL {
                sorted = if sorted == NIL {
                    bin
                } else {
                    self.merge_sorted(bin, sorted)
                };
            }
        }
        sorted
    }

    /// Merges two `(time, seq)`-sorted node lists.
    // iotse-lint: hot-path
    fn merge_sorted(&mut self, mut a: u32, mut b: u32) -> u32 {
        let mut head = NIL;
        let mut tail = NIL;
        while a != NIL && b != NIL {
            let ka = (self.arena[a as usize].time, self.arena[a as usize].seq);
            let kb = (self.arena[b as usize].time, self.arena[b as usize].seq);
            let pick = if ka <= kb {
                let n = a;
                a = self.arena[a as usize].next;
                n
            } else {
                let n = b;
                b = self.arena[b as usize].next;
                n
            };
            if tail == NIL {
                head = pick;
            } else {
                self.arena[tail as usize].next = pick;
            }
            tail = pick;
        }
        let rest = if a != NIL { a } else { b };
        if tail == NIL {
            head = rest;
        } else {
            self.arena[tail as usize].next = rest;
        }
        head
    }

    fn reserve_entries(&mut self, additional: usize) {
        // Recycled free-list nodes absorb pushes before the arena grows.
        self.arena.reserve(additional.saturating_sub(self.free_len));
    }

    fn clear_entries(&mut self) {
        self.arena.clear();
        self.free_head = NIL;
        self.free_len = 0;
        self.heads = [[NIL; SLOTS]; LEVELS];
        self.tails = [[NIL; SLOTS]; LEVELS];
        self.occupied = [0; LEVELS];
        self.overflow.clear();
        self.cursor = 0;
        self.current = NIL;
        self.current_tail = NIL;
        self.len = 0;
    }
}

/// The reference backend: the original `(time, seq)`-ordered binary heap,
/// kept as the oracle the wheel is proven against.
struct RefHeap<T> {
    heap: BinaryHeap<Scheduled<T>>,
}

impl<T> RefHeap<T> {
    fn push_entry(&mut self, time: SimTime, seq: u64, item: T) {
        self.heap.push(Scheduled { time, seq, item });
    }

    fn peek_front_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    fn pop_front(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop()
    }

    fn pop_front_at(&mut self, time: SimTime) -> Option<Scheduled<T>> {
        match self.heap.peek() {
            Some(s) if s.time == time => self.heap.pop(),
            _ => None,
        }
    }

    fn pending_len(&self) -> usize {
        self.heap.len()
    }

    fn reserve_entries(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    fn clear_entries(&mut self) {
        self.heap.clear();
    }

    fn capacity_entries(&self) -> usize {
        self.heap.capacity()
    }
}

// The wheel's inline slot tables dwarf the reference heap, but every
// queue is wheel-backed except in oracle tests, and boxing the wheel
// would cost an extra heap allocation per engine — breaking the exact
// `allocs` parity the bench gate pins against the old heap engine.
#[allow(clippy::large_enum_variant)] // lint: boxing the wheel would break exact alloc-count parity
enum Backend<T> {
    Wheel(Wheel<T>),
    Heap(RefHeap<T>),
}

/// A deterministic priority queue of timed events.
///
/// # Examples
///
/// ```
/// use iotse_sim::queue::EventQueue;
/// use iotse_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "late");
/// q.push(SimTime::from_millis(1), "early");
/// q.push(SimTime::from_millis(1), "early-second");
/// assert_eq!(q.pop().map(|s| s.item), Some("early"));
/// assert_eq!(q.pop().map(|s| s.item), Some("early-second"));
/// assert_eq!(q.pop().map(|s| s.item), Some("late"));
/// assert!(q.is_empty());
/// ```
pub struct EventQueue<T> {
    backend: Backend<T>,
    next_seq: u64,
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let backend = match &self.backend {
            Backend::Wheel(_) => "wheel",
            Backend::Heap(_) => "heap",
        };
        f.debug_struct("EventQueue")
            .field("backend", &backend)
            .field("len", &self.len())
            .field("scheduled_total", &self.next_seq)
            .finish()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty timer-wheel queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            backend: Backend::Wheel(Wheel::with_arena_capacity(0)),
            next_seq: 0,
        }
    }

    /// Creates an empty timer-wheel queue with node storage for
    /// `capacity` concurrently pending events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            backend: Backend::Wheel(Wheel::with_arena_capacity(capacity)),
            next_seq: 0,
        }
    }

    /// Creates an empty queue on the reference binary-heap backend — the
    /// oracle the timer wheel is verified against. Ordering and the whole
    /// [`EventQueue`] contract are identical; only the complexity profile
    /// differs.
    #[must_use]
    pub fn reference() -> Self {
        EventQueue {
            backend: Backend::Heap(RefHeap {
                heap: BinaryHeap::new(),
            }),
            next_seq: 0,
        }
    }

    /// Like [`EventQueue::reference`], with space for `capacity` events.
    #[must_use]
    pub fn reference_with_capacity(capacity: usize) -> Self {
        EventQueue {
            backend: Backend::Heap(RefHeap {
                heap: BinaryHeap::with_capacity(capacity),
            }),
            next_seq: 0,
        }
    }

    /// `true` when this queue runs on the reference binary-heap backend.
    #[must_use]
    pub fn is_reference(&self) -> bool {
        matches!(self.backend, Backend::Heap(_))
    }

    /// Schedules `item` at `time`. Returns the sequence number assigned,
    /// which is unique within this queue and reflects insertion order.
    // iotse-lint: hot-path
    pub fn push(&mut self, time: SimTime, item: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Wheel(w) => w.push_entry(time, seq, item),
            Backend::Heap(h) => h.push_entry(time, seq, item),
        }
        seq
    }

    /// Ensures space for at least `additional` more entries without
    /// regrowing the backing storage.
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.backend {
            Backend::Wheel(w) => w.reserve_entries(additional),
            Backend::Heap(h) => h.reserve_entries(additional),
        }
    }

    /// Schedules every `(time, item)` pair of `batch`, reserving capacity
    /// up front so bulk scheduling does not regrow storage entry by entry.
    /// The reservation trusts the iterator's *upper* size hint when one is
    /// reported (an `ExactSizeIterator` reports `(n, Some(n))`; adapters
    /// like `take` may report a conservative lower bound with an exact
    /// upper), falling back to the lower bound otherwise. Sequence numbers
    /// are assigned in iteration order — the result is indistinguishable
    /// from calling [`EventQueue::push`] in a loop. Returns the number of
    /// entries pushed.
    pub fn push_batch(&mut self, batch: impl IntoIterator<Item = (SimTime, T)>) -> usize {
        let batch = batch.into_iter();
        let (lo, hi) = batch.size_hint();
        let bound = match hi {
            Some(hi) => hi,
            None => lo,
        };
        self.reserve(bound);
        let mut pushed = 0;
        for (time, item) in batch {
            self.push(time, item);
            pushed += 1;
        }
        pushed
    }

    /// Removes and returns the earliest entry (FIFO among ties), or `None`
    /// if the queue is empty.
    // iotse-lint: hot-path
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        match &mut self.backend {
            Backend::Wheel(w) => w.pop_front(),
            Backend::Heap(h) => h.pop_front(),
        }
    }

    /// Removes and returns the earliest entry only if it is due exactly at
    /// `time`. The engine's run loop drains a whole tick with one slot
    /// visit this way: `pop_at(t)` until `None`, no re-peek per event.
    // iotse-lint: hot-path
    pub fn pop_at(&mut self, time: SimTime) -> Option<Scheduled<T>> {
        match &mut self.backend {
            Backend::Wheel(w) => w.pop_front_at(time),
            Backend::Heap(h) => h.pop_front_at(time),
        }
    }

    /// The due time of the earliest entry without removing it.
    // iotse-lint: hot-path
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Wheel(w) => w.peek_front_time(),
            Backend::Heap(h) => h.peek_front_time(),
        }
    }

    /// Number of pending entries.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Wheel(w) => w.len,
            Backend::Heap(h) => h.pending_len(),
        }
    }

    /// `true` if no entries are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries the queue can hold concurrently without reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        match &self.backend {
            Backend::Wheel(w) => w.arena.capacity(),
            Backend::Heap(h) => h.capacity_entries(),
        }
    }

    /// Total number of entries ever scheduled on this queue.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Discards all pending entries (the sequence counter keeps advancing,
    /// so determinism is unaffected).
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Wheel(w) => w.clear_entries(),
            Backend::Heap(h) => h.clear_entries(),
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.item)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.item)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), "a");
        q.push(SimTime::from_nanos(1), "b");
        assert_eq!(q.pop().unwrap().item, "b");
        q.push(SimTime::from_nanos(2), "c");
        q.push(SimTime::from_nanos(9), "d");
        assert_eq!(q.pop().unwrap().item, "c");
        assert_eq!(q.pop().unwrap().item, "a");
        assert_eq!(q.pop().unwrap().item, "d");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn batch_push_preserves_seq_order() {
        // A batch push must be indistinguishable from a push loop: ties
        // stay FIFO in iteration order, and interleaving with singleton
        // pushes keeps one monotone sequence.
        let t = SimTime::from_millis(3);
        let mut batched = EventQueue::new();
        batched.push(t, -1);
        let pushed = batched.push_batch((0..50).map(|i| {
            let time = if i % 2 == 0 {
                t
            } else {
                SimTime::from_millis(1)
            };
            (time, i)
        }));
        assert_eq!(pushed, 50);
        batched.push(SimTime::from_millis(1), 99);

        let mut looped = EventQueue::new();
        looped.push(t, -1);
        for i in 0..50 {
            let time = if i % 2 == 0 {
                t
            } else {
                SimTime::from_millis(1)
            };
            looped.push(time, i);
        }
        looped.push(SimTime::from_millis(1), 99);

        assert_eq!(batched.scheduled_total(), looped.scheduled_total());
        let drain = |mut q: EventQueue<i32>| -> Vec<(u64, i32)> {
            std::iter::from_fn(|| q.pop().map(|s| (s.seq, s.item))).collect()
        };
        assert_eq!(drain(batched), drain(looped));
    }

    #[test]
    fn batch_push_reserves_capacity() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.reserve(8);
        // An exact-size iterator's lower bound covers the whole batch, so
        // the push loop cannot regrow what reserve() set aside.
        let n = q.push_batch((0..8u32).map(|i| (SimTime::from_nanos(u64::from(i)), i)));
        assert_eq!(n, 8);
        assert_eq!(q.len(), 8);
        assert_eq!(q.pop().map(|s| s.item), Some(0));
    }

    #[test]
    fn batch_push_trusts_an_exact_upper_hint() {
        // Regression: an iterator with a conservative lower bound but an
        // honest upper bound must still reserve once, up front. The old
        // code reserved `size_hint().0` (here 0) and regrew push by push.
        struct Hinted {
            produced: u64,
        }
        impl Iterator for Hinted {
            type Item = (SimTime, u64);
            fn next(&mut self) -> Option<Self::Item> {
                if self.produced >= 8 {
                    return None;
                }
                self.produced += 1;
                Some((SimTime::from_nanos(self.produced), self.produced))
            }
            fn size_hint(&self) -> (usize, Option<usize>) {
                (0, Some(100))
            }
        }
        for mut q in [EventQueue::new(), EventQueue::reference()] {
            assert_eq!(q.push_batch(Hinted { produced: 0 }), 8);
            assert_eq!(q.len(), 8);
            assert!(
                q.capacity() >= 100,
                "upper hint not reserved: capacity {}",
                q.capacity()
            );
        }
    }

    #[test]
    fn counters_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
        // Sequence numbers continue after clear.
        let seq = q.push(SimTime::ZERO, 3);
        assert_eq!(seq, 2);
    }

    #[test]
    fn clear_resets_the_wheel_for_reuse() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "wheel");
        q.push(SimTime::from_secs(500_000_000), "overflow");
        q.push(SimTime::from_nanos(3), "current");
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|s| s.item), None);
        // The cleared wheel orders a fresh schedule correctly.
        q.push(SimTime::from_millis(2), "b");
        q.push(SimTime::from_millis(1), "a");
        assert_eq!(q.pop().map(|s| s.item), Some("a"));
        assert_eq!(q.pop().map(|s| s.item), Some("b"));
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = EventQueue::new();
        // Beyond the wheel span (≈2.2 simulated years): overflow heap.
        let far = SimTime::from_secs(200_000_000);
        let farther = SimTime::from_secs(300_000_000);
        q.push(far, "far");
        q.push(SimTime::from_millis(1), "near");
        q.push(farther, "farther");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.pop().map(|s| s.item), Some("near"));
        assert_eq!(q.pop().map(|s| s.item), Some("far"));
        // After the re-anchor on `far`, a "past" push (relative to the
        // advanced cursor) must still come out first.
        q.push(SimTime::from_secs(1), "late-but-early");
        assert_eq!(q.pop().map(|s| s.item), Some("late-but-early"));
        assert_eq!(q.pop().map(|s| s.item), Some("farther"));
        assert!(q.is_empty());
    }

    #[test]
    fn cascades_span_every_level() {
        // One event per wheel level (plus overflow), pushed in reverse.
        let mut q = EventQueue::new();
        let mut times: Vec<SimTime> = (0..7u32)
            .map(|k| SimTime::from_nanos(1u64 << (SLOT_NS_BITS + LEVEL_BITS * k)))
            .collect();
        times.push(SimTime::from_nanos(7));
        for (i, &t) in times.iter().rev().enumerate() {
            q.push(t, i);
        }
        times.sort();
        let drained: Vec<SimTime> = std::iter::from_fn(|| q.pop().map(|s| s.time)).collect();
        assert_eq!(drained, times);
    }

    #[test]
    fn pop_at_only_matches_the_due_head() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(4);
        q.push(t, 1);
        q.push(t, 2);
        q.push(SimTime::from_millis(9), 3);
        assert_eq!(q.pop_at(SimTime::from_millis(1)), None);
        assert_eq!(q.pop_at(t).map(|s| s.item), Some(1));
        assert_eq!(q.pop_at(t).map(|s| s.item), Some(2));
        assert_eq!(q.pop_at(t), None);
        assert_eq!(q.pop_at(SimTime::from_millis(9)).map(|s| s.item), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn reference_backend_honors_the_same_contract() {
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::reference();
        assert!(!wheel.is_reference());
        assert!(heap.is_reference());
        for (t, v) in [(30u64, 3), (10, 1), (10, 2), (20, 4)] {
            wheel.push(SimTime::from_nanos(t), v);
            heap.push(SimTime::from_nanos(t), v);
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(
                a.as_ref().map(|s| (s.time, s.seq, s.item)),
                b.as_ref().map(|s| (s.time, s.seq, s.item))
            );
            if a.is_none() {
                break;
            }
        }
        assert_eq!(wheel.scheduled_total(), heap.scheduled_total());
    }

    #[test]
    fn wheel_matches_reference_on_random_interleavings() {
        // In-module mini-oracle (the full suite lives in
        // tests/properties.rs): random pushes at mixed magnitudes with
        // interleaved pops drain seq-for-seq identically on both backends.
        for case in 0..40u64 {
            let mut rng = SimRng::seed_from_u64(0x7EE1_0000 ^ case);
            let mut wheel = EventQueue::new();
            let mut heap = EventQueue::reference();
            for op in 0..300u64 {
                if rng.gen_bool(0.3) && !heap.is_empty() {
                    let a = wheel.pop();
                    let b = heap.pop();
                    assert_eq!(
                        a.as_ref().map(|s| (s.time, s.seq, s.item)),
                        b.as_ref().map(|s| (s.time, s.seq, s.item)),
                        "case {case} op {op}"
                    );
                } else {
                    let magnitude = rng.gen_range(0..60u32);
                    let t = SimTime::from_nanos(rng.gen_range(0..(4u64 << magnitude)));
                    wheel.push(t, op);
                    heap.push(t, op);
                }
                assert_eq!(wheel.peek_time(), heap.peek_time(), "case {case} op {op}");
                assert_eq!(wheel.len(), heap.len());
            }
            while let Some(b) = heap.pop() {
                let a = wheel.pop().expect("wheel drained early");
                assert_eq!((a.time, a.seq, a.item), (b.time, b.seq, b.item));
            }
            assert!(wheel.is_empty());
        }
    }
}
