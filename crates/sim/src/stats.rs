//! Measurement primitives used across the workspace.
//!
//! Everything here is plain data — no interior mutability, no background
//! threads — so statistics never perturb determinism.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use iotse_sim::stats::Counter;
///
/// let mut interrupts = Counter::new("interrupts");
/// interrupts.add(999);
/// interrupts.incr();
/// assert_eq!(interrupts.value(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a diagnostic name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// Streaming mean/variance/min/max over `f64` observations
/// (Welford's algorithm — numerically stable, O(1) memory).
///
/// # Examples
///
/// ```
/// use iotse_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN — a NaN observation would silently poison every
    /// derived statistic.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divide by N), or 0 when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (divide by N−1), or 0 with fewer than two samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Smallest observation, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-bucket histogram over non-negative `f64` values, with an explicit
/// overflow bucket.
///
/// # Examples
///
/// ```
/// use iotse_sim::stats::Histogram;
///
/// let mut h = Histogram::with_bounds(&[1.0, 10.0, 100.0]);
/// h.record(0.5);   // bucket 0: < 1
/// h.record(5.0);   // bucket 1: [1, 10)
/// h.record(1e6);   // overflow
/// assert_eq!(h.bucket_counts(), &[1, 1, 0]);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram whose bucket `i` covers `[bounds[i-1], bounds[i])`
    /// (bucket 0 covers everything below `bounds[0]`).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        match self.bounds.iter().position(|&b| x < b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Per-bucket counts (same length as the bounds).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of observations at or above the last bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The bucket upper bounds this histogram was built with.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

/// Time-weighted accumulator: tracks how long a quantity held each value,
/// yielding exact time-weighted averages (e.g. average power over a run).
///
/// # Examples
///
/// ```
/// use iotse_sim::stats::TimeWeighted;
/// use iotse_sim::time::SimTime;
///
/// let mut w = TimeWeighted::new(SimTime::ZERO, 5.0);
/// w.set(SimTime::from_millis(2), 1.0); // 5.0 held for 2 ms
/// w.finish(SimTime::from_millis(4));   // 1.0 held for 2 ms
/// assert_eq!(w.time_weighted_mean(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    last_change: SimTime,
    current: f64,
    weighted_sum: f64, // value × seconds
    elapsed: SimDuration,
}

impl TimeWeighted {
    /// Starts tracking at `start` with initial value `value`.
    #[must_use]
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_change: start,
            current: value,
            weighted_sum: 0.0,
            elapsed: SimDuration::ZERO,
        }
    }

    /// Updates the value at instant `now`, accumulating the span the previous
    /// value was held.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let held = now.duration_since(self.last_change);
        self.weighted_sum += self.current * held.as_secs_f64();
        self.elapsed += held;
        self.last_change = now;
        self.current = value;
    }

    /// Closes out the interval ending at `now` without changing the value.
    pub fn finish(&mut self, now: SimTime) {
        let current = self.current;
        self.set(now, current);
    }

    /// The currently-held value.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Integral of value over time, in value-seconds.
    #[must_use]
    pub fn integral(&self) -> f64 {
        self.weighted_sum
    }

    /// Total tracked span.
    #[must_use]
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Time-weighted mean over the tracked span, or the current value if no
    /// time has elapsed.
    #[must_use]
    pub fn time_weighted_mean(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            self.current
        } else {
            self.weighted_sum / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let mut c = Counter::new("x");
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c.to_string(), "x = 5");
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn online_stats_matches_closed_form() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let mut s = OnlineStats::new();
        xs.iter().for_each(|&x| s.record(x));
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert!((s.population_variance() - 1.25).abs() < 1e-12);
        assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.sum(), 10.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for i in 0..50 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn online_stats_rejects_nan() {
        OnlineStats::new().record(f64::NAN);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::with_bounds(&[10.0, 20.0]);
        for x in [5.0, 9.9, 10.0, 19.9, 20.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.bucket_counts(), &[2, 2]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_bounds() {
        let _ = Histogram::with_bounds(&[1.0, 1.0]);
    }

    #[test]
    fn time_weighted_mean_is_exact() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 0.0);
        w.set(SimTime::from_millis(10), 100.0); // 0 held 10 ms
        w.set(SimTime::from_millis(30), 0.0); // 100 held 20 ms
        w.finish(SimTime::from_millis(40)); // 0 held 10 ms
                                            // (0*10 + 100*20 + 0*10) / 40 = 50
        assert_eq!(w.time_weighted_mean(), 50.0);
        assert_eq!(w.elapsed(), SimDuration::from_millis(40));
        assert!((w.integral() - 100.0 * 0.020).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_zero_span_returns_current() {
        let w = TimeWeighted::new(SimTime::ZERO, 7.5);
        assert_eq!(w.time_weighted_mean(), 7.5);
    }
}
