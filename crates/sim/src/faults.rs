//! Deterministic, scripted fault injection.
//!
//! A [`FaultScript`] declares one fault — *what* goes wrong
//! ([`FaultKind`]), *where* (target slots), *when* (start + duration) and
//! under which `seed` its random decisions replay. A [`FaultPlan`] compiles
//! a list of scripts against the scenario's [`SeedTree`] into per-script
//! random streams and answers the executor's questions at injection points:
//! "does this read survive?", "how long is this transfer really?",
//! "when does the partition lift?".
//!
//! # Determinism contract
//!
//! Fault decisions are a pure function of `(scenario seed, script index,
//! script seed, query order)`. Every injection point consumes its script's
//! stream in simulation-event order, which the engine already fixes, so a
//! faulted run replays bitwise across processes and `--jobs` levels. A
//! scenario with no scripts builds no plan, draws no random numbers and
//! schedules no events: faults *off* is indistinguishable from the layer
//! not existing.
//!
//! The plan also tallies [`FaultStats`] — exact counters (`faults_injected`,
//! `samples_dropped`, `bytes_corrupted`) that the bench suite gates
//! bit-for-bit against its committed baseline.

use crate::rng::{SeedTree, SimRng};
use crate::time::{SimDuration, SimTime};

/// What goes wrong. Sensor kinds act on the sampling path, link kinds on
/// the bus transfer path, and the remaining kinds on the engine itself.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The target sensors stop answering: every Task-I read attempt in the
    /// window fails with probability `probability`, and a sample whose
    /// retries are exhausted is lost.
    SensorDropout {
        /// Chance in `[0, 1]` that a given sampling event is dropped.
        probability: f64,
    },
    /// The target sensors latch: the first value read inside the window is
    /// returned for every subsequent read until the window ends.
    SensorStuckAt,
    /// The target sensors read noisy: a random offset of up to `amplitude`
    /// (engineering units) is added to every value read in the window.
    SensorNoiseBurst {
        /// Peak absolute offset added to scalar/axis values.
        amplitude: f64,
    },
    /// The serial link corrupts roughly `per_byte` of the bytes on the
    /// wire; corrupted bytes are retransmitted, stretching transfer time.
    LinkCorruption {
        /// Expected fraction in `[0, 1]` of payload bytes corrupted.
        per_byte: f64,
    },
    /// The serial link is down: transfers that would start inside the
    /// window wait for it to lift before touching the wire.
    LinkPartition,
    /// The MCU reference clock runs slow: sensor-read overhead inside the
    /// window stretches by `ppm` parts per million.
    ClockDrift {
        /// Drift in parts per million of nominal read overhead.
        ppm: u32,
    },
    /// A misbehaving peripheral raises spurious interrupts at `rate_hz`
    /// for the window's duration, each paid for like a real one.
    InterruptStorm {
        /// Spurious-interrupt rate in events per second.
        rate_hz: u32,
    },
}

impl FaultKind {
    /// Stable kebab-case name, used in reports and traces.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::SensorDropout { .. } => "sensor-dropout",
            FaultKind::SensorStuckAt => "sensor-stuck-at",
            FaultKind::SensorNoiseBurst { .. } => "sensor-noise-burst",
            FaultKind::LinkCorruption { .. } => "link-corruption",
            FaultKind::LinkPartition => "link-partition",
            FaultKind::ClockDrift { .. } => "clock-drift",
            FaultKind::InterruptStorm { .. } => "interrupt-storm",
        }
    }

    /// Whether this kind acts on the sensor sampling path (and therefore
    /// respects per-sensor target slots).
    #[must_use]
    pub fn is_sensor(&self) -> bool {
        matches!(
            self,
            FaultKind::SensorDropout { .. }
                | FaultKind::SensorStuckAt
                | FaultKind::SensorNoiseBurst { .. }
        )
    }
}

/// One scheduled fault: a kind, the slots it targets, a time window and a
/// seed namespacing its random stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScript {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Sensor slots this fault applies to (positions in the platform's
    /// sensor table). Empty means "all". Ignored by non-sensor kinds.
    pub targets: Vec<u16>,
    /// When the fault begins.
    pub start: SimTime,
    /// How long it lasts. The active window is `[start, start + duration)`.
    pub duration: SimDuration,
    /// Seed for this script's random decisions, mixed with the scenario
    /// seed. Two scripts differing only in seed produce distinct schedules.
    pub seed: u64,
}

impl FaultScript {
    /// Creates a script for `kind` active over `[start, start + duration)`
    /// with seed 0 and no target restriction.
    ///
    /// # Panics
    ///
    /// Panics if the kind carries a probability or fraction outside
    /// `[0, 1]`.
    #[must_use]
    pub fn new(kind: FaultKind, start: SimTime, duration: SimDuration) -> Self {
        if let FaultKind::SensorDropout { probability: p }
        | FaultKind::LinkCorruption { per_byte: p } = kind
        {
            assert!(
                (0.0..=1.0).contains(&p),
                "fault probability must be in [0, 1], got {p}"
            );
        }
        FaultScript {
            kind,
            targets: Vec::new(),
            start,
            duration,
            seed: 0,
        }
    }

    /// Restricts the script to one sensor slot (may be chained).
    #[must_use]
    pub fn target(mut self, slot: u16) -> Self {
        self.targets.push(slot);
        self
    }

    /// Sets the script's seed.
    #[must_use]
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether the script is active at `t`.
    #[must_use]
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end()
    }

    /// The first instant after the fault window.
    #[must_use]
    pub fn end(&self) -> SimTime {
        self.start.saturating_add(self.duration)
    }

    /// Whether the script applies to sensor slot `slot` (non-sensor kinds
    /// never do; an empty target list matches every slot).
    #[must_use]
    pub fn targets_slot(&self, slot: u16) -> bool {
        self.kind.is_sensor() && (self.targets.is_empty() || self.targets.contains(&slot))
    }
}

/// Exact counters of what the plan actually did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Individual fault firings: dropped reads, stuck/noisy reads, delayed
    /// or corrupted transfers, drift-stretched reads, storm interrupts.
    pub faults_injected: u64,
    /// Sampling events lost to dropout after retry exhaustion.
    pub samples_dropped: u64,
    /// Payload bytes corrupted on the wire (and retransmitted).
    pub bytes_corrupted: u64,
}

/// What a sensor-path fault decided for one sampling event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorDisposition {
    /// The read is lost: every retry fails and the sample never arrives.
    Drop,
    /// The sensor is latched: return the first value read in the window.
    Stick,
    /// Add a noise offset (engineering units) to the value read.
    Noise(f64),
}

/// One script compiled with its random stream.
#[derive(Debug)]
struct ScriptRt {
    script: FaultScript,
    rng: SimRng,
}

/// A compiled fault schedule: scripts plus per-script random streams,
/// queried by the executor at each injection point.
#[derive(Debug)]
pub struct FaultPlan {
    scripts: Vec<ScriptRt>,
    stats: FaultStats,
}

impl FaultPlan {
    /// Compiles `scripts` against the scenario's seed tree. Each script's
    /// stream is derived from the `faults` namespace, its position and its
    /// own seed, so editing one script never perturbs another's draws.
    #[must_use]
    pub fn new(seeds: &SeedTree, scripts: &[FaultScript]) -> Self {
        let ns = seeds.child("faults");
        let compiled = scripts
            .iter()
            .enumerate()
            .map(|(i, s)| ScriptRt {
                script: s.clone(),
                rng: ns
                    .child(&format!("script-{i}"))
                    .stream(&format!("seed-{}", s.seed)),
            })
            .collect();
        FaultPlan {
            scripts: compiled,
            stats: FaultStats::default(),
        }
    }

    /// Whether the plan holds no scripts at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scripts.is_empty()
    }

    /// The counters tallied so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Stable kind names of the scripts in declaration order (duplicates
    /// removed, order preserved).
    #[must_use]
    pub fn kinds(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for s in &self.scripts {
            let name = s.script.kind.name();
            if !out.contains(&name) {
                out.push(name);
            }
        }
        out
    }

    /// Decides what happens to a sampling event on sensor `slot` at `now`.
    /// The first active script targeting the slot decides; dropout draws
    /// one Bernoulli per query, noise one amplitude per query. `None`
    /// means the read proceeds untouched.
    pub fn sensor_disposition(&mut self, slot: u16, now: SimTime) -> Option<SensorDisposition> {
        for rt in &mut self.scripts {
            if !(rt.script.active_at(now) && rt.script.targets_slot(slot)) {
                continue;
            }
            match rt.script.kind {
                FaultKind::SensorDropout { probability } => {
                    if rt.rng.gen_bool(probability) {
                        self.stats.faults_injected += 1;
                        self.stats.samples_dropped += 1;
                        return Some(SensorDisposition::Drop);
                    }
                    return None;
                }
                FaultKind::SensorStuckAt => {
                    self.stats.faults_injected += 1;
                    return Some(SensorDisposition::Stick);
                }
                FaultKind::SensorNoiseBurst { amplitude } => {
                    let offset = (rt.rng.gen::<f64>() * 2.0 - 1.0) * amplitude;
                    self.stats.faults_injected += 1;
                    return Some(SensorDisposition::Noise(offset));
                }
                _ => {}
            }
        }
        None
    }

    /// Extra sensor-read overhead due to clock drift active at `now`.
    /// Integer ppm arithmetic — no random draws, no rounding drift.
    pub fn drift_extra(&mut self, base: SimDuration, now: SimTime) -> SimDuration {
        let mut extra_ns = 0u64;
        for rt in &mut self.scripts {
            if let FaultKind::ClockDrift { ppm } = rt.script.kind {
                if rt.script.active_at(now) {
                    extra_ns += base.as_nanos().saturating_mul(u64::from(ppm)) / 1_000_000;
                }
            }
        }
        if extra_ns > 0 {
            self.stats.faults_injected += 1;
        }
        SimDuration::from_nanos(extra_ns)
    }

    /// If a transfer ready at `ready` falls inside a link partition,
    /// returns the instant the partition lifts (the latest end among
    /// active partitions); otherwise `None`.
    pub fn partition_release(&mut self, ready: SimTime) -> Option<SimTime> {
        let mut release: Option<SimTime> = None;
        for rt in &self.scripts {
            if matches!(rt.script.kind, FaultKind::LinkPartition) && rt.script.active_at(ready) {
                let end = rt.script.end();
                release = Some(release.map_or(end, |r| r.max(end)));
            }
        }
        if release.is_some() {
            self.stats.faults_injected += 1;
        }
        release
    }

    /// How many of `bytes` payload bytes are corrupted (and retransmitted)
    /// for a transfer starting at `now`. Expected count is `bytes *
    /// per_byte`; the fractional part is settled with one Bernoulli draw
    /// so the counter stays integral and exactly reproducible.
    pub fn corrupted_bytes(&mut self, now: SimTime, bytes: u64) -> u64 {
        let mut corrupted = 0u64;
        for rt in &mut self.scripts {
            if let FaultKind::LinkCorruption { per_byte } = rt.script.kind {
                if rt.script.active_at(now) && bytes > 0 {
                    let expected = bytes as f64 * per_byte;
                    let whole = expected.floor();
                    let frac = expected - whole;
                    let mut n = whole as u64;
                    if frac > 0.0 && rt.rng.gen_bool(frac) {
                        n += 1;
                    }
                    corrupted += n.min(bytes);
                }
            }
        }
        if corrupted > 0 {
            self.stats.faults_injected += 1;
            self.stats.bytes_corrupted += corrupted;
        }
        corrupted
    }

    /// The spurious-interrupt schedule of every interrupt-storm script:
    /// evenly spaced instants inside each window, merged and sorted. No
    /// random draws — a storm's timing is part of its declaration.
    #[must_use]
    pub fn storm_schedule(&self) -> Vec<SimTime> {
        let mut times = Vec::new();
        for rt in &self.scripts {
            if let FaultKind::InterruptStorm { rate_hz } = rt.script.kind {
                if rate_hz == 0 || rt.script.duration == SimDuration::ZERO {
                    continue;
                }
                let interval_ns = 1_000_000_000u64 / u64::from(rate_hz);
                if interval_ns == 0 {
                    continue;
                }
                let mut t = rt.script.start;
                while t < rt.script.end() {
                    times.push(t);
                    t = t.saturating_add(SimDuration::from_nanos(interval_ns));
                }
            }
        }
        times.sort_unstable();
        times
    }

    /// Records one spurious storm interrupt actually raised.
    pub fn note_storm_interrupt(&mut self) {
        self.stats.faults_injected += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dropout(p: f64) -> FaultScript {
        FaultScript::new(
            FaultKind::SensorDropout { probability: p },
            SimTime::from_millis(100),
            SimDuration::from_millis(200),
        )
    }

    #[test]
    fn windows_are_half_open() {
        let s = dropout(1.0);
        assert!(!s.active_at(SimTime::from_millis(99)));
        assert!(s.active_at(SimTime::from_millis(100)));
        assert!(s.active_at(SimTime::from_millis(299)));
        assert!(!s.active_at(SimTime::from_millis(300)));
    }

    #[test]
    fn empty_targets_match_all_sensor_slots() {
        let s = dropout(1.0);
        assert!(s.targets_slot(0));
        assert!(s.targets_slot(9));
        let t = dropout(1.0).target(3);
        assert!(t.targets_slot(3));
        assert!(!t.targets_slot(4));
    }

    #[test]
    fn link_kinds_never_target_sensor_slots() {
        let s = FaultScript::new(
            FaultKind::LinkPartition,
            SimTime::ZERO,
            SimDuration::from_millis(10),
        );
        assert!(!s.targets_slot(0));
    }

    #[test]
    #[should_panic(expected = "fault probability")]
    fn out_of_range_probability_is_rejected() {
        let _ = dropout(1.5);
    }

    #[test]
    fn plans_replay_exactly_for_the_same_seeds() {
        let scripts = vec![dropout(0.5).seeded(7), dropout(0.25).target(2).seeded(8)];
        let seeds = SeedTree::new(42);
        let mut a = FaultPlan::new(&seeds, &scripts);
        let mut b = FaultPlan::new(&seeds, &scripts);
        for i in 0..500u64 {
            let t = SimTime::from_millis(100 + (i % 200));
            assert_eq!(
                a.sensor_disposition((i % 4) as u16, t),
                b.sensor_disposition((i % 4) as u16, t)
            );
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().faults_injected > 0, "p=0.5 over 500 draws");
        assert_eq!(a.stats().faults_injected, a.stats().samples_dropped);
    }

    #[test]
    fn different_script_seeds_give_distinct_schedules() {
        let seeds = SeedTree::new(42);
        let mut a = FaultPlan::new(&seeds, &[dropout(0.5).seeded(1)]);
        let mut b = FaultPlan::new(&seeds, &[dropout(0.5).seeded(2)]);
        let decisions = |p: &mut FaultPlan| {
            (0..256u64)
                .map(|i| p.sensor_disposition(0, SimTime::from_millis(100 + (i % 200))))
                .collect::<Vec<_>>()
        };
        assert_ne!(decisions(&mut a), decisions(&mut b));
    }

    #[test]
    fn stuck_and_noise_fire_without_consuming_shared_streams() {
        let scripts = vec![
            FaultScript::new(
                FaultKind::SensorStuckAt,
                SimTime::ZERO,
                SimDuration::from_secs(1),
            ),
            FaultScript::new(
                FaultKind::SensorNoiseBurst { amplitude: 2.0 },
                SimTime::from_secs(2),
                SimDuration::from_secs(1),
            ),
        ];
        let mut plan = FaultPlan::new(&SeedTree::new(1), &scripts);
        assert_eq!(
            plan.sensor_disposition(0, SimTime::from_millis(10)),
            Some(SensorDisposition::Stick)
        );
        match plan.sensor_disposition(0, SimTime::from_millis(2500)) {
            Some(SensorDisposition::Noise(n)) => assert!(n.abs() <= 2.0),
            other => panic!("expected noise, got {other:?}"),
        }
        assert_eq!(plan.stats().faults_injected, 2);
        assert_eq!(plan.stats().samples_dropped, 0);
    }

    #[test]
    fn drift_is_integer_ppm_of_base() {
        let scripts = vec![FaultScript::new(
            FaultKind::ClockDrift { ppm: 200_000 },
            SimTime::ZERO,
            SimDuration::from_secs(1),
        )];
        let mut plan = FaultPlan::new(&SeedTree::new(1), &scripts);
        let base = SimDuration::from_micros(100);
        assert_eq!(
            plan.drift_extra(base, SimTime::from_millis(5)),
            SimDuration::from_micros(20)
        );
        assert_eq!(
            plan.drift_extra(base, SimTime::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn partitions_release_at_the_latest_active_end() {
        let scripts = vec![
            FaultScript::new(
                FaultKind::LinkPartition,
                SimTime::from_millis(100),
                SimDuration::from_millis(50),
            ),
            FaultScript::new(
                FaultKind::LinkPartition,
                SimTime::from_millis(120),
                SimDuration::from_millis(100),
            ),
        ];
        let mut plan = FaultPlan::new(&SeedTree::new(1), &scripts);
        assert_eq!(
            plan.partition_release(SimTime::from_millis(130)),
            Some(SimTime::from_millis(220))
        );
        assert_eq!(plan.partition_release(SimTime::from_millis(500)), None);
    }

    #[test]
    fn corruption_counts_are_near_expectation_and_capped() {
        let scripts = vec![FaultScript::new(
            FaultKind::LinkCorruption { per_byte: 0.25 },
            SimTime::ZERO,
            SimDuration::from_secs(10),
        )
        .seeded(3)];
        let mut plan = FaultPlan::new(&SeedTree::new(1), &scripts);
        let n = plan.corrupted_bytes(SimTime::from_secs(1), 1000);
        assert!((250..=251).contains(&n), "expected ~250, got {n}");
        assert_eq!(plan.stats().bytes_corrupted, n);
        // Full corruption never exceeds the payload.
        let scripts = vec![FaultScript::new(
            FaultKind::LinkCorruption { per_byte: 1.0 },
            SimTime::ZERO,
            SimDuration::from_secs(10),
        )];
        let mut plan = FaultPlan::new(&SeedTree::new(1), &scripts);
        assert_eq!(plan.corrupted_bytes(SimTime::from_secs(1), 64), 64);
    }

    #[test]
    fn storm_schedule_is_even_sorted_and_bounded() {
        let scripts = vec![FaultScript::new(
            FaultKind::InterruptStorm { rate_hz: 1000 },
            SimTime::from_millis(100),
            SimDuration::from_millis(10),
        )];
        let plan = FaultPlan::new(&SeedTree::new(1), &scripts);
        let times = plan.storm_schedule();
        assert_eq!(times.len(), 10);
        assert_eq!(times[0], SimTime::from_millis(100));
        assert_eq!(times[1], SimTime::from_millis(101));
        assert!(times.iter().all(|t| *t < SimTime::from_millis(110)));
    }

    #[test]
    fn zero_rate_storms_schedule_nothing() {
        let scripts = vec![FaultScript::new(
            FaultKind::InterruptStorm { rate_hz: 0 },
            SimTime::ZERO,
            SimDuration::from_secs(1),
        )];
        assert!(FaultPlan::new(&SeedTree::new(1), &scripts)
            .storm_schedule()
            .is_empty());
    }
}
