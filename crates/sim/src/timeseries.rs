//! Fixed-capacity time series and streaming drift detection.
//!
//! The windowed-telemetry layer samples per-window scalars (energy per
//! routine, QoS slack, …) into [`TimeSeries`] buffers that are
//! **preallocated to the run's window count** — recording a point in the
//! executor's steady state never touches the allocator (lint rule
//! `IOTSE-H13` proves this structurally). On top of the stored points,
//! streaming detectors run *online in sim time*:
//!
//! * [`DriftDetector`] — an EWMA baseline plus a one-sided CUSUM score.
//!   Each window's value `x` updates the score
//!   `s ← max(0, s + (x − μ − k))` against the baseline `μ`; the detector
//!   fires when `s` exceeds `h`, where the slack `k` and threshold `h`
//!   scale with the baseline (`k_rel`, `h_rel`) plus an absolute
//!   [`DetectorConfig::floor`] so that tiny series cannot alarm on noise.
//!   The baseline only tracks `x` while the score is quiet, so a drifting
//!   series is measured against the pre-drift normal.
//! * [`BudgetWatchdog`] — a fixed per-window budget check.
//!
//! Both are **pure folds** over the series: detector state is a function
//! of the observed prefix alone (no clock, no RNG, no allocation), so
//! replaying a recorded series through a fresh detector reproduces the
//! alert stream exactly — the property tests pin this. Alerts are plain
//! [`Alert`] records stamped with the sim-time window boundary that
//! produced them, which makes the whole alert stream byte-stable across
//! runs and `--jobs` levels.

use std::fmt;

use crate::time::SimTime;

/// A bounded, append-only series of `(sim time, value)` points.
///
/// Capacity is fixed at construction; the buffer never grows. Points
/// pushed past the capacity are counted in [`TimeSeries::dropped`] rather
/// than stored, so a misconfigured recorder degrades to a counter instead
/// of reallocating on a hot path. Order is append order (monotone sim
/// time at every call site in this workspace).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: &'static str,
    points: Vec<(SimTime, f64)>,
    dropped: u64,
}

impl TimeSeries {
    /// Creates an empty series holding at most `capacity` points.
    #[must_use]
    pub fn with_capacity(name: &'static str, capacity: usize) -> Self {
        TimeSeries {
            name,
            // lint: one-time construction at scenario setup; the buffer
            // never grows afterwards (see `push`)
            points: Vec::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Appends a point, or counts it as dropped once the preallocated
    /// capacity is full. Never allocates.
    pub fn push(&mut self, at: SimTime, value: f64) {
        if self.points.len() < self.points.capacity() {
            self.points.push((at, value));
        } else {
            self.dropped += 1;
        }
    }

    /// The series' static label.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The stored points, in append order.
    #[must_use]
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of stored points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no point has been stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points pushed after the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Left-to-right sum of the stored values — the exact fold the
    /// telescoped energy-stack recorder is tested against.
    #[must_use]
    pub fn fold_sum(&self) -> f64 {
        self.points.iter().fold(0.0, |acc, &(_, v)| acc + v)
    }
}

/// Tuning for one [`DriftDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// EWMA weight of the newest sample in the baseline (`0 < alpha <= 1`).
    pub alpha: f64,
    /// Samples consumed to seed the baseline before scoring starts.
    pub warmup: u32,
    /// CUSUM slack as a fraction of the baseline magnitude.
    pub k_rel: f64,
    /// Alarm threshold as a multiple of the baseline magnitude.
    pub h_rel: f64,
    /// Absolute floor added to the alarm threshold, in series units. A
    /// relative-only threshold would let a near-zero baseline alarm on
    /// noise; the floor makes "drift" mean *both* statistically and
    /// absolutely significant.
    pub floor: f64,
}

impl Default for DetectorConfig {
    /// `alpha` 0.3, one warmup sample, `k` = 0.25 µ, `h` = 2 µ, no floor.
    fn default() -> Self {
        DetectorConfig {
            alpha: 0.3,
            warmup: 1,
            k_rel: 0.25,
            h_rel: 2.0,
            floor: 0.0,
        }
    }
}

/// Details of one drift alarm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Drift {
    /// The CUSUM score that crossed the threshold.
    pub score: f64,
    /// The EWMA baseline at alarm time.
    pub baseline: f64,
    /// The sample that fired the alarm.
    pub observed: f64,
}

/// EWMA baseline + one-sided (upward) CUSUM drift detector.
///
/// State is three scalars folded over the input series; see the module
/// docs for the update rule and the purity contract.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftDetector {
    cfg: DetectorConfig,
    baseline: f64,
    score: f64,
    seen: u32,
}

impl DriftDetector {
    /// A fresh detector with no observed samples.
    #[must_use]
    pub fn new(cfg: DetectorConfig) -> Self {
        DriftDetector {
            cfg,
            baseline: 0.0,
            score: 0.0,
            seen: 0,
        }
    }

    /// Folds one sample into the detector; returns the alarm, if any.
    ///
    /// On alarm the score resets (re-arming the detector) and the
    /// baseline is left untouched, so a one-window spike produces exactly
    /// one alert and the post-spike samples are judged against the
    /// pre-spike normal.
    pub fn update(&mut self, x: f64) -> Option<Drift> {
        if self.seen < self.cfg.warmup {
            self.baseline = if self.seen == 0 {
                x
            } else {
                self.cfg.alpha * x + (1.0 - self.cfg.alpha) * self.baseline
            };
            self.seen += 1;
            return None;
        }
        self.seen += 1;
        let scale = self.baseline.abs();
        let k = self.cfg.k_rel * scale;
        let h = self.cfg.h_rel * scale + self.cfg.floor;
        self.score = (self.score + (x - self.baseline - k)).max(0.0);
        if self.score > h {
            let fired = Drift {
                score: self.score,
                baseline: self.baseline,
                observed: x,
            };
            self.score = 0.0;
            return Some(fired);
        }
        self.baseline = self.cfg.alpha * x + (1.0 - self.cfg.alpha) * self.baseline;
        None
    }

    /// The current EWMA baseline.
    #[must_use]
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// The current CUSUM score.
    #[must_use]
    pub fn score(&self) -> f64 {
        self.score
    }
}

/// Details of one budget breach.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Breach {
    /// The per-window value that exceeded the budget.
    pub observed: f64,
    /// The configured budget.
    pub budget: f64,
}

/// A per-window budget check: fires whenever a sample exceeds the budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetWatchdog {
    budget: f64,
}

impl BudgetWatchdog {
    /// A watchdog with a fixed per-window budget (series units).
    #[must_use]
    pub fn new(budget: f64) -> Self {
        BudgetWatchdog { budget }
    }

    /// Folds one sample; returns the breach, if any. Stateless beyond the
    /// budget itself, so trivially a pure fold.
    pub fn update(&mut self, x: f64) -> Option<Breach> {
        (x > self.budget).then_some(Breach {
            observed: x,
            budget: self.budget,
        })
    }

    /// The configured budget.
    #[must_use]
    pub fn budget(&self) -> f64 {
        self.budget
    }
}

/// What a telemetry [`Alert`] reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlertKind {
    /// A [`DriftDetector`] alarm.
    Drift(Drift),
    /// A [`BudgetWatchdog`] breach.
    Budget(Breach),
}

/// One deterministic, sim-time-stamped telemetry alert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alert {
    /// The window boundary (sim time) the alert was evaluated at.
    pub at: SimTime,
    /// Zero-based index of the window whose sample fired.
    pub window: u32,
    /// Static label of the series the detector watched.
    pub series: &'static str,
    /// Alarm details.
    pub kind: AlertKind,
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            AlertKind::Drift(d) => write!(
                f,
                "t={:.3}ms window={} {} drift: observed {:.3} vs baseline {:.3} (score {:.3})",
                self.at.as_millis_f64(),
                self.window,
                self.series,
                d.observed,
                d.baseline,
                d.score
            ),
            AlertKind::Budget(b) => write!(
                f,
                "t={:.3}ms window={} {} over budget: observed {:.3} vs budget {:.3}",
                self.at.as_millis_f64(),
                self.window,
                self.series,
                b.observed,
                b.budget
            ),
        }
    }
}

/// Nearest-rank percentile of an **already sorted** slice (`q` in
/// `[0, 1]`). Returns `None` on an empty slice. Used by the fleet-level
/// per-window aggregation: exact order statistics, no interpolation, so
/// the reported value is always one a device actually produced.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // Nearest-rank: ceil(q * n), 1-based, clamped into the slice.
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, n) - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_bounded_and_counts_drops() {
        let mut s = TimeSeries::with_capacity("iotse_sim_test_series", 2);
        assert!(s.is_empty());
        s.push(SimTime::from_millis(1), 1.0);
        s.push(SimTime::from_millis(2), 2.0);
        s.push(SimTime::from_millis(3), 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 1);
        assert_eq!(
            s.points(),
            &[
                (SimTime::from_millis(1), 1.0),
                (SimTime::from_millis(2), 2.0),
            ]
        );
        assert_eq!(s.fold_sum(), 3.0);
        assert_eq!(s.name(), "iotse_sim_test_series");
    }

    #[test]
    fn series_capacity_never_grows() {
        let mut s = TimeSeries::with_capacity("iotse_sim_test_series", 3);
        let cap = s.points.capacity();
        for i in 0..100 {
            s.push(SimTime::from_millis(i), i as f64);
        }
        assert_eq!(s.points.capacity(), cap, "push must never reallocate");
        assert_eq!(s.dropped(), 97);
    }

    #[test]
    fn detector_is_quiet_on_a_flat_series() {
        let mut d = DriftDetector::new(DetectorConfig::default());
        for _ in 0..50 {
            assert!(d.update(100.0).is_none());
        }
        assert_eq!(d.baseline(), 100.0);
        assert_eq!(d.score(), 0.0);
    }

    #[test]
    fn detector_fires_once_on_a_spike_and_rearms() {
        let mut d = DriftDetector::new(DetectorConfig::default());
        assert!(d.update(100.0).is_none()); // warmup
        assert!(d.update(100.0).is_none());
        let drift = d.update(100_000.0).expect("spike must alarm");
        assert_eq!(drift.observed, 100_000.0);
        assert_eq!(drift.baseline, 100.0);
        assert!(drift.score > 2.0 * 100.0);
        // Post-spike samples are judged against the pre-spike baseline.
        assert!(d.update(100.0).is_none());
        assert!(d.update(100.0).is_none());
        assert_eq!(d.baseline(), 100.0);
    }

    #[test]
    fn floor_suppresses_small_absolute_drift() {
        let cfg = DetectorConfig {
            floor: 1000.0,
            ..DetectorConfig::default()
        };
        let mut d = DriftDetector::new(cfg);
        // Warmup sets baseline 1.0; then an 80% relative jump whose
        // absolute size is far below the floor.
        assert!(d.update(1.0).is_none());
        for _ in 0..20 {
            assert!(d.update(1.8).is_none(), "sub-floor drift must stay quiet");
        }
        // The same relative jump at floor-dwarfing scale alarms.
        let mut big = DriftDetector::new(cfg);
        assert!(big.update(1.0e6).is_none());
        assert!(big.update(1.8e6).is_none(), "within h_rel of baseline");
        assert!(big.update(4.0e6).is_some(), "3x baseline must alarm");
    }

    #[test]
    fn detector_state_is_a_pure_fold() {
        let cfg = DetectorConfig {
            floor: 10.0,
            ..DetectorConfig::default()
        };
        // A deterministic but wiggly series.
        let series: Vec<f64> = (0..64)
            .map(|i| 100.0 + ((i * 37) % 17) as f64 + if i == 40 { 5000.0 } else { 0.0 })
            .collect();
        let mut live = DriftDetector::new(cfg);
        let live_alerts: Vec<Option<Drift>> = series.iter().map(|&x| live.update(x)).collect();
        let mut replay = DriftDetector::new(cfg);
        let replayed: Vec<Option<Drift>> = series.iter().map(|&x| replay.update(x)).collect();
        assert_eq!(live_alerts, replayed);
        assert_eq!(live, replay, "detector state must be a pure fold");
        assert_eq!(
            live_alerts.iter().flatten().count(),
            1,
            "exactly the injected spike alarms"
        );
    }

    #[test]
    fn watchdog_fires_above_budget_only() {
        let mut w = BudgetWatchdog::new(500.0);
        assert!(w.update(500.0).is_none(), "budget is inclusive");
        let breach = w.update(500.5).expect("over budget");
        assert_eq!(breach.budget, 500.0);
        assert_eq!(breach.observed, 500.5);
        assert_eq!(w.budget(), 500.0);
    }

    #[test]
    fn alerts_render_deterministically() {
        let a = Alert {
            at: SimTime::from_secs(2),
            window: 1,
            series: "iotse_energy_stack_interrupt_microjoules",
            kind: AlertKind::Drift(Drift {
                score: 3.5,
                baseline: 1.0,
                observed: 4.5,
            }),
        };
        assert_eq!(
            a.to_string(),
            "t=2000.000ms window=1 iotse_energy_stack_interrupt_microjoules drift: \
             observed 4.500 vs baseline 1.000 (score 3.500)"
        );
        let b = Alert {
            at: SimTime::from_secs(3),
            window: 2,
            series: "iotse_energy_stack_workload_total_microjoules",
            kind: AlertKind::Budget(Breach {
                observed: 7.0,
                budget: 5.0,
            }),
        };
        assert_eq!(
            b.to_string(),
            "t=3000.000ms window=2 iotse_energy_stack_workload_total_microjoules over budget: \
             observed 7.000 vs budget 5.000"
        );
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&v, 0.0), Some(1.0));
        assert_eq!(percentile_sorted(&v, 0.5), Some(2.0));
        assert_eq!(percentile_sorted(&v, 0.75), Some(3.0));
        assert_eq!(percentile_sorted(&v, 0.9), Some(4.0));
        assert_eq!(percentile_sorted(&v, 1.0), Some(4.0));
        assert_eq!(percentile_sorted(&[], 0.5), None);
        assert_eq!(percentile_sorted(&[9.0], 0.5), Some(9.0));
    }
}
