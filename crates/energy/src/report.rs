//! Textual rendering of energy results.
//!
//! The paper presents its results as normalized stacked bar charts; the
//! `figures` harness renders the same data as ASCII so every figure can be
//! regenerated in a terminal and diffed in CI.

use std::fmt::Write as _;

use crate::attribution::{Breakdown, NormalizedBreakdown};
use crate::units::Energy;

/// The glyphs used to draw the four routine segments of a stacked bar, in
/// figure stacking order: data collection, interrupt, data transfer,
/// app-specific compute.
pub const SEGMENT_GLYPHS: [char; 4] = ['c', 'i', 't', 'x'];

/// Human labels matching [`SEGMENT_GLYPHS`].
pub const SEGMENT_LABELS: [&str; 4] = [
    "Data Collection",
    "Interrupt",
    "Data Transfer",
    "App-specific Computing",
];

/// Renders one normalized breakdown as a stacked ASCII bar of `width`
/// characters per 100%.
///
/// Fractions above 1.0 extend beyond `width` (bars are normalized to a
/// baseline, so only the baseline itself is exactly full-width).
///
/// # Examples
///
/// ```
/// use iotse_energy::attribution::NormalizedBreakdown;
/// use iotse_energy::report::stacked_bar;
///
/// let n = NormalizedBreakdown {
///     data_collection: 0.25,
///     interrupt: 0.25,
///     data_transfer: 0.25,
///     app_compute: 0.25,
/// };
/// assert_eq!(stacked_bar(&n, 8), "cciittxx");
/// ```
#[must_use]
pub fn stacked_bar(n: &NormalizedBreakdown, width: usize) -> String {
    let fracs = [
        n.data_collection,
        n.interrupt,
        n.data_transfer,
        n.app_compute,
    ];
    let mut bar = String::new();
    let mut acc = 0.0f64;
    let mut drawn = 0usize;
    for (frac, glyph) in fracs.iter().zip(SEGMENT_GLYPHS) {
        acc += frac.max(0.0);
        let target = cells(acc, width);
        for _ in drawn..target {
            bar.push(glyph);
        }
        drawn = drawn.max(target);
    }
    bar
}

/// Converts a non-negative fraction of `width` columns into a cell count:
/// round-half-away-from-zero, negatives clamped to zero. The single audited
/// float→int site of the rendering code — after `.round().max(0.0)` the
/// value is a small non-negative integer (`frac * width` is far below
/// 2^53), so the cast can neither truncate nor wrap.
fn cells(frac: f64, width: usize) -> usize {
    // iotse-lint: allow(IOTSE-C05) audited conversion helper; see doc comment above
    (frac * width as f64).round().max(0.0) as usize
}

/// One labeled row of a breakdown chart.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Row label, e.g. `"A2 / Batching"`.
    pub label: String,
    /// The absolute energies.
    pub breakdown: Breakdown,
}

/// Renders rows of breakdowns normalized to `reference` as an ASCII chart
/// with a legend and per-row totals — one paper figure.
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn breakdown_chart(
    title: &str,
    rows: &[BreakdownRow],
    reference: Energy,
    width: usize,
) -> String {
    assert!(width > 0, "chart width must be positive");
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(0).max(8);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "  legend: {} (normalized to {reference})",
        SEGMENT_GLYPHS
            .iter()
            .zip(SEGMENT_LABELS)
            .map(|(g, l)| format!("{g}={l}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    for row in rows {
        let n = row.breakdown.normalized_to(reference);
        let bar = stacked_bar(&n, width);
        let _ = writeln!(
            out,
            "  {:<label_w$} |{bar:<width$}| {:6.1}% ({})",
            row.label,
            n.total() * 100.0,
            row.breakdown.total(),
        );
    }
    out
}

/// Renders a simple labeled horizontal bar chart of arbitrary values
/// normalized to the maximum (used for Figure 6's MIPS/memory and Figure 13's
/// speedups).
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn value_chart(title: &str, rows: &[(String, f64)], unit: &str, width: usize) -> String {
    assert!(width > 0, "chart width must be positive");
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0).max(8);
    let max = rows
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::MIN, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (label, v) in rows {
        let n = cells(v / max, width);
        let _ = writeln!(
            out,
            "  {label:<label_w$} |{:<width$}| {v:8.2} {unit}",
            "#".repeat(n)
        );
    }
    out
}

/// Formats a fraction as a percentage with one decimal, e.g. `"52.0%"`.
#[must_use]
pub fn percent(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Energy;

    fn mj(x: f64) -> Energy {
        Energy::from_millijoules(x)
    }

    #[test]
    fn stacked_bar_fills_proportionally() {
        let n = NormalizedBreakdown {
            data_collection: 0.06,
            interrupt: 0.16,
            data_transfer: 0.77,
            app_compute: 0.01,
        };
        let bar = stacked_bar(&n, 100);
        assert_eq!(bar.len(), 100);
        assert_eq!(bar.chars().filter(|&c| c == 'c').count(), 6);
        assert_eq!(bar.chars().filter(|&c| c == 'i').count(), 16);
        assert_eq!(bar.chars().filter(|&c| c == 't').count(), 77);
        assert_eq!(bar.chars().filter(|&c| c == 'x').count(), 1);
    }

    #[test]
    fn stacked_bar_shrinks_for_savings() {
        let n = NormalizedBreakdown {
            data_collection: 0.1,
            interrupt: 0.0,
            data_transfer: 0.3,
            app_compute: 0.08,
        };
        let bar = stacked_bar(&n, 50);
        assert_eq!(bar.len(), 24); // 48% of 50
    }

    #[test]
    fn breakdown_chart_contains_rows_and_totals() {
        let rows = vec![
            BreakdownRow {
                label: "Baseline".into(),
                breakdown: Breakdown {
                    data_collection: mj(6.0),
                    interrupt: mj(16.0),
                    data_transfer: mj(77.0),
                    app_compute: mj(1.0),
                },
            },
            BreakdownRow {
                label: "Batching".into(),
                breakdown: Breakdown {
                    data_collection: mj(6.0),
                    interrupt: mj(3.0),
                    data_transfer: mj(27.0),
                    app_compute: mj(1.0),
                },
            },
        ];
        let chart = breakdown_chart("Fig 7", &rows, mj(100.0), 40);
        assert!(chart.contains("Fig 7"));
        assert!(chart.contains("Baseline"));
        assert!(chart.contains(" 100.0%"));
        assert!(chart.contains("  37.0%"));
        assert!(chart.contains("legend"));
    }

    #[test]
    fn value_chart_normalizes_to_max() {
        let rows = vec![("A2".to_string(), 3.94), ("A8".to_string(), 108.8)];
        let chart = value_chart("MIPS", &rows, "MIPS", 20);
        assert!(chart.contains("108.80"));
        // A8 row gets the full 20 hashes.
        assert!(chart.contains(&"#".repeat(20)));
    }

    #[test]
    fn percent_formats() {
        assert_eq!(percent(0.52), "52.0%");
        assert_eq!(percent(1.0), "100.0%");
    }
}
