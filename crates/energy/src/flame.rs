//! Energy flamegraphs: fold a span tree's energy charges up the stack.
//!
//! The executor in `iotse-core` attributes every microjoule the
//! [`EnergyLedger`](crate::attribution::EnergyLedger) accrues to the span
//! that caused it (span weights are microjoules — see the `weight` field of
//! [`iotse_sim::trace::Span`]). Folding those weights up the parent links
//! turns a run into the paper's missing visual: *which part of the
//! execution did the energy go to*, stacked hierarchically, exactly the
//! "energy stack" abstraction EStacker argues for.
//!
//! Two renderings are provided:
//!
//! * [`FlameGraph::folded`] — the inferno-/FlameGraph-compatible collapsed
//!   format, one `stack;sub;leaf value` line per distinct stack, weighted
//!   by **nanojoules** (integer, so downstream tooling never sees float
//!   formatting jitter).
//! * [`FlameGraph::table`] — a per-label self/total table in microjoules.
//!
//! # Exactness
//!
//! [`FlameGraph::total_microjoules`] sums span weights left-to-right in
//! span order — bit-for-bit the same float operations the executor used
//! when it attributed the charges — so for an instrumented run it equals
//! `EnergyLedger::total().as_microjoules()` *exactly*, not approximately.
//! Tests assert `==` on it, not a tolerance.

use std::collections::BTreeMap;

use iotse_sim::trace::TraceLog;

/// One folded stack: every span sharing a root-to-leaf label path
/// aggregates into a single frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldedStack {
    /// `;`-joined label path from the root span.
    pub stack: String,
    /// Energy attributed directly to spans with this path, in microjoules.
    pub self_microjoules: f64,
    /// Number of spans that folded into this stack.
    pub spans: usize,
}

/// Aggregated self/total energy for one span label.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTotals {
    /// The span label (e.g. `iotse_core_transfer`).
    pub label: String,
    /// Number of spans with this label.
    pub count: usize,
    /// Energy charged directly to these spans, in microjoules.
    pub self_microjoules: f64,
    /// Self energy plus everything charged inside their subtrees.
    pub total_microjoules: f64,
}

/// The folded energy view of one run's span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct FlameGraph {
    /// Raw span weights in span order (microjoules).
    weights: Vec<f64>,
    /// Folded stacks, sorted by stack path.
    stacks: Vec<FoldedStack>,
    /// Per-label self/total rollup, sorted by label.
    frames: Vec<FrameTotals>,
}

/// Folds the span tree of `trace` into a [`FlameGraph`].
#[must_use]
pub fn fold(trace: &TraceLog) -> FlameGraph {
    let spans = trace.spans();
    let weights: Vec<f64> = spans.iter().map(|s| s.weight).collect();

    // Subtree totals, bottom-up. A span's parent always precedes it in the
    // span list (parents are entered first), so a reverse walk sees every
    // child before its parent.
    let mut totals = weights.clone();
    for i in (0..spans.len()).rev() {
        if let Some(p) = spans[i].parent.and_then(iotse_sim::trace::SpanId::index) {
            totals[p] += totals[i];
        }
    }

    let mut by_stack: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    let mut by_label: BTreeMap<String, (usize, f64, f64)> = BTreeMap::new();
    for (i, span) in spans.iter().enumerate() {
        let stack = trace.stack(iotse_sim::trace::SpanId::from_index(i));
        let entry = by_stack.entry(stack).or_insert((0.0, 0));
        entry.0 += weights[i];
        entry.1 += 1;
        let label = trace.label(span.label).to_string();
        let frame = by_label.entry(label).or_insert((0, 0.0, 0.0));
        frame.0 += 1;
        frame.1 += weights[i];
        frame.2 += totals[i];
    }

    FlameGraph {
        weights,
        stacks: by_stack
            .into_iter()
            .map(|(stack, (self_microjoules, spans))| FoldedStack {
                stack,
                self_microjoules,
                spans,
            })
            .collect(),
        frames: by_label
            .into_iter()
            .map(|(label, (count, s, t))| FrameTotals {
                label,
                count,
                self_microjoules: s,
                total_microjoules: t,
            })
            .collect(),
    }
}

impl FlameGraph {
    /// The folded stacks, sorted by stack path.
    #[must_use]
    pub fn stacks(&self) -> &[FoldedStack] {
        &self.stacks
    }

    /// The per-label self/total rollup, sorted by label.
    #[must_use]
    pub fn frames(&self) -> &[FrameTotals] {
        &self.frames
    }

    /// Total attributed energy: span weights summed left-to-right in span
    /// order — the exact float operations the instrumented executor
    /// performed, so this equals the run's `EnergyLedger::total()` bitwise.
    #[must_use]
    pub fn total_microjoules(&self) -> f64 {
        let mut acc = 0.0;
        for &w in &self.weights {
            acc += w;
        }
        acc
    }

    /// The inferno-compatible collapsed format: one `path value` line per
    /// distinct stack, sorted by path, weighted by integer nanojoules.
    /// Zero-weight stacks (pure structural spans) are kept so the tree
    /// shape survives even where no energy landed.
    #[must_use]
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for s in &self.stacks {
            out.push_str(&s.stack);
            out.push(' ');
            out.push_str(&format!(
                "{}",
                microjoules_to_nanojoules(s.self_microjoules)
            ));
            out.push('\n');
        }
        out
    }

    /// A fixed-width self/total table in microjoules, sorted by label.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out =
            String::from("label                        count        self-uJ       total-uJ\n");
        for f in &self.frames {
            out.push_str(&format!(
                "{:<28} {:>5} {:>14.3} {:>14.3}\n",
                f.label, f.count, f.self_microjoules, f.total_microjoules
            ));
        }
        out
    }
}

/// Converts a microjoule weight to integer nanojoules: round-to-nearest,
/// negatives clamped to zero. The single audited float→int site of the
/// folded export — after `.round().max(0.0)` the value is a non-negative
/// integer, and a run's total energy in nanojoules sits far below 2^53,
/// so the cast can neither truncate nor wrap.
fn microjoules_to_nanojoules(uj: f64) -> u64 {
    // iotse-lint: allow(IOTSE-C05) audited conversion helper; see doc comment above
    (uj * 1e3).round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_sim::time::SimTime;
    use iotse_sim::trace::{TraceKind, TraceLog};

    fn sample_trace() -> TraceLog {
        let mut log = TraceLog::enabled();
        let root = log.enter_span(SimTime::ZERO, TraceKind::Scheme, "iotse_energy_run");
        let a = log.enter_span(SimTime::ZERO, TraceKind::Compute, "iotse_energy_a");
        log.charge_span(a, 10.0);
        log.exit_span(a, SimTime::from_millis(1));
        let b = log.enter_span(
            SimTime::from_millis(1),
            TraceKind::Compute,
            "iotse_energy_b",
        );
        log.charge_span(b, 2.5);
        let leaf = log.enter_span(
            SimTime::from_millis(1),
            TraceKind::DataTransfer,
            "iotse_energy_a",
        );
        log.charge_span(leaf, 0.5);
        log.exit_span(leaf, SimTime::from_millis(2));
        log.exit_span(b, SimTime::from_millis(2));
        log.exit_span(root, SimTime::from_millis(3));
        log
    }

    #[test]
    fn totals_fold_up_the_tree() {
        let graph = fold(&sample_trace());
        assert_eq!(graph.total_microjoules(), 13.0);
        let root = graph
            .frames()
            .iter()
            .find(|f| f.label == "iotse_energy_run")
            .expect("root frame");
        assert_eq!(root.self_microjoules, 0.0);
        assert_eq!(root.total_microjoules, 13.0);
        // "iotse_energy_a" appears twice: a direct child and a nested leaf.
        let a = graph
            .frames()
            .iter()
            .find(|f| f.label == "iotse_energy_a")
            .expect("a frame");
        assert_eq!(a.count, 2);
        assert_eq!(a.self_microjoules, 10.5);
        assert_eq!(a.total_microjoules, 10.5);
    }

    #[test]
    fn folded_lines_are_sorted_and_in_nanojoules() {
        let graph = fold(&sample_trace());
        let folded = graph.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "iotse_energy_run 0",
                "iotse_energy_run;iotse_energy_a 10000",
                "iotse_energy_run;iotse_energy_b 2500",
                "iotse_energy_run;iotse_energy_b;iotse_energy_a 500",
            ]
        );
    }

    #[test]
    fn table_lists_every_label() {
        let graph = fold(&sample_trace());
        let table = graph.table();
        assert!(table.contains("iotse_energy_run"));
        assert!(table.contains("iotse_energy_a"));
        assert!(table.contains("iotse_energy_b"));
    }

    #[test]
    fn empty_trace_folds_to_nothing() {
        let graph = fold(&TraceLog::disabled());
        assert_eq!(graph.total_microjoules(), 0.0);
        assert!(graph.stacks().is_empty());
        assert!(graph.folded().is_empty());
    }
}
