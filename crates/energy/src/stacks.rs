//! Windowed per-routine energy stacks.
//!
//! PR 3's span attribution telescopes ledger deltas across *spans* so the
//! folded span weights reproduce `ledger.total()` bitwise. This module
//! applies the same telescoping across **window boundaries**: at every
//! boundary, [`EnergyStacks`] snapshots each routine's running total and
//! records the delta since the previous boundary into a preallocated
//! [`TimeSeries`] — one series per [`Routine`], one point per window. The
//! final window's delta is nudged by [`exact_residual`] so that for every
//! routine the left-to-right fold of its series reproduces
//! `ledger.routine_total(routine)` **bitwise** — the per-window stacks
//! are an exact decomposition of the run's stacked bar, not an estimate.
//!
//! Binning contract: a window's stack holds every microjoule charged to
//! the ledger between the recordings of its two boundaries. The executor
//! rolls boundaries at tick granularity, so a task that *starts* in
//! window `w` and overruns the boundary is binned into `w` — charges
//! follow the initiating tick, which keeps the decomposition exact and
//! deterministic without splitting in-flight charges.
//!
//! Everything here is allocation-free after construction ([`IOTSE-H13`]
//! proves the recording path structurally) and draws no randomness, so a
//! telemetry-enabled run stays bitwise deterministic across `--jobs`
//! levels.
//!
//! [`IOTSE-H13`]: ../../iotse_lint/rules/hot_path/index.html

use iotse_sim::time::{SimDuration, SimTime};
use iotse_sim::timeseries::TimeSeries;

use crate::attribution::{EnergyLedger, Routine};

/// Number of tracked routines ([`Routine::ALL`]).
pub const STACK_ROUTINES: usize = Routine::ALL.len();

/// The static series label for one routine's windowed energy stack.
/// Names follow the `iotse_<crate>_<snake>` convention checked by lint
/// rule `IOTSE-M09` for registered metrics.
#[must_use]
pub fn stack_series_name(routine: Routine) -> &'static str {
    match routine {
        Routine::DataCollection => "iotse_energy_stack_data_collection_microjoules",
        Routine::Interrupt => "iotse_energy_stack_interrupt_microjoules",
        Routine::DataTransfer => "iotse_energy_stack_data_transfer_microjoules",
        Routine::AppCompute => "iotse_energy_stack_app_compute_microjoules",
        Routine::Idle => "iotse_energy_stack_idle_microjoules",
    }
}

/// The label the workload-total budget watchdog alerts under.
pub const WORKLOAD_TOTAL_SERIES: &str = "iotse_energy_stack_workload_total_microjoules";

/// One window's per-routine energy deltas, in [`Routine::ALL`] order.
pub type WindowStack = [f64; STACK_ROUTINES];

/// A freshly recorded boundary: which window closed, at what sim time,
/// with what per-routine stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordedWindow {
    /// Zero-based index of the window that just closed.
    pub window: u32,
    /// The boundary's sim time.
    pub at: SimTime,
    /// Per-routine energy charged during the window, µJ.
    pub stack: WindowStack,
}

impl RecordedWindow {
    /// Sum over the four workload routines (excludes idle).
    #[must_use]
    pub fn workload_total(&self) -> f64 {
        Routine::WORKLOAD
            .iter()
            .map(|r| self.stack[routine_index(*r)])
            .sum()
    }
}

/// Index of `routine` within [`Routine::ALL`] (and every [`WindowStack`]).
#[must_use]
pub fn routine_index(routine: Routine) -> usize {
    match routine {
        Routine::DataCollection => 0,
        Routine::Interrupt => 1,
        Routine::DataTransfer => 2,
        Routine::AppCompute => 3,
        Routine::Idle => 4,
    }
}

/// The windowed per-routine energy recorder (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyStacks {
    base: SimDuration,
    windows: u32,
    recorded: u32,
    /// Energy already attributed to recorded windows, per routine — the
    /// telescoping accumulator (same role as the executor's span
    /// `assigned` tracker).
    assigned: WindowStack,
    /// One series per routine, [`Routine::ALL`] order.
    series: Vec<TimeSeries>,
}

impl EnergyStacks {
    /// A recorder for `windows` windows of length `base`, with every
    /// series preallocated to exactly `windows` points.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero or `windows` is zero.
    #[must_use]
    pub fn new(base: SimDuration, windows: u32) -> Self {
        assert!(!base.is_zero(), "window length must be positive");
        assert!(windows > 0, "need at least one window");
        let series = Routine::ALL
            .iter()
            // lint: one-time construction at scenario setup; each series
            // is preallocated to the run's window count and never grows
            // iotse-lint: allow(IOTSE-C05) u32→usize capacity widening, lossless on every supported target
            .map(|&r| TimeSeries::with_capacity(stack_series_name(r), windows as usize))
            .collect();
        EnergyStacks {
            base,
            windows,
            recorded: 0,
            assigned: [0.0; STACK_ROUTINES],
            series,
        }
    }

    /// The next unrecorded boundary, or `None` once all windows closed.
    fn next_boundary(&self) -> Option<SimTime> {
        (self.recorded < self.windows)
            .then(|| SimTime::ZERO + self.base * u64::from(self.recorded + 1))
    }

    /// Records the next window iff `now` has reached its boundary.
    /// Allocation-free; called from the executor's tick hot path.
    pub fn try_roll(&mut self, now: SimTime, ledger: &EnergyLedger) -> Option<RecordedWindow> {
        let at = self.next_boundary().filter(|&b| now >= b)?;
        Some(self.record(at, ledger, false))
    }

    /// Force-records the next window at book-closing time; loops at the
    /// end of a run until every window is closed. The *last* window's
    /// deltas are nudged by [`exact_residual`] so each series folds back
    /// to its routine total bitwise.
    pub fn try_close(&mut self, ledger: &EnergyLedger) -> Option<RecordedWindow> {
        let at = self.next_boundary()?;
        let last = self.recorded + 1 == self.windows;
        Some(self.record(at, ledger, last))
    }

    fn record(&mut self, at: SimTime, ledger: &EnergyLedger, exact: bool) -> RecordedWindow {
        let window = self.recorded;
        let mut stack = [0.0; STACK_ROUTINES];
        for (i, &routine) in Routine::ALL.iter().enumerate() {
            let total = ledger.routine_total(routine).as_microjoules();
            let delta = if exact {
                exact_residual(self.assigned[i], total)
            } else {
                // Ledger totals are monotone (charges are non-negative),
                // so the naive delta is already >= 0.
                total - self.assigned[i]
            };
            self.assigned[i] += delta;
            self.series[i].push(at, delta);
        }
        for (i, slot) in stack.iter_mut().enumerate() {
            let pts = self.series[i].points();
            // The push above always lands (capacity == windows).
            *slot = pts[pts.len() - 1].1;
        }
        self.recorded += 1;
        RecordedWindow { window, at, stack }
    }

    /// The window grid's length.
    #[must_use]
    pub fn base_window(&self) -> SimDuration {
        self.base
    }

    /// Total windows on the grid.
    #[must_use]
    pub fn windows(&self) -> u32 {
        self.windows
    }

    /// Windows recorded so far.
    #[must_use]
    pub fn recorded(&self) -> u32 {
        self.recorded
    }

    /// One routine's windowed series.
    #[must_use]
    pub fn series(&self, routine: Routine) -> &TimeSeries {
        &self.series[routine_index(routine)]
    }

    /// All five series, in [`Routine::ALL`] order.
    #[must_use]
    pub fn all_series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// The recorded stack of window `w`, if that window has closed.
    #[must_use]
    pub fn window_stack(&self, w: u32) -> Option<WindowStack> {
        if w >= self.recorded {
            return None;
        }
        let mut stack = [0.0; STACK_ROUTINES];
        for (i, slot) in stack.iter_mut().enumerate() {
            // iotse-lint: allow(IOTSE-C05) u32→usize index widening, lossless on every supported target
            *slot = self.series[i].points()[w as usize].1;
        }
        Some(stack)
    }

    /// Total stored points across all routine series.
    #[must_use]
    pub fn points_recorded(&self) -> u64 {
        // iotse-lint: allow(IOTSE-C05) usize→u64 count widening, lossless on every supported target
        self.series.iter().map(|s| s.len() as u64).sum()
    }
}

/// The non-negative weight `w` for which `assigned + w` reproduces `total`
/// bitwise (nudging the naive difference by ulps when float rounding makes
/// `assigned + (total - assigned) != total`). Falls back to the naive
/// difference if no exact weight exists within a few ulps — in practice
/// the search converges immediately because the close-out weight is
/// large. Shared by the span close-out in the executor and the final
/// window of [`EnergyStacks`].
#[must_use]
pub fn exact_residual(assigned: f64, total: f64) -> f64 {
    // NaN-safe "strictly positive": NaN compares as not-greater, so a
    // degenerate difference short-circuits to zero instead of looping.
    fn strictly_positive(x: f64) -> bool {
        x.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater)
    }
    let mut w = total - assigned;
    if !strictly_positive(w) {
        return 0.0;
    }
    for _ in 0..8 {
        let sum = assigned + w;
        if sum == total {
            return w;
        }
        let nudged = if sum < total {
            f64::from_bits(w.to_bits() + 1)
        } else {
            f64::from_bits(w.to_bits().wrapping_sub(1))
        };
        if !strictly_positive(nudged) {
            break;
        }
        w = nudged;
    }
    (total - assigned).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::Device;
    use crate::units::Energy;

    fn uj(x: f64) -> Energy {
        Energy::from_microjoules(x)
    }

    #[test]
    fn stacks_telescope_ledger_deltas_per_window() {
        let mut ledger = EnergyLedger::new();
        let mut stacks = EnergyStacks::new(SimDuration::from_secs(1), 3);
        ledger.charge(Device::Cpu, Routine::Interrupt, uj(10.0));
        ledger.charge(Device::Mcu, Routine::DataCollection, uj(4.0));
        // Not yet at the boundary: nothing records.
        assert!(stacks
            .try_roll(SimTime::from_millis(999), &ledger)
            .is_none());
        let w0 = stacks
            .try_roll(SimTime::from_secs(1), &ledger)
            .expect("boundary reached");
        assert_eq!(w0.window, 0);
        assert_eq!(w0.at, SimTime::from_secs(1));
        assert_eq!(w0.stack[routine_index(Routine::Interrupt)], 10.0);
        assert_eq!(w0.stack[routine_index(Routine::DataCollection)], 4.0);
        assert_eq!(w0.workload_total(), 14.0);

        ledger.charge(Device::Cpu, Routine::Interrupt, uj(2.5));
        let w1 = stacks
            .try_roll(SimTime::from_secs(2), &ledger)
            .expect("second boundary");
        assert_eq!(w1.window, 1);
        assert_eq!(w1.stack[routine_index(Routine::Interrupt)], 2.5);
        assert_eq!(w1.stack[routine_index(Routine::DataCollection)], 0.0);

        // One roll per boundary: the same instant does not double-record.
        assert!(stacks.try_roll(SimTime::from_secs(2), &ledger).is_none());
        ledger.charge(Device::Cpu, Routine::Idle, uj(7.0));
        let w2 = stacks.try_close(&ledger).expect("close final window");
        assert_eq!(w2.window, 2);
        assert_eq!(w2.stack[routine_index(Routine::Idle)], 7.0);
        assert!(stacks.try_close(&ledger).is_none());
        assert_eq!(stacks.recorded(), 3);
        assert_eq!(stacks.points_recorded(), 15);
    }

    #[test]
    fn series_folds_reproduce_routine_totals_bitwise() {
        // Irrational-ish charges make float residue likely; the exact
        // close-out must absorb it anyway.
        let mut ledger = EnergyLedger::new();
        let mut stacks = EnergyStacks::new(SimDuration::from_secs(1), 5);
        for w in 0..5u32 {
            for i in 0..7 {
                let x = 0.1 + f64::from(w * 31 + i) * 0.373_214_159;
                ledger.charge(Device::Cpu, Routine::Interrupt, uj(x));
                ledger.charge(Device::Mcu, Routine::DataCollection, uj(x / 3.0));
                ledger.charge(Device::Link, Routine::DataTransfer, uj(x / 7.0));
            }
            if w < 4 {
                stacks.try_roll(SimTime::from_secs(u64::from(w) + 1), &ledger);
            }
        }
        while stacks.try_close(&ledger).is_some() {}
        for routine in Routine::ALL {
            assert_eq!(
                stacks.series(routine).fold_sum(),
                ledger.routine_total(routine).as_microjoules(),
                "fold of {routine} series must reproduce the ledger bitwise"
            );
        }
    }

    #[test]
    fn close_records_all_remaining_windows() {
        let mut ledger = EnergyLedger::new();
        ledger.charge(Device::Cpu, Routine::Idle, uj(9.0));
        let mut stacks = EnergyStacks::new(SimDuration::from_secs(1), 4);
        let mut seen = 0;
        while let Some(rec) = stacks.try_close(&ledger) {
            assert_eq!(rec.window, seen);
            seen += 1;
        }
        assert_eq!(seen, 4);
        // All the energy lands in the first close-recorded window; the
        // fold still reproduces the total.
        assert_eq!(stacks.series(Routine::Idle).fold_sum(), 9.0);
        assert_eq!(
            stacks.window_stack(0).unwrap()[routine_index(Routine::Idle)],
            9.0
        );
        assert_eq!(
            stacks.window_stack(3).unwrap()[routine_index(Routine::Idle)],
            0.0
        );
        assert!(stacks.window_stack(4).is_none());
    }

    #[test]
    fn exact_residual_reproduces_total() {
        let cases = [
            (0.0, 0.0),
            (1.0, 3.0),
            (0.1 + 0.2, 1.0),
            (1e16, 1e16 + 2.0),
            (5.0, 4.0),      // total below assigned: clamps to zero
            (f64::NAN, 1.0), // degenerate difference: zero, not a loop
        ];
        for (assigned, total) in cases {
            let w = exact_residual(assigned, total);
            assert!(w >= 0.0);
            if total > assigned {
                assert_eq!(assigned + w, total, "({assigned}, {total})");
            }
        }
    }

    #[test]
    fn series_names_follow_the_metric_convention() {
        for routine in Routine::ALL {
            let name = stack_series_name(routine);
            assert!(name.starts_with("iotse_energy_"), "{name}");
            assert!(name.ends_with("_microjoules"), "{name}");
        }
        assert!(WORKLOAD_TOTAL_SERIES.starts_with("iotse_energy_"));
    }
}
