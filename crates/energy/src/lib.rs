//! # iotse-energy — power and energy modeling
//!
//! The measurement half of the `iotse` reproduction of *"Understanding
//! Energy Efficiency in IoT App Executions"* (ICDCS 2019). The paper
//! instrumented a real hub with a Monsoon power monitor; this crate is the
//! simulated substitute:
//!
//! * [`units`] — [`Power`] (mW) and [`Energy`]
//!   (µJ) with `Power × SimDuration → Energy` in the type system.
//! * [`state`] — [`StateTracker`]: exact per-state
//!   energy integration for devices with power states (CPU, MCU).
//! * [`attribution`] — the paper's four sub-task routines and the
//!   [`EnergyLedger`] behind every stacked bar in
//!   Figures 3–12.
//! * [`monitor`] — [`PowerTrace`]: the virtual Monsoon,
//!   an exact piecewise-constant waveform with CSV sampling.
//! * [`flame`] — energy flamegraphs: fold span-tree energy charges into
//!   inferno-compatible collapsed stacks and self/total tables.
//! * [`stacks`] — windowed per-routine energy stacks: the whole-run
//!   ledger telescoped across window boundaries into exact per-window
//!   time series (the windowed-telemetry signal path).
//! * [`report`] — ASCII renderings of breakdowns and bar charts.
//!
//! # Examples
//!
//! Account for the paper's step-counter interrupt cost (1000 interrupts ×
//! 48 µs at 5 W):
//!
//! ```
//! use iotse_energy::attribution::{Device, EnergyLedger, Routine};
//! use iotse_energy::units::Power;
//! use iotse_sim::time::SimDuration;
//!
//! let mut ledger = EnergyLedger::new();
//! let per_interrupt = Power::from_watts(5.0) * SimDuration::from_micros(48);
//! for _ in 0..1000 {
//!     ledger.charge(Device::Cpu, Routine::Interrupt, per_interrupt);
//! }
//! assert!((ledger.routine_total(Routine::Interrupt).as_millijoules() - 240.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod attribution;
pub mod flame;
pub mod monitor;
pub mod report;
pub mod stacks;
pub mod state;
pub mod units;

pub use attribution::{Breakdown, Device, EnergyLedger, NormalizedBreakdown, Routine};
pub use flame::FlameGraph;
pub use monitor::PowerTrace;
pub use stacks::EnergyStacks;
pub use state::{PowerState, StateTracker};
pub use units::{Energy, Power};
