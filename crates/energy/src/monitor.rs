//! The virtual power monitor.
//!
//! Stands in for the Monsoon High-Voltage Power Monitor the paper wired to
//! the hub's supply (§III-B). The real instrument *samples* at 100 ns; the
//! virtual one records the exact piecewise-constant power waveform as change
//! points, so energy integrals carry no sampling error, and can still emit a
//! fixed-rate sample stream (for CSV export / plotting) when asked.

use iotse_sim::time::{SimDuration, SimTime};

use crate::units::{Energy, Power};

/// An exact piecewise-constant power waveform.
///
/// # Examples
///
/// ```
/// use iotse_energy::monitor::PowerTrace;
/// use iotse_energy::units::Power;
/// use iotse_sim::time::SimTime;
///
/// let mut trace = PowerTrace::new(SimTime::ZERO, Power::from_watts(0.5));
/// trace.set(SimTime::from_millis(100), Power::from_watts(5.0));
/// trace.finish(SimTime::from_millis(200));
/// // 0.5 W × 100 ms + 5 W × 100 ms = 550 mJ
/// assert!((trace.energy().as_millijoules() - 550.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    /// `(instant, power-from-that-instant)` change points, strictly
    /// increasing in time.
    points: Vec<(SimTime, Power)>,
    end: Option<SimTime>,
}

impl PowerTrace {
    /// Starts a trace at `start` drawing `initial`.
    #[must_use]
    pub fn new(start: SimTime, initial: Power) -> Self {
        PowerTrace {
            points: vec![(start, initial)],
            end: None,
        }
    }

    /// Records that total power changed to `power` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last change point or the trace is
    /// finished.
    pub fn set(&mut self, now: SimTime, power: Power) {
        assert!(self.end.is_none(), "trace already finished");
        // iotse-lint: allow(IOTSE-E04) points is non-empty from new() and never fully drained
        let (last_t, last_p) = *self.points.last().expect("trace has a start point");
        assert!(now >= last_t, "power trace must move forward in time");
        if power == last_p {
            return;
        }
        if now == last_t {
            // Same-instant update: replace rather than store a zero-width step.
            // iotse-lint: allow(IOTSE-E04) points is non-empty from new() and never fully drained
            self.points.last_mut().expect("non-empty").1 = power;
            // Collapse if this made it equal to its predecessor.
            let n = self.points.len();
            if n >= 2 && self.points[n - 2].1 == power {
                self.points.pop();
            }
        } else {
            self.points.push((now, power));
        }
    }

    /// Adds `delta` to the current power level at `now` (convenience for
    /// per-device contributions).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PowerTrace::set`].
    pub fn adjust(&mut self, now: SimTime, delta: Power) {
        // iotse-lint: allow(IOTSE-E04) points is non-empty from new() and never fully drained
        let current = self.points.last().expect("trace has a start point").1;
        self.set(now, current + delta);
    }

    /// Closes the trace at `end`; further [`PowerTrace::set`] calls panic.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the last change point or the trace is
    /// already finished.
    pub fn finish(&mut self, end: SimTime) {
        assert!(self.end.is_none(), "trace already finished");
        // iotse-lint: allow(IOTSE-E04) points is non-empty from new() and never fully drained
        let last_t = self.points.last().expect("trace has a start point").0;
        assert!(end >= last_t, "end precedes last change point");
        self.end = Some(end);
    }

    /// `true` once [`PowerTrace::finish`] has been called.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.end.is_some()
    }

    /// The first instant of the trace.
    #[must_use]
    pub fn start(&self) -> SimTime {
        self.points[0].0
    }

    /// The closing instant, if finished.
    #[must_use]
    pub fn end(&self) -> Option<SimTime> {
        self.end
    }

    /// The change points recorded so far.
    #[must_use]
    pub fn points(&self) -> &[(SimTime, Power)] {
        &self.points
    }

    /// The power drawn at instant `t` (change points are left-inclusive).
    /// Returns zero outside the trace.
    #[must_use]
    pub fn power_at(&self, t: SimTime) -> Power {
        if t < self.start() {
            return Power::ZERO;
        }
        if let Some(end) = self.end {
            if t >= end {
                return Power::ZERO;
            }
        }
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => self.points[i].1,
            Err(0) => Power::ZERO,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The exact energy integral of the (finished) trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not finished.
    #[must_use]
    pub fn energy(&self) -> Energy {
        // iotse-lint: allow(IOTSE-E04) documented panic contract: integrate only finished traces
        let end = self.end.expect("finish() the trace before integrating");
        self.energy_between(self.start(), end)
    }

    /// The exact energy integral over `[from, to)`, clipped to the trace.
    #[must_use]
    pub fn energy_between(&self, from: SimTime, to: SimTime) -> Energy {
        let mut total = Energy::ZERO;
        let trace_end = self.end.unwrap_or(SimTime::MAX);
        let to = to.min(trace_end);
        if to <= from {
            return Energy::ZERO;
        }
        for (i, &(t0, p)) in self.points.iter().enumerate() {
            let t1 = self.points.get(i + 1).map_or(trace_end, |&(t, _)| t);
            let seg_start = t0.max(from);
            let seg_end = t1.min(to);
            if seg_end > seg_start {
                total += p * (seg_end - seg_start);
            }
        }
        total
    }

    /// The time-weighted average power of the finished trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not finished or has zero length.
    #[must_use]
    pub fn average_power(&self) -> Power {
        // iotse-lint: allow(IOTSE-E04) documented panic contract: average only finished traces
        let end = self.end.expect("finish() the trace before averaging");
        self.energy().over(end - self.start())
    }

    /// Samples the trace every `interval`, returning `(t, power)` rows —
    /// what the Monsoon would have logged.
    ///
    /// Sampling covers `[start, end)`: rows land at `start + k·interval`
    /// for every such instant strictly before `end`. Two consequences are
    /// deliberate and pinned by tests:
    ///
    /// * When `interval` does not divide the trace length, the partial
    ///   tail is represented by its last in-range row and `end` itself is
    ///   never sampled (sampling a 10 ms trace at 3 ms yields rows at 0,
    ///   3, 6 and 9 ms).
    /// * Coincident change points — [`PowerTrace::set`] at `now ==
    ///   last_t` — collapse to the last write before sampling ever sees
    ///   them, so no zero-width step can appear in a sample row.
    ///
    /// Change points falling between rows are invisible at the chosen
    /// rate; exact integrals come from [`PowerTrace::energy`], never from
    /// summing samples.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not finished or `interval` is zero.
    #[must_use]
    pub fn sample(&self, interval: SimDuration) -> Vec<(SimTime, Power)> {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        // iotse-lint: allow(IOTSE-E04) documented panic contract: sample only finished traces
        let end = self.end.expect("finish() the trace before sampling");
        let mut rows = Vec::new();
        let mut t = self.start();
        while t < end {
            rows.push((t, self.power_at(t)));
            t = t.saturating_add(interval);
        }
        rows
    }

    /// Renders the sampled trace as a `time_ms,power_mw` CSV string.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not finished or `interval` is zero.
    #[must_use]
    pub fn to_csv(&self, interval: SimDuration) -> String {
        let mut out = String::from("time_ms,power_mw\n");
        for (t, p) in self.sample(interval) {
            out.push_str(&format!(
                "{:.3},{:.3}\n",
                t.as_millis_f64(),
                p.as_milliwatts()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_is_exact() {
        let mut tr = PowerTrace::new(SimTime::ZERO, Power::from_watts(1.0));
        tr.set(SimTime::from_millis(3), Power::from_watts(2.0));
        tr.set(SimTime::from_millis(5), Power::from_watts(0.0));
        tr.finish(SimTime::from_millis(10));
        // 1 W × 3 ms + 2 W × 2 ms + 0 × 5 ms = 7 mJ
        assert!((tr.energy().as_millijoules() - 7.0).abs() < 1e-12);
        assert!((tr.average_power().as_milliwatts() - 700.0).abs() < 1e-9);
    }

    #[test]
    fn energy_between_clips() {
        let mut tr = PowerTrace::new(SimTime::ZERO, Power::from_watts(1.0));
        tr.finish(SimTime::from_millis(10));
        let e = tr.energy_between(SimTime::from_millis(2), SimTime::from_millis(50));
        assert!((e.as_millijoules() - 8.0).abs() < 1e-12);
        assert!(tr
            .energy_between(SimTime::from_millis(5), SimTime::from_millis(5))
            .is_zero());
    }

    #[test]
    fn power_at_respects_boundaries() {
        let mut tr = PowerTrace::new(SimTime::from_millis(1), Power::from_watts(3.0));
        tr.set(SimTime::from_millis(4), Power::from_watts(1.0));
        tr.finish(SimTime::from_millis(6));
        assert_eq!(tr.power_at(SimTime::ZERO), Power::ZERO);
        assert_eq!(tr.power_at(SimTime::from_millis(1)), Power::from_watts(3.0));
        assert_eq!(tr.power_at(SimTime::from_millis(3)), Power::from_watts(3.0));
        assert_eq!(tr.power_at(SimTime::from_millis(4)), Power::from_watts(1.0));
        assert_eq!(tr.power_at(SimTime::from_millis(6)), Power::ZERO);
    }

    #[test]
    fn duplicate_levels_are_collapsed() {
        let mut tr = PowerTrace::new(SimTime::ZERO, Power::from_watts(1.0));
        tr.set(SimTime::from_millis(1), Power::from_watts(1.0)); // no-op
        assert_eq!(tr.points().len(), 1);
        tr.set(SimTime::from_millis(2), Power::from_watts(2.0));
        tr.set(SimTime::from_millis(2), Power::from_watts(1.0)); // same-instant revert
        assert_eq!(tr.points().len(), 1);
    }

    #[test]
    fn adjust_adds_delta() {
        let mut tr = PowerTrace::new(SimTime::ZERO, Power::from_watts(1.0));
        tr.adjust(SimTime::from_millis(1), Power::from_watts(0.5));
        tr.adjust(SimTime::from_millis(2), -Power::from_watts(0.5));
        tr.finish(SimTime::from_millis(3));
        assert_eq!(tr.power_at(SimTime::from_millis(1)), Power::from_watts(1.5));
        assert_eq!(tr.power_at(SimTime::from_millis(2)), Power::from_watts(1.0));
    }

    #[test]
    fn sampling_produces_monsoon_style_rows() {
        let mut tr = PowerTrace::new(SimTime::ZERO, Power::from_watts(1.0));
        tr.set(SimTime::from_millis(5), Power::from_watts(2.0));
        tr.finish(SimTime::from_millis(10));
        let rows = tr.sample(SimDuration::from_millis(2));
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0], (SimTime::ZERO, Power::from_watts(1.0)));
        assert_eq!(rows[3], (SimTime::from_millis(6), Power::from_watts(2.0)));
        let csv = tr.to_csv(SimDuration::from_millis(5));
        assert_eq!(csv, "time_ms,power_mw\n0.000,1000.000\n5.000,2000.000\n");
    }

    #[test]
    fn sampling_a_non_dividing_interval_keeps_the_partial_tail() {
        // 10 ms trace at a 3 ms period: rows at 0, 3, 6, 9 — the 1 ms
        // remnant is represented by the t=9 ms row, and the end instant
        // itself is never sampled (the trace is [start, end)).
        let mut tr = PowerTrace::new(SimTime::ZERO, Power::from_watts(1.0));
        tr.set(SimTime::from_millis(9), Power::from_watts(2.0));
        tr.finish(SimTime::from_millis(10));
        let rows = tr.sample(SimDuration::from_millis(3));
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], (SimTime::ZERO, Power::from_watts(1.0)));
        assert_eq!(rows[3], (SimTime::from_millis(9), Power::from_watts(2.0)));
        // A period longer than the whole trace still yields the start row.
        let rows = tr.sample(SimDuration::from_millis(50));
        assert_eq!(rows, vec![(SimTime::ZERO, Power::from_watts(1.0))]);
    }

    #[test]
    fn coincident_change_points_sample_as_the_last_write() {
        // Two set() calls at the same instant store no zero-width step:
        // the later write wins, for stored points and samples alike.
        let mut tr = PowerTrace::new(SimTime::ZERO, Power::from_watts(1.0));
        tr.set(SimTime::from_millis(2), Power::from_watts(5.0));
        tr.set(SimTime::from_millis(2), Power::from_watts(3.0));
        tr.finish(SimTime::from_millis(4));
        assert_eq!(tr.points().len(), 2, "no zero-width step is stored");
        let rows = tr.sample(SimDuration::from_millis(1));
        assert_eq!(rows[2], (SimTime::from_millis(2), Power::from_watts(3.0)));
        // The integral sees only the surviving level: 1 W × 2 ms + 3 W × 2 ms.
        assert!((tr.energy().as_millijoules() - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn set_after_finish_panics() {
        let mut tr = PowerTrace::new(SimTime::ZERO, Power::ZERO);
        tr.finish(SimTime::from_millis(1));
        tr.set(SimTime::from_millis(2), Power::from_watts(1.0));
    }

    #[test]
    #[should_panic(expected = "forward in time")]
    fn set_backwards_panics() {
        let mut tr = PowerTrace::new(SimTime::from_millis(5), Power::ZERO);
        tr.set(SimTime::from_millis(1), Power::from_watts(1.0));
    }
}
