//! Physical units for the energy model.
//!
//! [`Power`] is stored in milliwatts and [`Energy`] in microjoules, both as
//! `f64`. The key law `energy = power × time` is expressed in the type
//! system: `Power * SimDuration -> Energy`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use iotse_sim::time::SimDuration;

/// Electrical power, stored in milliwatts.
///
/// # Examples
///
/// ```
/// use iotse_energy::units::{Energy, Power};
/// use iotse_sim::time::SimDuration;
///
/// let cpu_active = Power::from_watts(5.0);
/// let e = cpu_active * SimDuration::from_millis(48);
/// assert_eq!(e, Energy::from_millijoules(240.0)); // Fig 8 interrupt energy
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(f64);

/// Electrical energy, stored in microjoules.
///
/// # Examples
///
/// ```
/// use iotse_energy::units::Energy;
///
/// let total = Energy::from_millijoules(1902.0); // paper's step-counter run
/// assert_eq!(total.as_joules(), 1.902);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from milliwatts.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is NaN.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        assert!(!mw.is_nan(), "power must not be NaN");
        Power(mw)
    }

    /// Creates a power from watts.
    ///
    /// # Panics
    ///
    /// Panics if `w` is NaN.
    #[must_use]
    pub fn from_watts(w: f64) -> Self {
        Self::from_milliwatts(w * 1e3)
    }

    /// The power in milliwatts.
    #[must_use]
    pub fn as_milliwatts(self) -> f64 {
        self.0
    }

    /// The power in watts.
    #[must_use]
    pub fn as_watts(self) -> f64 {
        self.0 / 1e3
    }

    /// `true` if exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from microjoules.
    ///
    /// # Panics
    ///
    /// Panics if `uj` is NaN.
    #[must_use]
    pub fn from_microjoules(uj: f64) -> Self {
        assert!(!uj.is_nan(), "energy must not be NaN");
        Energy(uj)
    }

    /// Creates an energy from millijoules.
    ///
    /// # Panics
    ///
    /// Panics if `mj` is NaN.
    #[must_use]
    pub fn from_millijoules(mj: f64) -> Self {
        Self::from_microjoules(mj * 1e3)
    }

    /// Creates an energy from joules.
    ///
    /// # Panics
    ///
    /// Panics if `j` is NaN.
    #[must_use]
    pub fn from_joules(j: f64) -> Self {
        Self::from_microjoules(j * 1e6)
    }

    /// The energy in microjoules.
    #[must_use]
    pub fn as_microjoules(self) -> f64 {
        self.0
    }

    /// The energy in millijoules.
    #[must_use]
    pub fn as_millijoules(self) -> f64 {
        self.0 / 1e3
    }

    /// The energy in joules.
    #[must_use]
    pub fn as_joules(self) -> f64 {
        self.0 / 1e6
    }

    /// `self / other`, the dimensionless ratio of two energies.
    ///
    /// Returns 0 when `other` is zero (used for normalizing empty
    /// breakdowns).
    #[must_use]
    pub fn ratio_of(self, other: Energy) -> f64 {
        if other.0 == 0.0 {
            0.0
        } else {
            self.0 / other.0
        }
    }

    /// `true` if exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Average power if this energy was spent over `span`.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    #[must_use]
    pub fn over(self, span: SimDuration) -> Power {
        assert!(!span.is_zero(), "cannot average energy over a zero span");
        Power::from_milliwatts(self.as_millijoules() / span.as_secs_f64())
    }
}

impl Mul<SimDuration> for Power {
    type Output = Energy;
    fn mul(self, d: SimDuration) -> Energy {
        // mW × s = mJ; stored in µJ.
        Energy::from_millijoules(self.0 * d.as_secs_f64())
    }
}

impl Mul<Power> for SimDuration {
    type Output = Energy;
    fn mul(self, p: Power) -> Energy {
        p * self
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}
impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}
impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}
impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, k: f64) -> Power {
        Power(self.0 * k)
    }
}
impl Div<f64> for Power {
    type Output = Power;
    fn div(self, k: f64) -> Power {
        Power(self.0 / k)
    }
}
impl Neg for Power {
    type Output = Power;
    fn neg(self) -> Power {
        Power(-self.0)
    }
}
impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, |a, b| a + b)
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}
impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}
impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}
impl SubAssign for Energy {
    fn sub_assign(&mut self, rhs: Energy) {
        self.0 -= rhs.0;
    }
}
impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, k: f64) -> Energy {
        Energy(self.0 * k)
    }
}
impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, k: f64) -> Energy {
        Energy(self.0 / k)
    }
}
impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e3 {
            write!(f, "{:.3}W", self.as_watts())
        } else {
            write!(f, "{:.3}mW", self.0)
        }
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let uj = self.0.abs();
        if uj >= 1e6 {
            write!(f, "{:.3}J", self.as_joules())
        } else if uj >= 1e3 {
            write!(f, "{:.3}mJ", self.as_millijoules())
        } else {
            write!(f, "{:.3}uJ", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_sim::time::SimDuration;

    #[test]
    fn power_times_time_is_energy() {
        // The paper's sleep-transition overhead: 2.5 W × 1.6 ms = 4 mJ.
        let e = Power::from_watts(2.5) * SimDuration::from_micros(1600);
        assert!((e.as_millijoules() - 4.0).abs() < 1e-12);
        // Commutes.
        assert_eq!(e, SimDuration::from_micros(1600) * Power::from_watts(2.5));
    }

    #[test]
    fn break_even_sleep_time_matches_paper() {
        // 4 mJ / (5 W − 1.5 W) = 1.142857 ms (§III-A says ≈ 1.14 ms).
        let overhead = Power::from_watts(2.5) * SimDuration::from_micros(1600);
        let delta = Power::from_watts(5.0) - Power::from_watts(1.5);
        let break_even_s = overhead.as_joules() / delta.as_watts();
        assert!((break_even_s * 1e3 - 1.1428).abs() < 1e-3);
    }

    #[test]
    fn unit_conversions_round_trip() {
        assert_eq!(Power::from_watts(1.5).as_milliwatts(), 1500.0);
        assert_eq!(Energy::from_joules(2.0).as_millijoules(), 2000.0);
        assert_eq!(Energy::from_millijoules(1.0).as_microjoules(), 1000.0);
    }

    #[test]
    fn arithmetic_behaves() {
        let p = Power::from_watts(5.0) - Power::from_watts(1.5);
        assert_eq!(p, Power::from_watts(3.5));
        assert_eq!(p * 2.0, Power::from_watts(7.0));
        assert_eq!(p / 3.5, Power::from_watts(1.0));
        assert_eq!(
            -Power::from_watts(1.0) + Power::from_watts(1.0),
            Power::ZERO
        );

        let mut e = Energy::from_millijoules(10.0);
        e += Energy::from_millijoules(5.0);
        e -= Energy::from_millijoules(3.0);
        assert_eq!(e, Energy::from_millijoules(12.0));
        assert_eq!(e * 0.5, Energy::from_millijoules(6.0));
        assert_eq!(e / 4.0, Energy::from_millijoules(3.0));
    }

    #[test]
    fn sums_work() {
        let p: Power = [1.0, 2.0, 3.0].iter().map(|&w| Power::from_watts(w)).sum();
        assert_eq!(p, Power::from_watts(6.0));
        let e: Energy = (1..=3)
            .map(|i| Energy::from_millijoules(f64::from(i)))
            .sum();
        assert_eq!(e, Energy::from_millijoules(6.0));
    }

    #[test]
    fn ratio_and_average_power() {
        let a = Energy::from_millijoules(52.0);
        let b = Energy::from_millijoules(100.0);
        assert!((a.ratio_of(b) - 0.52).abs() < 1e-12);
        assert_eq!(a.ratio_of(Energy::ZERO), 0.0);
        let avg = b.over(SimDuration::from_secs(1));
        assert_eq!(avg, Power::from_milliwatts(100.0));
    }

    #[test]
    #[should_panic(expected = "zero span")]
    fn average_over_zero_span_panics() {
        let _ = Energy::from_joules(1.0).over(SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Power::from_watts(5.0).to_string(), "5.000W");
        assert_eq!(Power::from_milliwatts(21.0).to_string(), "21.000mW");
        assert_eq!(Energy::from_joules(1.902).to_string(), "1.902J");
        assert_eq!(Energy::from_millijoules(4.0).to_string(), "4.000mJ");
        assert_eq!(Energy::from_microjoules(300.0).to_string(), "300.000uJ");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_power_rejected() {
        let _ = Power::from_milliwatts(f64::NAN);
    }
}
