//! Per-routine energy attribution.
//!
//! The paper decomposes every app execution into four sub-tasks (§II): sensor
//! **data collection** at the MCU, the MCU **interrupt** to the CPU, the
//! **data transfer** from MCU to CPU, and the **app-specific computation**.
//! [`EnergyLedger`] accumulates energy per `(Device, Routine)` cell so that
//! every stacked bar in Figures 3, 7, 9, 10, 11 and 12 — and the Figure 4
//! CPU/MCU/physical split — can be read straight out of the ledger.

use std::collections::BTreeMap;
use std::fmt;

use iotse_sim::metrics::MetricsRegistry;

use crate::units::Energy;

/// The hardware component that spent the energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Device {
    /// The Main-board CPU (Raspberry Pi 3B in the paper).
    Cpu,
    /// The MCU board (ESP8266 in the paper).
    Mcu,
    /// The physical interconnect (PIO/UART wires and I/O controller).
    Link,
    /// An attached sensor (aggregated over all sensors).
    Sensor,
}

impl Device {
    /// All devices, in display order.
    pub const ALL: [Device; 4] = [Device::Cpu, Device::Mcu, Device::Link, Device::Sensor];
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Device::Cpu => "CPU",
            Device::Mcu => "MCU",
            Device::Link => "Link",
            Device::Sensor => "Sensor",
        };
        f.write_str(s)
    }
}

/// The paper's four execution sub-tasks, plus an explicit idle bucket for
/// out-of-workload energy (the Figure 1 idle-hub experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Routine {
    /// Task I–III of §II-B: checking the sensor, reading its data register,
    /// and formatting raw data, all at the MCU.
    DataCollection,
    /// MCU→CPU interrupt raising and CPU-side interrupt processing.
    Interrupt,
    /// Moving sensor data from the MCU board to Main-board DRAM — including
    /// the CPU time spent *stalling for* that data, which the paper
    /// attributes to the transfer routine (§III-A).
    DataTransfer,
    /// The app-specific computation (step detection, IDCT, …).
    AppCompute,
    /// Energy outside any workload window (idle hub).
    Idle,
}

impl Routine {
    /// The four workload routines of the paper's breakdowns, in the order
    /// the figures stack them.
    pub const WORKLOAD: [Routine; 4] = [
        Routine::DataCollection,
        Routine::Interrupt,
        Routine::DataTransfer,
        Routine::AppCompute,
    ];

    /// All routines including [`Routine::Idle`].
    pub const ALL: [Routine; 5] = [
        Routine::DataCollection,
        Routine::Interrupt,
        Routine::DataTransfer,
        Routine::AppCompute,
        Routine::Idle,
    ];
}

impl fmt::Display for Routine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Routine::DataCollection => "Data Collection",
            Routine::Interrupt => "Interrupt",
            Routine::DataTransfer => "Data Transfer",
            Routine::AppCompute => "App-specific Computing",
            Routine::Idle => "Idle",
        };
        f.write_str(s)
    }
}

/// An accumulating map of energy per `(Device, Routine)`.
///
/// # Examples
///
/// ```
/// use iotse_energy::attribution::{Device, EnergyLedger, Routine};
/// use iotse_energy::units::Energy;
///
/// let mut ledger = EnergyLedger::new();
/// ledger.charge(Device::Cpu, Routine::Interrupt, Energy::from_millijoules(240.0));
/// ledger.charge(Device::Cpu, Routine::DataTransfer, Energy::from_millijoules(960.0));
/// assert_eq!(ledger.routine_total(Routine::Interrupt).as_millijoules(), 240.0);
/// assert_eq!(ledger.total().as_millijoules(), 1200.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyLedger {
    cells: BTreeMap<(Device, Routine), Energy>,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `energy` to the `(device, routine)` cell.
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative — energy only ever accumulates.
    pub fn charge(&mut self, device: Device, routine: Routine, energy: Energy) {
        assert!(
            energy.as_microjoules() >= 0.0,
            "cannot charge negative energy ({energy}) to {device}/{routine}"
        );
        *self.cells.entry((device, routine)).or_insert(Energy::ZERO) += energy;
    }

    /// Energy in one cell.
    #[must_use]
    pub fn cell(&self, device: Device, routine: Routine) -> Energy {
        self.cells
            .get(&(device, routine))
            .copied()
            .unwrap_or(Energy::ZERO)
    }

    /// Total energy attributed to `routine` across all devices.
    #[must_use]
    pub fn routine_total(&self, routine: Routine) -> Energy {
        self.cells
            .iter()
            .filter(|((_, r), _)| *r == routine)
            .map(|(_, &e)| e)
            .sum()
    }

    /// Total energy spent by `device` across all routines.
    #[must_use]
    pub fn device_total(&self, device: Device) -> Energy {
        self.cells
            .iter()
            .filter(|((d, _), _)| *d == device)
            .map(|(_, &e)| e)
            .sum()
    }

    /// Grand total over every cell.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.cells.values().copied().sum()
    }

    /// Total over the four workload routines (excludes [`Routine::Idle`]).
    #[must_use]
    pub fn workload_total(&self) -> Energy {
        Routine::WORKLOAD
            .iter()
            .map(|&r| self.routine_total(r))
            .sum()
    }

    /// Adds every cell of `other` into this ledger.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (&key, &e) in &other.cells {
            *self.cells.entry(key).or_insert(Energy::ZERO) += e;
        }
    }

    /// The four-routine breakdown the paper's stacked bars plot.
    #[must_use]
    pub fn breakdown(&self) -> Breakdown {
        Breakdown {
            data_collection: self.routine_total(Routine::DataCollection),
            interrupt: self.routine_total(Routine::Interrupt),
            data_transfer: self.routine_total(Routine::DataTransfer),
            app_compute: self.routine_total(Routine::AppCompute),
        }
    }

    /// Iterates over the non-zero cells in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (Device, Routine, Energy)> + '_ {
        self.cells.iter().map(|(&(d, r), &e)| (d, r, e))
    }

    /// Publishes the ledger as `iotse_energy_*` gauges (microjoules): the
    /// grand total plus one gauge per device and per routine. Names are
    /// static literals so the metric surface is greppable and checked by
    /// lint rule IOTSE-M09.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        let total = reg.gauge("iotse_energy_total_microjoules");
        reg.set_gauge(total, self.total().as_microjoules());
        for device in Device::ALL {
            let name = match device {
                Device::Cpu => "iotse_energy_device_cpu_microjoules",
                Device::Mcu => "iotse_energy_device_mcu_microjoules",
                Device::Link => "iotse_energy_device_link_microjoules",
                Device::Sensor => "iotse_energy_device_sensor_microjoules",
            };
            let g = reg.gauge(name);
            reg.set_gauge(g, self.device_total(device).as_microjoules());
        }
        for routine in Routine::ALL {
            let name = match routine {
                Routine::DataCollection => "iotse_energy_routine_data_collection_microjoules",
                Routine::Interrupt => "iotse_energy_routine_interrupt_microjoules",
                Routine::DataTransfer => "iotse_energy_routine_data_transfer_microjoules",
                Routine::AppCompute => "iotse_energy_routine_app_compute_microjoules",
                Routine::Idle => "iotse_energy_routine_idle_microjoules",
            };
            let g = reg.gauge(name);
            reg.set_gauge(g, self.routine_total(routine).as_microjoules());
        }
    }
}

/// The four-routine energy breakdown of one scheme run — one stacked bar of
/// Figures 3/7/9/10/11/12.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// Sensor data collection at the MCU.
    pub data_collection: Energy,
    /// Interrupt raising + handling.
    pub interrupt: Energy,
    /// MCU→CPU data movement, including CPU stall-for-data.
    pub data_transfer: Energy,
    /// App-specific computation.
    pub app_compute: Energy,
}

impl Breakdown {
    /// Sum of the four routines.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.data_collection + self.interrupt + self.data_transfer + self.app_compute
    }

    /// Each routine as a fraction of `reference` (the paper normalizes each
    /// scheme's bar to the *Baseline* total, so bars of better schemes sum
    /// to < 1).
    #[must_use]
    pub fn normalized_to(&self, reference: Energy) -> NormalizedBreakdown {
        NormalizedBreakdown {
            data_collection: self.data_collection.ratio_of(reference),
            interrupt: self.interrupt.ratio_of(reference),
            data_transfer: self.data_transfer.ratio_of(reference),
            app_compute: self.app_compute.ratio_of(reference),
        }
    }

    /// Fractions of this breakdown's own total (sums to 1 unless empty).
    #[must_use]
    pub fn fractions(&self) -> NormalizedBreakdown {
        self.normalized_to(self.total())
    }

    /// The `[data_collection, interrupt, data_transfer, app_compute]`
    /// energies as an array, in figure stacking order.
    #[must_use]
    pub fn as_array(&self) -> [Energy; 4] {
        [
            self.data_collection,
            self.interrupt,
            self.data_transfer,
            self.app_compute,
        ]
    }
}

impl std::ops::Add for Breakdown {
    type Output = Breakdown;
    fn add(self, rhs: Breakdown) -> Breakdown {
        Breakdown {
            data_collection: self.data_collection + rhs.data_collection,
            interrupt: self.interrupt + rhs.interrupt,
            data_transfer: self.data_transfer + rhs.data_transfer,
            app_compute: self.app_compute + rhs.app_compute,
        }
    }
}

/// A [`Breakdown`] expressed as dimensionless fractions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NormalizedBreakdown {
    /// Fraction for data collection.
    pub data_collection: f64,
    /// Fraction for interrupts.
    pub interrupt: f64,
    /// Fraction for data transfer.
    pub data_transfer: f64,
    /// Fraction for app-specific compute.
    pub app_compute: f64,
}

impl NormalizedBreakdown {
    /// Sum of the four fractions.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.data_collection + self.interrupt + self.data_transfer + self.app_compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mj(x: f64) -> Energy {
        Energy::from_millijoules(x)
    }

    #[test]
    fn ledger_accumulates_per_cell() {
        let mut l = EnergyLedger::new();
        l.charge(Device::Cpu, Routine::Interrupt, mj(1.0));
        l.charge(Device::Cpu, Routine::Interrupt, mj(2.0));
        l.charge(Device::Mcu, Routine::Interrupt, mj(4.0));
        assert_eq!(l.cell(Device::Cpu, Routine::Interrupt), mj(3.0));
        assert_eq!(l.routine_total(Routine::Interrupt), mj(7.0));
        assert_eq!(l.device_total(Device::Cpu), mj(3.0));
        assert_eq!(l.cell(Device::Link, Routine::Idle), Energy::ZERO);
    }

    #[test]
    fn totals_and_workload_total() {
        let mut l = EnergyLedger::new();
        l.charge(Device::Cpu, Routine::AppCompute, mj(5.0));
        l.charge(Device::Cpu, Routine::Idle, mj(100.0));
        assert_eq!(l.total(), mj(105.0));
        assert_eq!(l.workload_total(), mj(5.0));
    }

    #[test]
    fn merge_adds_cell_wise() {
        let mut a = EnergyLedger::new();
        a.charge(Device::Cpu, Routine::DataTransfer, mj(1.0));
        let mut b = EnergyLedger::new();
        b.charge(Device::Cpu, Routine::DataTransfer, mj(2.0));
        b.charge(Device::Link, Routine::DataTransfer, mj(3.0));
        a.merge(&b);
        assert_eq!(a.cell(Device::Cpu, Routine::DataTransfer), mj(3.0));
        assert_eq!(a.cell(Device::Link, Routine::DataTransfer), mj(3.0));
        assert_eq!(a.total(), mj(6.0));
    }

    #[test]
    fn breakdown_reads_routine_totals() {
        let mut l = EnergyLedger::new();
        l.charge(Device::Mcu, Routine::DataCollection, mj(6.0));
        l.charge(Device::Cpu, Routine::Interrupt, mj(10.0));
        l.charge(Device::Cpu, Routine::DataTransfer, mj(77.0));
        l.charge(Device::Mcu, Routine::DataTransfer, mj(4.0));
        l.charge(Device::Cpu, Routine::AppCompute, mj(3.0));
        let b = l.breakdown();
        assert_eq!(b.data_collection, mj(6.0));
        assert_eq!(b.interrupt, mj(10.0));
        assert_eq!(b.data_transfer, mj(81.0));
        assert_eq!(b.app_compute, mj(3.0));
        assert_eq!(b.total(), mj(100.0));
    }

    #[test]
    fn normalization_against_baseline_reference() {
        let batching = Breakdown {
            data_collection: mj(6.0),
            interrupt: mj(3.0),
            data_transfer: mj(38.0),
            app_compute: mj(1.0),
        };
        let n = batching.normalized_to(mj(100.0));
        assert!((n.total() - 0.48).abs() < 1e-12); // 52% saving vs baseline
        let f = batching.fractions();
        assert!((f.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_add_is_componentwise() {
        let a = Breakdown {
            data_collection: mj(1.0),
            interrupt: mj(2.0),
            data_transfer: mj(3.0),
            app_compute: mj(4.0),
        };
        let s = a + a;
        assert_eq!(
            s.as_array().map(|e| e.as_millijoules()),
            [2.0, 4.0, 6.0, 8.0]
        );
    }

    #[test]
    #[should_panic(expected = "negative energy")]
    fn negative_charge_panics() {
        EnergyLedger::new().charge(Device::Cpu, Routine::Idle, mj(-1.0));
    }

    #[test]
    fn iter_is_deterministic_and_displays() {
        let mut l = EnergyLedger::new();
        l.charge(Device::Mcu, Routine::DataCollection, mj(1.0));
        l.charge(Device::Cpu, Routine::AppCompute, mj(1.0));
        let order: Vec<String> = l.iter().map(|(d, r, _)| format!("{d}/{r}")).collect();
        assert_eq!(
            order,
            vec!["CPU/App-specific Computing", "MCU/Data Collection"]
        );
    }
}
