//! Device power-state machines.
//!
//! A [`StateTracker`] follows one device through its power states, exactly
//! integrating `power × time` per interval and optionally recording the
//! state timeline (the paper's Figure 5). The tracker is policy-free: *what*
//! states exist and *when* to switch is the platform model's job
//! (`iotse-core`); this type guarantees the accounting is exact and that
//! time only moves forward.

use std::collections::BTreeMap;
use std::fmt;

use iotse_sim::time::{SimDuration, SimTime};

use crate::units::{Energy, Power};

/// A power state of some device: a name and a draw.
///
/// Implemented by the CPU/MCU state enums in `iotse-core`.
pub trait PowerState: Copy + Eq + fmt::Debug {
    /// Steady-state power draw while in this state.
    fn power(self) -> Power;
    /// Short display name (used in timelines, e.g. `"active"`).
    fn name(self) -> &'static str;
}

/// Follows one device through its power states with exact energy
/// integration.
///
/// # Examples
///
/// ```
/// use iotse_energy::state::{PowerState, StateTracker};
/// use iotse_energy::units::Power;
/// use iotse_sim::time::SimTime;
///
/// #[derive(Debug, Clone, Copy, PartialEq, Eq)]
/// enum Cpu { Active, Sleep }
/// impl PowerState for Cpu {
///     fn power(self) -> Power {
///         match self {
///             Cpu::Active => Power::from_watts(5.0),
///             Cpu::Sleep => Power::from_watts(1.5),
///         }
///     }
///     fn name(self) -> &'static str {
///         match self { Cpu::Active => "active", Cpu::Sleep => "sleep" }
///     }
/// }
///
/// let mut t = StateTracker::new(SimTime::ZERO, Cpu::Active);
/// let spent = t.transition(SimTime::from_millis(10), Cpu::Sleep);
/// assert_eq!(spent.as_millijoules(), 50.0); // 5 W × 10 ms
/// assert_eq!(t.state(), Cpu::Sleep);
/// ```
#[derive(Debug, Clone)]
pub struct StateTracker<S: PowerState> {
    current: S,
    since: SimTime,
    last_accrual: SimTime,
    total_energy: Energy,
    time_in: BTreeMap<&'static str, SimDuration>,
    transitions: u64,
    timeline: Option<Vec<(SimTime, S)>>,
}

impl<S: PowerState> StateTracker<S> {
    /// Starts tracking at `start` in `initial` state, without timeline
    /// recording.
    #[must_use]
    pub fn new(start: SimTime, initial: S) -> Self {
        StateTracker {
            current: initial,
            since: start,
            last_accrual: start,
            total_energy: Energy::ZERO,
            time_in: BTreeMap::new(),
            transitions: 0,
            timeline: None,
        }
    }

    /// Starts tracking with timeline recording enabled (needed for
    /// Figure 5-style renderings).
    #[must_use]
    pub fn with_timeline(start: SimTime, initial: S) -> Self {
        let mut t = Self::new(start, initial);
        t.timeline = Some(vec![(start, initial)]);
        t
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> S {
        self.current
    }

    /// Instant of the last state change (or start).
    #[must_use]
    pub fn state_entered_at(&self) -> SimTime {
        self.since
    }

    /// Number of state changes so far.
    #[must_use]
    pub fn transition_count(&self) -> u64 {
        self.transitions
    }

    /// Integrates energy in the current state up to `now` and returns the
    /// energy accrued *by this call* (callers attribute it to a routine).
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous accrual.
    pub fn accrue(&mut self, now: SimTime) -> Energy {
        let held = now.duration_since(self.last_accrual);
        self.last_accrual = now;
        let e = self.current.power() * held;
        self.total_energy += e;
        *self
            .time_in
            .entry(self.current.name())
            .or_insert(SimDuration::ZERO) += held;
        e
    }

    /// Switches to `next` at `now`, first accruing energy for the interval
    /// spent in the old state; returns that accrued energy.
    ///
    /// Transitioning to the *same* state is a no-op apart from the accrual.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous accrual.
    pub fn transition(&mut self, now: SimTime, next: S) -> Energy {
        let e = self.accrue(now);
        if next != self.current {
            self.current = next;
            self.since = now;
            self.transitions += 1;
            if let Some(tl) = &mut self.timeline {
                tl.push((now, next));
            }
        }
        e
    }

    /// Total energy integrated so far.
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.total_energy
    }

    /// Time spent in the state named `name` (accrued so far).
    #[must_use]
    pub fn time_in(&self, name: &str) -> SimDuration {
        self.time_in.get(name).copied().unwrap_or(SimDuration::ZERO)
    }

    /// Total accrued time across all states.
    #[must_use]
    pub fn time_total(&self) -> SimDuration {
        self.time_in.values().copied().sum()
    }

    /// Fraction of accrued time spent in state `name` (0 when nothing has
    /// been accrued).
    #[must_use]
    pub fn fraction_in(&self, name: &str) -> f64 {
        let total = self.time_total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.time_in(name).as_secs_f64() / total
        }
    }

    /// The recorded timeline as `(start, state)` change points, if timeline
    /// recording was enabled.
    #[must_use]
    pub fn timeline(&self) -> Option<&[(SimTime, S)]> {
        self.timeline.as_deref()
    }

    /// Renders the timeline as `(start, end, name)` segments, closing the
    /// final segment at `end`. Returns an empty vector when timeline
    /// recording was disabled.
    #[must_use]
    pub fn segments(&self, end: SimTime) -> Vec<(SimTime, SimTime, &'static str)> {
        let Some(tl) = &self.timeline else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(tl.len());
        for w in tl.windows(2) {
            out.push((w[0].0, w[1].0, w[0].1.name()));
        }
        if let Some(&(start, state)) = tl.last() {
            if end > start {
                out.push((start, end, state.name()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Test {
        Hi,
        Lo,
    }

    impl PowerState for Test {
        fn power(self) -> Power {
            match self {
                Test::Hi => Power::from_watts(4.0),
                Test::Lo => Power::from_watts(1.0),
            }
        }
        fn name(self) -> &'static str {
            match self {
                Test::Hi => "hi",
                Test::Lo => "lo",
            }
        }
    }

    #[test]
    fn energy_integrates_per_state() {
        let mut t = StateTracker::new(SimTime::ZERO, Test::Hi);
        t.transition(SimTime::from_millis(10), Test::Lo); // 4 W × 10 ms = 40 mJ
        t.transition(SimTime::from_millis(30), Test::Hi); // 1 W × 20 ms = 20 mJ
        t.accrue(SimTime::from_millis(40)); // 4 W × 10 ms = 40 mJ
        assert!((t.total_energy().as_millijoules() - 100.0).abs() < 1e-9);
        assert_eq!(t.time_in("hi"), SimDuration::from_millis(20));
        assert_eq!(t.time_in("lo"), SimDuration::from_millis(20));
        assert_eq!(t.transition_count(), 2);
        assert!((t.fraction_in("hi") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accrue_returns_incremental_energy() {
        let mut t = StateTracker::new(SimTime::ZERO, Test::Lo);
        let e1 = t.accrue(SimTime::from_millis(5));
        let e2 = t.accrue(SimTime::from_millis(5)); // zero-length
        assert!((e1.as_millijoules() - 5.0).abs() < 1e-12);
        assert!(e2.is_zero());
    }

    #[test]
    fn same_state_transition_is_not_counted() {
        let mut t = StateTracker::new(SimTime::ZERO, Test::Hi);
        t.transition(SimTime::from_millis(1), Test::Hi);
        assert_eq!(t.transition_count(), 0);
        assert_eq!(t.state(), Test::Hi);
    }

    #[test]
    fn timeline_segments_close_at_end() {
        let mut t = StateTracker::with_timeline(SimTime::ZERO, Test::Hi);
        t.transition(SimTime::from_millis(2), Test::Lo);
        t.transition(SimTime::from_millis(7), Test::Hi);
        let segs = t.segments(SimTime::from_millis(10));
        assert_eq!(
            segs,
            vec![
                (SimTime::ZERO, SimTime::from_millis(2), "hi"),
                (SimTime::from_millis(2), SimTime::from_millis(7), "lo"),
                (SimTime::from_millis(7), SimTime::from_millis(10), "hi"),
            ]
        );
    }

    #[test]
    fn timeline_absent_when_disabled() {
        let t = StateTracker::new(SimTime::ZERO, Test::Hi);
        assert!(t.timeline().is_none());
        assert!(t.segments(SimTime::from_secs(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn accruing_backwards_panics() {
        let mut t = StateTracker::new(SimTime::from_millis(5), Test::Hi);
        t.accrue(SimTime::from_millis(1));
    }
}
