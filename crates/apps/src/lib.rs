//! # iotse-apps — the eleven Table II workloads, with real kernels
//!
//! Part of the `iotse` reproduction of *"Understanding Energy Efficiency in
//! IoT App Executions"* (ICDCS 2019). The paper ran eleven off-the-shelf
//! apps; this crate reimplements each one as a
//! [`Workload`](iotse_core::workload::Workload) whose `compute` is a **real
//! kernel** — step detection, STA/LTA triggering, QRS detection, CoAP and
//! JSON codecs, content-defined-chunking sync, a JPEG pipeline with a true
//! IDCT, minutiae matching and DTW keyword spotting — so functional
//! correctness is testable against the simulated world's ground truth.
//!
//! * [`kernels`] — the algorithm libraries.
//! * [`table2`] — A1–A11 workload definitions (sensors, Figure 6
//!   resources, kernels).
//! * [`scratch`] — reusable per-workload buffers that make steady-state
//!   window execution (near) zero-alloc.
//! * [`catalog`] — build apps by [`AppId`](iotse_core::AppId), including
//!   the paper's 14 Figure 11 combinations.
//!
//! # Examples
//!
//! Run the paper's running example (the step counter) under all three
//! single-app schemes:
//!
//! ```
//! use iotse_apps::catalog;
//! use iotse_core::{AppId, Scenario, Scheme};
//!
//! let seed = 42;
//! let baseline = Scenario::new(Scheme::Baseline, catalog::apps(&[AppId::A2], seed))
//!     .windows(2)
//!     .seed(seed)
//!     .run();
//! let com = Scenario::new(Scheme::Com, catalog::apps(&[AppId::A2], seed))
//!     .windows(2)
//!     .seed(seed)
//!     .run();
//! assert!(com.total_energy() < baseline.total_energy());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod kernels;
pub mod scratch;
pub mod table2;

pub use catalog::{app, apps, figure11_combinations, light_apps};
