//! The eleven Table II workloads (A1–A11).
//!
//! Each module implements [`Workload`](iotse_core::workload::Workload) with
//! the paper's sensor set, interrupt counts and Figure 6 resource profile —
//! and a **real kernel** in `compute` whose outputs the integration tests
//! check against the world's ground truth.
//!
//! Resource profiles reproduce Figure 6 exactly in aggregate: mean memory
//! 26.2 KB (25.8 heap + 0.4 stack), mean 47.5 MIPS, minimum memory 16.8 KB
//! (A7), maximum 36.3 KB (A9), minimum MIPS 3.94 (A2), maximum 108.8 (A8).
//! CPU/MCU compute times are fitted to Figures 8 and 13 (see DESIGN.md).

pub mod a1;
pub mod a10;
pub mod a11;
pub mod a2;
pub mod a3;
pub mod a4;
pub mod a5;
pub mod a6;
pub mod a7;
pub mod a8;
pub mod a9;

pub use a1::CoapServer;
pub use a10::FingerprintRegister;
pub use a11::SpeechToText;
pub use a2::StepCounter;
pub use a3::ArduinoJson;
pub use a4::M2xClient;
pub use a5::Blynk;
pub use a6::DropboxManager;
pub use a7::EarthquakeDetection;
pub use a8::HeartbeatIrregularity;
pub use a9::JpegDecoder;

use iotse_core::workload::ResourceProfile;
use iotse_sim::time::SimDuration;

/// Builds a [`ResourceProfile`] from figure-style units: heap/stack bytes,
/// MIPS, and CPU/MCU compute milliseconds.
#[must_use]
pub(crate) fn profile(
    heap_bytes: usize,
    stack_bytes: usize,
    mips: f64,
    cpu_ms: f64,
    mcu_ms: f64,
) -> ResourceProfile {
    ResourceProfile {
        heap_bytes,
        stack_bytes,
        mips,
        cpu_compute: SimDuration::from_millis_f64(cpu_ms),
        mcu_compute: SimDuration::from_millis_f64(mcu_ms),
    }
}

#[cfg(test)]
mod tests {

    use iotse_core::workload::Workload;

    fn all_light() -> Vec<Box<dyn Workload>> {
        crate::catalog::light_apps(42)
    }

    #[test]
    fn figure6_aggregates_hold() {
        let apps = all_light();
        let n = apps.len() as f64;
        let mean_mem = apps
            .iter()
            .map(|a| a.resources().memory_bytes() as f64 / 1024.0)
            .sum::<f64>()
            / n;
        let mean_mips = apps.iter().map(|a| a.resources().mips).sum::<f64>() / n;
        assert!((mean_mem - 26.2).abs() < 0.3, "mean memory {mean_mem} KB");
        assert!((mean_mips - 47.45).abs() < 0.5, "mean MIPS {mean_mips}");
    }

    #[test]
    fn figure6_extremes_hold() {
        let apps = all_light();
        let mem = |id: iotse_core::AppId| {
            apps.iter()
                .find(|a| a.id() == id)
                .map(|a| a.resources().memory_bytes() as f64 / 1024.0)
                .expect("app present")
        };
        let mips = |id: iotse_core::AppId| {
            apps.iter()
                .find(|a| a.id() == id)
                .map(|a| a.resources().mips)
                .expect("present")
        };
        // Earthquake has the minimum memory (16.8 KB), JPEG the maximum
        // (36.3 KB); step-counter the minimum MIPS (3.94), heartbeat the
        // maximum (108.8).
        assert!((mem(iotse_core::AppId::A7) - 16.8).abs() < 0.2);
        assert!((mem(iotse_core::AppId::A9) - 36.3).abs() < 0.2);
        for a in &apps {
            assert!(
                a.resources().memory_bytes() >= 16_500,
                "{} below A7",
                a.name()
            );
            assert!(
                a.resources().memory_bytes() <= 37_200,
                "{} above A9",
                a.name()
            );
        }
        assert!((mips(iotse_core::AppId::A2) - 3.94).abs() < 1e-9);
        assert!((mips(iotse_core::AppId::A8) - 108.8).abs() < 1e-9);
    }

    #[test]
    fn table2_sensor_data_and_interrupts() {
        use iotse_core::workload::{window_bytes, window_interrupts};
        // (app index, expected KB per Table II, expected interrupts)
        let expected = [
            (0, 11.72, 2000),
            (1, 11.72, 1000),
            (2, 0.16, 20),
            (3, 20.47, 2220),
            (4, 36.66, 1221), // paper prints 36.91 KB; a 24 KiB frame gives 36.66
            (5, 11.72, 2000),
            (6, 11.72, 1000),
            (7, 3.91, 1000),
            (8, 24.0, 1), // paper prints 23.81 KB for the 24 KiB frame
            (9, 0.5, 1),
        ];
        let apps = all_light();
        for (i, kb, interrupts) in expected {
            let app = &apps[i];
            let got_kb = window_bytes(app.as_ref()) as f64 / 1024.0;
            assert!(
                (got_kb - kb).abs() < 0.01,
                "{}: {got_kb:.2} KB vs Table II {kb}",
                app.name()
            );
            assert_eq!(
                window_interrupts(app.as_ref()),
                interrupts,
                "{}",
                app.name()
            );
        }
    }

    #[test]
    fn a11_matches_table2_row() {
        use iotse_core::workload::{window_bytes, window_interrupts};
        let a11 = crate::catalog::app(iotse_core::AppId::A11, 42);
        assert!((window_bytes(a11.as_ref()) as f64 / 1024.0 - 5.86).abs() < 0.01);
        assert_eq!(window_interrupts(a11.as_ref()), 1000);
    }
}
