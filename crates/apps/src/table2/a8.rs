//! A8 — Heartbeat irregularity detection (Health Care).
//!
//! ECG feature extraction over the pulse sensor: beat detection plus
//! RR-interval analysis that flags premature beats. Figure 6's most
//! compute-hungry light-weight app (108.8 MIPS) — and one of the two
//! (with A3) that COM *slows down* in Figure 13.

use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_sensors::spec::SensorId;
use iotse_sim::time::SimDuration;

use crate::kernels::qrs::{QrsConfig, QrsDetector};
use crate::scratch::Scratch;

/// The heartbeat-irregularity workload.
#[derive(Debug, Clone)]
pub struct HeartbeatIrregularity {
    detector: QrsDetector,
    scratch: Scratch,
}

impl HeartbeatIrregularity {
    /// Creates the workload with an uncharged detector.
    #[must_use]
    pub fn new() -> Self {
        HeartbeatIrregularity {
            detector: QrsDetector::new(QrsConfig::default()),
            scratch: Scratch::new(),
        }
    }
}

impl Default for HeartbeatIrregularity {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for HeartbeatIrregularity {
    fn id(&self) -> AppId {
        AppId::A8
    }

    fn name(&self) -> &'static str {
        "Heartbeat irregularity detection"
    }

    fn window(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn sensors(&self) -> Vec<SensorUsage> {
        vec![SensorUsage::periodic(SensorId::S6, 1000)]
    }

    fn resources(&self) -> ResourceProfile {
        // Figure 6 maximum MIPS; compute times fitted to Figure 13's 0.8×
        // COM slowdown (61 ms CPU, 320 ms MCU).
        super::profile(22_528, 410, 108.8, 61.0, 320.0)
    }

    // NOT memoizable: the QRS detector tracks adaptive thresholds and
    // RR-interval history across windows, so replaying a cached summary
    // would skip the state update and change later windows.

    // iotse-lint: hot-path
    fn compute(&mut self, data: &WindowData) -> AppOutput {
        let samples = &mut self.scratch.scalars;
        samples.clear();
        samples.extend(
            data.sensor(SensorId::S6)
                .iter()
                .filter_map(|s| s.value.as_scalar()),
        );
        let summary = self.detector.process_window(samples);
        AppOutput::Heartbeat {
            beats: summary.beats,
            irregular: summary.irregular,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_core::executor::Scenario;
    use iotse_core::scheme::Scheme;
    use iotse_sensors::signal::ecg::EcgProfile;
    use iotse_sensors::world::WorldConfig;

    fn total_beats(scheme: Scheme, premature: f64, windows: u32, seed: u64) -> (u32, u32) {
        let world = WorldConfig {
            ecg: EcgProfile {
                premature_fraction: premature,
                ..EcgProfile::default()
            },
            ..WorldConfig::default()
        };
        let r = Scenario::new(scheme, vec![Box::new(HeartbeatIrregularity::new())])
            .windows(windows)
            .seed(seed)
            .world(world)
            .run();
        r.app(AppId::A8)
            .expect("ran")
            .windows
            .iter()
            .fold((0, 0), |(b, i), w| match w.output {
                AppOutput::Heartbeat { beats, irregular } => (b + beats, i + irregular),
                _ => panic!("wrong output type"),
            })
    }

    #[test]
    fn beat_rate_tracks_the_heart() {
        let (beats, irregular) = total_beats(Scheme::Baseline, 0.0, 20, 5);
        let expected = 20.0 * 72.0 / 60.0;
        assert!((f64::from(beats) - expected).abs() <= 2.0, "beats {beats}");
        assert_eq!(irregular, 0, "regular rhythm must not be flagged");
    }

    #[test]
    fn premature_beats_are_reported() {
        let (beats, irregular) = total_beats(Scheme::Batching, 0.25, 30, 6);
        assert!(irregular >= 3, "expected flags, got {irregular} of {beats}");
        assert!(irregular < beats / 2);
    }

    #[test]
    fn classified_light_despite_high_mips() {
        // 108.8 MIPS is under the MCU's 150-MIPS ceiling — A8 offloads.
        let r = Scenario::new(Scheme::Com, vec![Box::new(HeartbeatIrregularity::new())])
            .windows(2)
            .seed(7)
            .run();
        assert_eq!(
            r.app(AppId::A8).expect("ran").flow,
            iotse_core::AppFlow::Offloaded
        );
    }
}
