//! A10 — Fingerprint register (Security).
//!
//! Enrolls the household's fingers at startup, then identifies each scan
//! from S3 by minutiae geometry. The database shares the scenario's seed so
//! its reference templates describe the same simulated fingers the sensor
//! scans.

use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_sensors::signal::fingerprint::FingerTemplate;
use iotse_sensors::spec::SensorId;
use iotse_sim::rng::SeedTree;
use iotse_sim::time::SimDuration;

use crate::kernels::fingermatch::{FingerDb, MatchConfig};

/// The fingerprint-register workload.
#[derive(Debug, Clone)]
pub struct FingerprintRegister {
    db: FingerDb,
    /// The constructor arguments, kept as the compute-cache salt: two
    /// registers with different enrollments answer differently on the same
    /// scan, so they must not share cache entries.
    salt: u128,
}

impl FingerprintRegister {
    /// Creates the workload, enrolling `people` fingers derived from the
    /// scenario seed (pass the same seed given to the
    /// [`Scenario`](iotse_core::executor::Scenario)).
    #[must_use]
    pub fn new(seed: u64, people: u32) -> Self {
        let seeds = SeedTree::new(seed);
        let mut db = FingerDb::new(MatchConfig::default());
        for person in 0..people {
            db.enroll(person, FingerTemplate::of_person(&seeds, person));
        }
        FingerprintRegister {
            db,
            salt: (u128::from(seed) << 32) | u128::from(people),
        }
    }
}

impl Workload for FingerprintRegister {
    fn id(&self) -> AppId {
        AppId::A10
    }

    fn name(&self) -> &'static str {
        "Fingerprint Register"
    }

    fn window(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn sensors(&self) -> Vec<SensorUsage> {
        vec![SensorUsage::on_demand(SensorId::S3)]
    }

    fn resources(&self) -> ResourceProfile {
        // Integer-heavy matching ports well to the MCU (mild slowdown).
        super::profile(21_811, 307, 60.0, 33.0, 36.0)
    }

    fn memoizable(&self) -> bool {
        // The database is enrolled once at construction and `identify` is
        // `&self` — identification is a pure function of the scan bytes
        // and the salt-distinguished enrollment.
        true
    }

    fn memo_salt(&self) -> u128 {
        self.salt
    }

    fn compute(&mut self, data: &WindowData) -> AppOutput {
        let Some(wire) = data
            .sensor(SensorId::S3)
            .last()
            .and_then(|s| s.value.as_bytes())
        else {
            return AppOutput::FingerMatch { matched: None };
        };
        let matched = FingerTemplate::decode(wire)
            .ok()
            .and_then(|scan| self.db.identify(&scan.minutiae));
        AppOutput::FingerMatch { matched }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_core::executor::Scenario;
    use iotse_core::scheme::Scheme;

    #[test]
    fn spec_matches_table2() {
        let app = FingerprintRegister::new(1, 4);
        assert_eq!(iotse_core::workload::window_interrupts(&app), 1);
        assert_eq!(iotse_core::workload::window_bytes(&app), 512); // 0.5 KB
    }

    #[test]
    fn identifies_the_cycling_scanner_people() {
        // The world scans person 0, 1, 2, 3, 0, … one per window.
        let seed = 21;
        let r = Scenario::new(
            Scheme::Baseline,
            vec![Box::new(FingerprintRegister::new(seed, 4))],
        )
        .windows(4)
        .seed(seed)
        .run();
        let matches: Vec<Option<u32>> = r
            .app(AppId::A10)
            .expect("ran")
            .windows
            .iter()
            .map(|w| match w.output {
                AppOutput::FingerMatch { matched } => matched,
                _ => panic!("wrong output type"),
            })
            .collect();
        assert_eq!(matches, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn strangers_are_rejected() {
        // Enroll only 1 person; the world cycles through 4 — windows 2–4
        // present unenrolled fingers.
        let seed = 22;
        let r = Scenario::new(
            Scheme::Com,
            vec![Box::new(FingerprintRegister::new(seed, 1))],
        )
        .windows(4)
        .seed(seed)
        .run();
        let matches: Vec<Option<u32>> = r
            .app(AppId::A10)
            .expect("ran")
            .windows
            .iter()
            .map(|w| match w.output {
                AppOutput::FingerMatch { matched } => matched,
                _ => panic!("wrong output type"),
            })
            .collect();
        assert_eq!(matches[0], Some(0));
        assert!(matches[1..].iter().all(Option::is_none), "{matches:?}");
    }
}
