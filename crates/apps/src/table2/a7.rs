//! A7 — Earthquake detection (Smart City).
//!
//! Samples the same accelerometer as the step counter at 1 kHz and runs an
//! STA/LTA strong-motion trigger. In the paper this is the app whose
//! computation also "confirms whether an actual earthquake happened" — the
//! confirmation round-trip is folded into its larger compute time.

use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_sensors::spec::SensorId;
use iotse_sim::time::SimDuration;

use crate::kernels::stalta::{StaLta, StaLtaConfig};
use crate::scratch::Scratch;

/// The earthquake-detection workload.
#[derive(Debug, Clone)]
pub struct EarthquakeDetection {
    detector: StaLta,
    scratch: Scratch,
}

impl EarthquakeDetection {
    /// Creates the workload with an uncharged detector.
    #[must_use]
    pub fn new() -> Self {
        EarthquakeDetection {
            detector: StaLta::new(StaLtaConfig::default()),
            scratch: Scratch::new(),
        }
    }
}

impl Default for EarthquakeDetection {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for EarthquakeDetection {
    fn id(&self) -> AppId {
        AppId::A7
    }

    fn name(&self) -> &'static str {
        "Earthquake detection"
    }

    fn window(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn sensors(&self) -> Vec<SensorUsage> {
        vec![SensorUsage::periodic(SensorId::S4, 1000)]
    }

    fn resources(&self) -> ResourceProfile {
        // Figure 6: the smallest memory footprint of the suite (16.8 KB
        // incl. stack).
        super::profile(16_794, 410, 25.0, 6.0, 60.0)
    }

    // NOT memoizable: the STA/LTA detector carries charged averages across
    // windows, so replaying a cached verdict would skip the state update
    // and change later windows.

    // iotse-lint: hot-path
    fn compute(&mut self, data: &WindowData) -> AppOutput {
        let samples = &mut self.scratch.triples;
        samples.clear();
        samples.extend(
            data.sensor(SensorId::S4)
                .iter()
                .filter_map(|s| s.value.as_triple()),
        );
        AppOutput::Quake {
            detected: self.detector.process_window(samples),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_core::executor::Scenario;
    use iotse_core::scheme::Scheme;
    use iotse_sensors::signal::seismic::Quake;
    use iotse_sensors::world::WorldConfig;
    use iotse_sim::time::SimTime;

    #[test]
    fn quiet_world_stays_quiet() {
        let r = Scenario::new(Scheme::Baseline, vec![Box::new(EarthquakeDetection::new())])
            .windows(5)
            .seed(4)
            .run();
        for w in &r.app(AppId::A7).expect("ran").windows {
            assert_eq!(
                w.output,
                AppOutput::Quake { detected: false },
                "window {}",
                w.window
            );
        }
    }

    #[test]
    fn injected_quake_is_detected_in_its_windows() {
        // The default world also has a 2 Hz walker on S4, so the event must
        // rise above gait energy — a strong local quake.
        let quake = Quake {
            onset: SimTime::from_secs(3),
            duration: SimDuration::from_secs(2),
            peak: 9.0,
        };
        let world = WorldConfig {
            quakes: vec![quake],
            ..WorldConfig::default()
        };
        let r = Scenario::new(Scheme::Com, vec![Box::new(EarthquakeDetection::new())])
            .windows(6)
            .seed(4)
            .world(world)
            .run();
        let verdicts: Vec<bool> = r
            .app(AppId::A7)
            .expect("ran")
            .windows
            .iter()
            .map(|w| matches!(w.output, AppOutput::Quake { detected: true }))
            .collect();
        assert!(
            !verdicts[0] && !verdicts[1],
            "no event before onset: {verdicts:?}"
        );
        assert!(
            verdicts[3] && verdicts[4],
            "event windows must detect: {verdicts:?}"
        );
    }

    #[test]
    fn walking_alone_is_not_an_earthquake() {
        // The default world has a 2 Hz walker on the shared accelerometer.
        let r = Scenario::new(Scheme::Batching, vec![Box::new(EarthquakeDetection::new())])
            .windows(5)
            .seed(11)
            .run();
        assert!(r
            .app(AppId::A7)
            .expect("ran")
            .windows
            .iter()
            .all(|w| w.output == AppOutput::Quake { detected: false }));
    }
}
