//! A5 — Blynk (Smartphone Interactions).
//!
//! Pushes sensor values to a phone dashboard using Blynk's binary framing:
//! a 5-byte header (command, message id, body length) and a
//! NUL-separated `vw <pin> <value>` body per virtual-pin write — plus a
//! camera-widget update carrying a downsampled thumbnail of the S10 frame.

use std::fmt::Write as _;

use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_sensors::signal::image::LOW_RES;
use iotse_sensors::spec::SensorId;
use iotse_sim::time::SimDuration;

use crate::scratch::Scratch;

/// Blynk `hardware` command byte.
pub const CMD_HARDWARE: u8 = 20;

/// One encoded Blynk frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlynkFrame {
    /// Command byte.
    pub command: u8,
    /// Message id.
    pub message_id: u16,
    /// Frame body.
    pub body: Vec<u8>,
}

impl BlynkFrame {
    /// Encodes a virtual-pin write: body `vw\0<pin>\0<value>`.
    #[must_use]
    pub fn virtual_write(message_id: u16, pin: u8, value: &str) -> BlynkFrame {
        // lint: each frame owns its wire body, a handful per window
        let mut body = b"vw\0".to_vec();
        // lint: a one- or two-digit pin label, a handful per window
        body.extend_from_slice(pin.to_string().as_bytes());
        body.push(0);
        body.extend_from_slice(value.as_bytes());
        BlynkFrame {
            command: CMD_HARDWARE,
            message_id,
            body,
        }
    }

    /// Serializes header + body.
    ///
    /// # Panics
    ///
    /// Panics if the body exceeds a u16 length.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let len = u16::try_from(self.body.len()).expect("body fits u16");
        // lint: encode returns the owned wire buffer, sized up front
        let mut out = Vec::with_capacity(5 + self.body.len());
        out.push(self.command);
        out.extend_from_slice(&self.message_id.to_be_bytes());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses header + body.
    ///
    /// # Errors
    ///
    /// Returns a description of the framing problem.
    pub fn decode(bytes: &[u8]) -> Result<BlynkFrame, String> {
        if bytes.len() < 5 {
            return Err("frame shorter than header".into());
        }
        let len = usize::from(u16::from_be_bytes([bytes[3], bytes[4]]));
        if bytes.len() != 5 + len {
            // lint: the error message only allocates on a malformed frame
            return Err(format!(
                "length field {len} does not match body {}",
                bytes.len() - 5
            ));
        }
        Ok(BlynkFrame {
            command: bytes[0],
            message_id: u16::from_be_bytes([bytes[1], bytes[2]]),
            // lint: decode builds an owned frame; the body copy is the result
            body: bytes[5..].to_vec(),
        })
    }
}

/// The Blynk workload.
#[derive(Debug, Clone, Default)]
pub struct Blynk {
    next_message_id: u16,
    scratch: Scratch,
}

impl Blynk {
    /// Creates the workload.
    #[must_use]
    pub fn new() -> Self {
        Blynk::default()
    }

    fn next_id(&mut self) -> u16 {
        self.next_message_id = self.next_message_id.wrapping_add(1);
        self.next_message_id
    }
}

impl Workload for Blynk {
    fn id(&self) -> AppId {
        AppId::A5
    }

    fn name(&self) -> &'static str {
        "Blynk"
    }

    fn window(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn sensors(&self) -> Vec<SensorUsage> {
        vec![
            SensorUsage::periodic(SensorId::S1, 10),
            SensorUsage::periodic(SensorId::S2, 10),
            SensorUsage::periodic(SensorId::S4, 1000),
            SensorUsage::periodic(SensorId::S5, 200),
            SensorUsage::on_demand(SensorId::S10),
        ]
    }

    fn resources(&self) -> ResourceProfile {
        super::profile(34_816, 512, 55.0, 12.0, 130.0)
    }

    fn memoizable(&self) -> bool {
        // Message ids live in frame headers only; the document is built
        // from frame bodies and body-length-derived wire totals, both pure
        // functions of the window's samples.
        true
    }

    // iotse-lint: hot-path
    fn compute(&mut self, data: &WindowData) -> AppOutput {
        // lint: a handful of protocol frames per window, sized by widget count
        let mut frames: Vec<BlynkFrame> = Vec::new();
        // Scalar dashboards: latest value of each scalar sensor.
        for (pin, sensor) in [(1u8, SensorId::S1), (2, SensorId::S2), (4, SensorId::S5)] {
            if let Some(x) = data.sensor(sensor).last().and_then(|s| s.value.as_scalar()) {
                let id = self.next_id();
                // lint: one short value string per dashboard widget
                frames.push(BlynkFrame::virtual_write(id, pin, &format!("{x:.2}")));
            }
        }
        // Accelerometer widget: window-mean magnitude (streamed sum — no
        // intermediate magnitude buffer).
        let (mag_sum, mag_count) = data
            .sensor(SensorId::S4)
            .iter()
            .filter_map(|s| s.value.as_triple())
            .map(|[x, y, z]| (x * x + y * y + z * z).sqrt())
            .fold((0.0f64, 0usize), |(sum, n), m| (sum + m, n + 1));
        if mag_count > 0 {
            let mean = mag_sum / mag_count as f64;
            let id = self.next_id();
            // lint: one short value string per dashboard widget
            frames.push(BlynkFrame::virtual_write(id, 3, &format!("{mean:.3}")));
        }
        // Camera widget: 8×8-downsampled luma thumbnail of the S10 frame
        // (borrowed straight from the sample — no 24 KiB copy).
        if let Some(rgb) = data
            .sensor(SensorId::S10)
            .last()
            .and_then(|s| s.value.as_bytes())
        {
            let (w, h) = LOW_RES;
            let thumb = &mut self.scratch.text_a;
            thumb.clear();
            for by in 0..8 {
                for bx in 0..8 {
                    let x = bx * w / 8 + w / 16;
                    let y = by * h / 8 + h / 16;
                    let i = (y * w + x) * 3;
                    let luma = (u32::from(rgb[i]) * 299
                        + u32::from(rgb[i + 1]) * 587
                        + u32::from(rgb[i + 2]) * 114)
                        / 1000;
                    let _ = write!(thumb, "{luma:02x}");
                }
            }
            let id = self.next_id();
            frames.push(BlynkFrame::virtual_write(id, 9, &self.scratch.text_a));
        }
        // Serialize the session and verify our own framing end-to-end.
        let mut wire_total = 0usize;
        // lint: the line list becomes the returned AppOutput document
        let mut lines = Vec::new();
        for f in &frames {
            let wire = f.encode();
            wire_total += wire.len();
            let back = BlynkFrame::decode(&wire).expect("own framing decodes");
            lines.push(String::from_utf8_lossy(&back.body).replace('\0', " "));
        }
        // lint: one trailer line per window, part of the returned document
        lines.push(format!("frames={} wire_bytes={wire_total}", frames.len()));
        AppOutput::Document(lines.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_core::executor::Scenario;
    use iotse_core::scheme::Scheme;

    #[test]
    fn spec_matches_table2() {
        let app = Blynk::new();
        assert_eq!(iotse_core::workload::window_interrupts(&app), 1221);
        // 10×8 + 10×8 + 1000×12 + 200×4 + 24 KiB = 37 536 B ≈ 36.66 KB
        // (paper prints 36.91 KB).
        assert_eq!(iotse_core::workload::window_bytes(&app), 12_960 + 24 * 1024);
    }

    #[test]
    fn frame_codec_round_trips() {
        let f = BlynkFrame::virtual_write(7, 3, "9.806");
        let back = BlynkFrame::decode(&f.encode()).expect("decodes");
        assert_eq!(back, f);
        assert_eq!(back.body, b"vw\x003\x009.806");
    }

    #[test]
    fn frame_codec_rejects_bad_lengths() {
        assert!(BlynkFrame::decode(&[20, 0, 1]).is_err());
        let mut wire = BlynkFrame::virtual_write(1, 1, "x").encode();
        wire.pop();
        assert!(BlynkFrame::decode(&wire).is_err());
    }

    #[test]
    fn dashboard_session_contains_all_widgets() {
        let r = Scenario::new(Scheme::Baseline, vec![Box::new(Blynk::new())])
            .windows(2)
            .seed(14)
            .run();
        for w in &r.app(AppId::A5).expect("ran").windows {
            let AppOutput::Document(doc) = &w.output else {
                panic!("wrong type")
            };
            assert!(doc.contains("vw 1 "), "pressure widget missing: {doc}");
            assert!(doc.contains("vw 2 "), "temperature widget missing");
            assert!(doc.contains("vw 3 "), "acceleration widget missing");
            assert!(doc.contains("vw 4 "), "air-quality widget missing");
            assert!(doc.contains("vw 9 "), "camera thumbnail missing");
            assert!(doc.contains("frames=5"));
        }
    }

    #[test]
    fn acceleration_widget_is_near_one_g() {
        let r = Scenario::new(Scheme::Com, vec![Box::new(Blynk::new())])
            .windows(1)
            .seed(15)
            .run();
        let w = &r.app(AppId::A5).expect("ran").windows[0];
        let AppOutput::Document(doc) = &w.output else {
            panic!("wrong type")
        };
        let line = doc
            .lines()
            .find(|l| l.starts_with("vw 3 "))
            .expect("widget");
        let mag: f64 = line.trim_start_matches("vw 3 ").parse().expect("number");
        assert!((mag - 9.9).abs() < 1.0, "mean |a| = {mag}");
    }
}
