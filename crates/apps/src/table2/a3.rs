//! A3 — arduinoJSON (Protocol Library).
//!
//! Formats the barometer/temperature readings into a JSON document and
//! parses it back — string-to-double conversion and memory traffic, exactly
//! the work the paper says makes A3 one of the two apps COM slows down
//! (0.45 ms on the CPU vs 7 ms on the MCU).

use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_sensors::spec::SensorId;
use iotse_sim::time::SimDuration;

use crate::kernels::json::Json;

/// The arduinoJSON workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArduinoJson;

impl ArduinoJson {
    /// Creates the workload.
    #[must_use]
    pub fn new() -> Self {
        ArduinoJson
    }
}

impl Workload for ArduinoJson {
    fn id(&self) -> AppId {
        AppId::A3
    }

    fn name(&self) -> &'static str {
        "arduinoJSON"
    }

    fn window(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn sensors(&self) -> Vec<SensorUsage> {
        vec![
            SensorUsage::periodic(SensorId::S1, 10),
            SensorUsage::periodic(SensorId::S2, 10),
        ]
    }

    fn resources(&self) -> ResourceProfile {
        // §IV-F: "handled by the Main board within 0.45 ms, while requiring
        // 7 ms on the MCU board".
        super::profile(20_992, 410, 12.0, 0.45, 7.0)
    }

    fn memoizable(&self) -> bool {
        // Stateless: the document is built from the window's samples alone.
        true
    }

    fn compute(&mut self, data: &WindowData) -> AppOutput {
        // A3 deliberately keeps the allocating tree path: building,
        // printing and re-parsing the document tree *is* the arduinoJSON
        // workload being reproduced.
        let series = |sensor: SensorId| {
            Json::array(
                data.sensor(sensor)
                    .iter()
                    .filter_map(|s| s.value.as_scalar())
                    .map(Json::Number),
            )
        };
        let doc = Json::object([
            ("window", Json::Number(f64::from(data.window))),
            ("pressure_hpa", series(SensorId::S1)),
            ("temperature_c", series(SensorId::S2)),
        ]);
        let text = doc.to_text();
        // The library's job is both directions: parse what we printed and
        // verify structural identity (a real arduinoJSON regression check).
        let parsed = Json::parse(&text).expect("own output parses");
        assert_eq!(parsed, doc, "JSON round-trip must be lossless");
        AppOutput::Document(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_core::executor::Scenario;
    use iotse_core::scheme::Scheme;

    #[test]
    fn spec_matches_table2() {
        let app = ArduinoJson::new();
        assert_eq!(iotse_core::workload::window_interrupts(&app), 20);
        assert_eq!(iotse_core::workload::window_bytes(&app), 160); // 0.16 KB
    }

    #[test]
    fn documents_contain_both_series() {
        let r = Scenario::new(Scheme::Com, vec![Box::new(ArduinoJson::new())])
            .windows(3)
            .seed(10)
            .run();
        for w in &r.app(AppId::A3).expect("ran").windows {
            let AppOutput::Document(text) = &w.output else {
                panic!("wrong output type");
            };
            let v = Json::parse(text).expect("valid JSON");
            for key in ["pressure_hpa", "temperature_c"] {
                let arr = v.get(key).and_then(Json::as_array).expect(key);
                assert_eq!(arr.len(), 10, "{key} has the QoS sample count");
            }
            assert_eq!(
                v.get("window").and_then(Json::as_f64),
                Some(f64::from(w.window))
            );
        }
    }

    #[test]
    fn pressure_values_are_physical() {
        let r = Scenario::new(Scheme::Baseline, vec![Box::new(ArduinoJson::new())])
            .windows(1)
            .seed(11)
            .run();
        let w = &r.app(AppId::A3).expect("ran").windows[0];
        let AppOutput::Document(text) = &w.output else {
            panic!("wrong type")
        };
        let v = Json::parse(text).expect("valid");
        for x in v
            .get("pressure_hpa")
            .and_then(Json::as_array)
            .expect("array")
        {
            let hpa = x.as_f64().expect("number");
            assert!((950.0..=1060.0).contains(&hpa), "pressure {hpa}");
        }
    }
}
