//! A4 — AT&T M2X client (Cloud Communication).
//!
//! Packages five sensor streams into an M2X-style batched stream-values
//! request: a JSON body keyed by stream name with ISO-ish timestamps, plus
//! the HTTP envelope the device would PUT to the cloud.
//!
//! The body is streamed straight into a reusable [`Scratch`] lane with
//! [`json::write_escaped`]/[`json::write_number`], byte-identical to
//! serializing the equivalent [`Json`] tree (`Json::Object` is a `BTreeMap`,
//! so [`M2xClient::STREAMS`] is kept in sorted-name order) — but without
//! the ~18 k tree-node allocations per window the tree used to cost.

use std::fmt::Write as _;

use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_sensors::spec::SensorId;
use iotse_sim::time::SimDuration;

use crate::kernels::json::{self, Json};
use crate::scratch::Scratch;

/// The M2X cloud-client workload.
#[derive(Debug, Clone, Default)]
pub struct M2xClient {
    scratch: Scratch,
}

impl M2xClient {
    /// Creates the workload.
    #[must_use]
    pub fn new() -> Self {
        M2xClient::default()
    }

    /// The five `(stream name, sensor)` pairs of Table II, in sorted name
    /// order — the order a `Json::Object` body would serialize them in.
    const STREAMS: [(&'static str, SensorId); 5] = [
        ("acceleration", SensorId::S4),
        ("air_quality", SensorId::S5),
        ("light", SensorId::S7),
        ("pressure", SensorId::S1),
        ("temperature", SensorId::S2),
    ];
}

impl Workload for M2xClient {
    fn id(&self) -> AppId {
        AppId::A4
    }

    fn name(&self) -> &'static str {
        "M2X"
    }

    fn window(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn sensors(&self) -> Vec<SensorUsage> {
        vec![
            SensorUsage::periodic(SensorId::S1, 10),
            SensorUsage::periodic(SensorId::S2, 10),
            SensorUsage::periodic(SensorId::S4, 1000),
            SensorUsage::periodic(SensorId::S5, 200),
            SensorUsage::periodic(SensorId::S7, 1000),
        ]
    }

    fn resources(&self) -> ResourceProfile {
        super::profile(30_720, 512, 45.0, 10.0, 110.0)
    }

    fn memoizable(&self) -> bool {
        // The request number is derived from the window index (window w is
        // always request w+1), so the kernel is a pure function of its
        // `WindowData` — every scheme produces the same receipt.
        true
    }

    // iotse-lint: hot-path
    fn compute(&mut self, data: &WindowData) -> AppOutput {
        let request_no = u64::from(data.window) + 1;
        let Scratch {
            text_a: body,
            text_b: request,
            ..
        } = &mut self.scratch;

        // Stream the JSON body: {"name":{"values":[{"timestamp":t,"value":v},…]},…}.
        body.clear();
        body.push('{');
        let mut values = 0usize;
        for (i, (name, sensor)) in Self::STREAMS.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            json::write_escaped(body, name);
            body.push_str(":{\"values\":[");
            let samples = data.sensor(*sensor);
            values += samples.len();
            for (j, s) in samples.iter().enumerate() {
                if j > 0 {
                    body.push(',');
                }
                body.push_str("{\"timestamp\":");
                json::write_number(body, s.acquired_at.as_millis_f64());
                body.push_str(",\"value\":");
                let value = match (s.value.as_scalar(), s.value.as_triple()) {
                    (Some(x), _) => x,
                    // M2X streams are scalar: publish vector magnitude.
                    (_, Some([x, y, z])) => (x * x + y * y + z * z).sqrt(),
                    _ => 0.0,
                };
                json::write_number(body, value);
                body.push('}');
            }
            body.push_str("]}");
        }
        body.push('}');

        // The M2X client frames the body in its HTTP request and transmits
        // it over the network interface of whichever board ran the kernel
        // (the ESP8266 has its own WiFi). Only a delivery receipt flows to
        // the rest of the system, so the request is built, round-trip
        // verified, and summarized here.
        request.clear();
        let _ = write!(
            request,
            "PUT /v2/devices/iotse-hub/updates HTTP/1.1\r\nX-M2X-KEY: {:016x}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            0x1f2e_3d4c_5b6a_7988_u64 ^ request_no,
            body.len(),
        );
        request.push_str(body);

        let echoed = request
            .split("\r\n\r\n")
            .nth(1)
            .expect("request has a body");
        Json::validate(echoed).expect("own body parses");
        // lint: the status line is the returned AppOutput, one small format per window
        AppOutput::Document(format!(
            "202 Accepted request#{request_no} streams={} values={values} bytes={}",
            Self::STREAMS.len(),
            request.len(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_core::executor::Scenario;
    use iotse_core::scheme::Scheme;
    use iotse_sensors::reading::{SampleValue, SensorSample};
    use iotse_sim::time::SimTime;

    #[test]
    fn spec_matches_table2() {
        let app = M2xClient::new();
        assert_eq!(iotse_core::workload::window_interrupts(&app), 2220);
        // 10×8 + 10×8 + 1000×12 + 200×4 + 1000×8 = 20 960 B = 20.47 KB.
        assert_eq!(iotse_core::workload::window_bytes(&app), 20_960);
    }

    #[test]
    fn receipt_accounts_for_every_stream_value() {
        let r = Scenario::new(Scheme::Batching, vec![Box::new(M2xClient::new())])
            .windows(2)
            .seed(12)
            .run();
        for (i, w) in r.app(AppId::A4).expect("ran").windows.iter().enumerate() {
            let AppOutput::Document(receipt) = &w.output else {
                panic!("wrong type")
            };
            assert!(receipt.starts_with("202 Accepted"), "{receipt}");
            assert!(
                receipt.contains(&format!("request#{}", i + 1)),
                "request counter advances: {receipt}"
            );
            assert!(receipt.contains("streams=5"));
            // 10 + 10 + 1000 + 200 + 1000 values per window (Table II).
            assert!(receipt.contains("values=2220"), "{receipt}");
        }
    }

    #[test]
    fn wire_request_is_larger_than_the_raw_data_it_wraps() {
        // JSON inflates 20.47 KB of raw readings substantially — the
        // receipt reports the HTTP request size.
        let r = Scenario::new(Scheme::Baseline, vec![Box::new(M2xClient::new())])
            .windows(1)
            .seed(13)
            .run();
        let w = &r.app(AppId::A4).expect("ran").windows[0];
        let AppOutput::Document(receipt) = &w.output else {
            panic!("wrong type")
        };
        let bytes: usize = receipt
            .split("bytes=")
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("bytes field");
        assert!(bytes > 20_960, "request smaller than raw data: {bytes}");
    }

    #[test]
    fn streamed_body_matches_json_tree_serialization() {
        // The streaming writer must stay byte-identical to serializing the
        // equivalent Json tree (golden CSVs pin the receipt, this pins the
        // body itself).
        let mut data = WindowData {
            window: 4,
            start: SimTime::ZERO,
            end: SimTime::from_secs(1),
            samples: std::collections::BTreeMap::new(),
        };
        let sample = |sensor, ms: u64, value| SensorSample {
            sensor,
            seq: ms,
            acquired_at: SimTime::from_millis(ms),
            value,
        };
        data.samples.insert(
            SensorId::S1,
            vec![
                sample(SensorId::S1, 10, SampleValue::Scalar(1013.25)),
                sample(SensorId::S1, 110, SampleValue::Scalar(-2.5)),
            ],
        );
        data.samples.insert(
            SensorId::S4,
            vec![sample(
                SensorId::S4,
                3,
                SampleValue::Triple([3.0, 4.0, 12.0]),
            )],
        );
        // S2/S5/S7 absent: their streams must serialize as empty arrays.

        let mut app = M2xClient::new();
        let _ = app.compute(&data);
        let tree = Json::object(M2xClient::STREAMS.map(|(name, sensor)| {
            let values = Json::array(data.sensor(sensor).iter().map(|s| {
                let value = match (s.value.as_scalar(), s.value.as_triple()) {
                    (Some(x), _) => x,
                    (_, Some([x, y, z])) => (x * x + y * y + z * z).sqrt(),
                    _ => 0.0,
                };
                Json::object([
                    ("timestamp", Json::Number(s.acquired_at.as_millis_f64())),
                    ("value", Json::Number(value)),
                ])
            }));
            (name, Json::object([("values", values)]))
        }));
        assert_eq!(app.scratch.text_a, tree.to_text());
        assert!(app.scratch.text_b.ends_with(&app.scratch.text_a));
    }

    #[test]
    fn request_number_is_a_pure_function_of_the_window() {
        // A fresh client computing window 6 as its very first call must
        // report request#7 — the precondition for cross-scheme memoization
        // (no hidden per-instance counter).
        let data = WindowData {
            window: 6,
            start: SimTime::from_secs(6),
            end: SimTime::from_secs(7),
            samples: std::collections::BTreeMap::new(),
        };
        let out = M2xClient::new().compute(&data);
        let AppOutput::Document(receipt) = &out else {
            panic!("wrong type")
        };
        assert!(receipt.contains("request#7"), "{receipt}");
        assert!(M2xClient::new().memoizable());
        assert_eq!(M2xClient::new().compute(&data), out);
    }
}
