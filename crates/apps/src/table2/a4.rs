//! A4 — AT&T M2X client (Cloud Communication).
//!
//! Packages five sensor streams into an M2X-style batched stream-values
//! request: a JSON body keyed by stream name with ISO-ish timestamps, plus
//! the HTTP envelope the device would PUT to the cloud.

use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_sensors::spec::SensorId;
use iotse_sim::time::SimDuration;

use crate::kernels::json::Json;

/// The M2X cloud-client workload.
#[derive(Debug, Clone, Default)]
pub struct M2xClient {
    requests_sent: u64,
}

impl M2xClient {
    /// Creates the workload.
    #[must_use]
    pub fn new() -> Self {
        M2xClient::default()
    }

    /// The five `(stream name, sensor)` pairs of Table II.
    const STREAMS: [(&'static str, SensorId); 5] = [
        ("pressure", SensorId::S1),
        ("temperature", SensorId::S2),
        ("acceleration", SensorId::S4),
        ("air_quality", SensorId::S5),
        ("light", SensorId::S7),
    ];
}

impl Workload for M2xClient {
    fn id(&self) -> AppId {
        AppId::A4
    }

    fn name(&self) -> &'static str {
        "M2X"
    }

    fn window(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn sensors(&self) -> Vec<SensorUsage> {
        vec![
            SensorUsage::periodic(SensorId::S1, 10),
            SensorUsage::periodic(SensorId::S2, 10),
            SensorUsage::periodic(SensorId::S4, 1000),
            SensorUsage::periodic(SensorId::S5, 200),
            SensorUsage::periodic(SensorId::S7, 1000),
        ]
    }

    fn resources(&self) -> ResourceProfile {
        super::profile(30_720, 512, 45.0, 10.0, 110.0)
    }

    fn compute(&mut self, data: &WindowData) -> AppOutput {
        self.requests_sent += 1;
        let mut streams = Vec::new();
        for (name, sensor) in Self::STREAMS {
            let values = Json::array(data.sensor(sensor).iter().map(|s| {
                let value = match (s.value.as_scalar(), s.value.as_triple()) {
                    (Some(x), _) => x,
                    // M2X streams are scalar: publish vector magnitude.
                    (_, Some([x, y, z])) => (x * x + y * y + z * z).sqrt(),
                    _ => 0.0,
                };
                Json::object([
                    ("timestamp", Json::Number(s.acquired_at.as_millis_f64())),
                    ("value", Json::Number(value)),
                ])
            }));
            streams.push((name, Json::object([("values", values)])));
        }
        let body = Json::object(streams);
        let text = body.to_text();
        // The M2X client frames the body in its HTTP request and transmits
        // it over the network interface of whichever board ran the kernel
        // (the ESP8266 has its own WiFi). Only a delivery receipt flows to
        // the rest of the system, so the request is built, round-trip
        // verified, and summarized here.
        let request = format!(
            "PUT /v2/devices/iotse-hub/updates HTTP/1.1\r\nX-M2X-KEY: {:016x}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
            0x1f2e_3d4c_5b6a_7988_u64 ^ self.requests_sent,
            text.len(),
            text
        );
        let echoed = request
            .split("\r\n\r\n")
            .nth(1)
            .expect("request has a body");
        let parsed = Json::parse(echoed).expect("own body parses");
        let values: usize = Self::STREAMS
            .iter()
            .map(|(name, _)| {
                parsed
                    .get(name)
                    .and_then(|s| s.get("values"))
                    .and_then(Json::as_array)
                    .map_or(0, <[Json]>::len)
            })
            .sum();
        AppOutput::Document(format!(
            "202 Accepted request#{} streams={} values={values} bytes={}",
            self.requests_sent,
            Self::STREAMS.len(),
            request.len(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_core::executor::Scenario;
    use iotse_core::scheme::Scheme;

    #[test]
    fn spec_matches_table2() {
        let app = M2xClient::new();
        assert_eq!(iotse_core::workload::window_interrupts(&app), 2220);
        // 10×8 + 10×8 + 1000×12 + 200×4 + 1000×8 = 20 960 B = 20.47 KB.
        assert_eq!(iotse_core::workload::window_bytes(&app), 20_960);
    }

    #[test]
    fn receipt_accounts_for_every_stream_value() {
        let r = Scenario::new(Scheme::Batching, vec![Box::new(M2xClient::new())])
            .windows(2)
            .seed(12)
            .run();
        for (i, w) in r.app(AppId::A4).expect("ran").windows.iter().enumerate() {
            let AppOutput::Document(receipt) = &w.output else {
                panic!("wrong type")
            };
            assert!(receipt.starts_with("202 Accepted"), "{receipt}");
            assert!(
                receipt.contains(&format!("request#{}", i + 1)),
                "request counter advances: {receipt}"
            );
            assert!(receipt.contains("streams=5"));
            // 10 + 10 + 1000 + 200 + 1000 values per window (Table II).
            assert!(receipt.contains("values=2220"), "{receipt}");
        }
    }

    #[test]
    fn wire_request_is_larger_than_the_raw_data_it_wraps() {
        // JSON inflates 20.47 KB of raw readings substantially — the
        // receipt reports the HTTP request size.
        let r = Scenario::new(Scheme::Baseline, vec![Box::new(M2xClient::new())])
            .windows(1)
            .seed(13)
            .run();
        let w = &r.app(AppId::A4).expect("ran").windows[0];
        let AppOutput::Document(receipt) = &w.output else {
            panic!("wrong type")
        };
        let bytes: usize = receipt
            .split("bytes=")
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("bytes field");
        assert!(bytes > 20_960, "request smaller than raw data: {bytes}");
    }
}
