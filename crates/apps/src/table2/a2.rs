//! A2 — Step counter (Health Care).
//!
//! The paper's running example: 1000 accelerometer samples per second fed
//! to a step-detection algorithm (§II-B, Figures 5/7/8/9).

use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_sensors::spec::SensorId;
use iotse_sim::time::SimDuration;

use crate::kernels::stepcount::{count_steps, StepConfig};
use crate::scratch::Scratch;

/// The step-counter workload.
#[derive(Debug, Clone)]
pub struct StepCounter {
    config: StepConfig,
    scratch: Scratch,
}

impl StepCounter {
    /// Creates the workload with the default detector tuning.
    #[must_use]
    pub fn new() -> Self {
        StepCounter {
            config: StepConfig::default(),
            scratch: Scratch::new(),
        }
    }
}

impl Default for StepCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for StepCounter {
    fn id(&self) -> AppId {
        AppId::A2
    }

    fn name(&self) -> &'static str {
        "Step counter"
    }

    fn window(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn sensors(&self) -> Vec<SensorUsage> {
        vec![SensorUsage::periodic(SensorId::S4, 1000)]
    }

    fn resources(&self) -> ResourceProfile {
        // Figure 6: minimum MIPS of the suite; Figure 8: 2.21 ms on the
        // CPU, 21.7 ms on the MCU.
        super::profile(24_576, 307, 3.94, 2.21, 21.7)
    }

    fn memoizable(&self) -> bool {
        // Stateless detector: `count_steps` is a pure function of the
        // window's samples and the fixed tuning.
        true
    }

    // iotse-lint: hot-path
    fn compute(&mut self, data: &WindowData) -> AppOutput {
        let samples = &mut self.scratch.triples;
        samples.clear();
        samples.extend(
            data.sensor(SensorId::S4)
                .iter()
                .filter_map(|s| s.value.as_triple()),
        );
        AppOutput::Steps(count_steps(samples, &self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_core::executor::Scenario;
    use iotse_core::scheme::Scheme;

    #[test]
    fn spec_matches_table2() {
        let app = StepCounter::new();
        assert_eq!(iotse_core::workload::window_interrupts(&app), 1000);
        assert_eq!(iotse_core::workload::window_bytes(&app), 12_000);
    }

    #[test]
    fn counts_the_walkers_true_steps_in_scenario() {
        // Default world walks at 2 Hz ⇒ 2 steps per 1 s window.
        let r = Scenario::new(Scheme::Baseline, vec![Box::new(StepCounter::new())])
            .windows(4)
            .seed(3)
            .run();
        let windows = &r.app(AppId::A2).expect("ran").windows;
        assert_eq!(windows.len(), 4);
        for w in windows {
            assert_eq!(w.output, AppOutput::Steps(2), "window {}", w.window);
        }
    }

    #[test]
    fn output_is_scheme_invariant() {
        let outputs: Vec<Vec<AppOutput>> = Scheme::SINGLE_APP
            .iter()
            .map(|&scheme| {
                let r = Scenario::new(scheme, vec![Box::new(StepCounter::new())])
                    .windows(3)
                    .seed(9)
                    .run();
                r.app(AppId::A2)
                    .expect("ran")
                    .windows
                    .iter()
                    .map(|w| w.output.clone())
                    .collect()
            })
            .collect();
        assert_eq!(outputs[0], outputs[1], "batching changed the answer");
        assert_eq!(outputs[0], outputs[2], "offloading changed the answer");
    }
}
