//! A11 — Speech-to-text (Smart City): the heavy-weight workload.
//!
//! Converts each second of microphone audio to text with the
//! MFCC-flavoured keyword spotter (the PocketSphinx substitute). Its
//! declared footprint is the paper's measured envelope — 4683 MIPS and
//! 1.43 GB — which is precisely why admission control refuses to offload
//! it (§IV-E3).

use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_sensors::spec::SensorId;
use iotse_sim::time::SimDuration;

use crate::kernels::speech::{KeywordSpotter, Recognition};
use crate::scratch::Scratch;

/// The speech-to-text workload.
#[derive(Debug, Clone)]
pub struct SpeechToText {
    spotter: KeywordSpotter,
    scratch: Scratch,
    recognitions: Vec<Recognition>,
}

impl SpeechToText {
    /// Creates the workload (synthesizes its keyword templates).
    #[must_use]
    pub fn new() -> Self {
        SpeechToText {
            spotter: KeywordSpotter::new(1000.0),
            scratch: Scratch::new(),
            recognitions: Vec::new(), // lint: one-time constructor, reused every window
        }
    }
}

impl Default for SpeechToText {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for SpeechToText {
    fn id(&self) -> AppId {
        AppId::A11
    }

    fn name(&self) -> &'static str {
        "Speech-To-Text"
    }

    fn window(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn sensors(&self) -> Vec<SensorUsage> {
        // Table II: 5.86 KB per 1000 interrupts ⇒ 6 B audio frames
        // (16-bit PCM plus a 4-byte sequence header per sample frame).
        vec![SensorUsage {
            sensor: SensorId::S8,
            samples_per_window: 1000,
            bytes_per_sample_override: Some(6),
        }]
    }

    fn resources(&self) -> ResourceProfile {
        // §IV-E3: 4683 MIPS, 1.43 GB — cannot be offloaded. The MCU
        // compute time is the hypothetical value admission control never
        // lets run.
        // Figure 12a: the app-specific routine dominates A11's baseline
        // energy (78%) — the CPU decodes audio nearly the whole window, so
        // Batching has little idle time left to convert into sleep (its
        // small saving). 810 ms of compute per 1 s window reproduces that
        // on this strictly-serialized single-core CPU model.
        ResourceProfile {
            heap_bytes: 1_430_000_000,
            stack_bytes: 8_192,
            mips: 4_683.0,
            cpu_compute: SimDuration::from_millis(810),
            mcu_compute: SimDuration::from_millis(8_100),
        }
    }

    fn memoizable(&self) -> bool {
        // `recognize` is `&self` over the fixed templates; the scratch
        // buffers are workspace, not state.
        true
    }

    // iotse-lint: hot-path
    fn compute(&mut self, data: &WindowData) -> AppOutput {
        let Scratch {
            scalars: samples,
            feats,
            row_a,
            row_b,
            ..
        } = &mut self.scratch;
        samples.clear();
        samples.extend(
            data.sensor(SensorId::S8)
                .iter()
                .filter_map(|s| s.value.as_scalar()),
        );
        self.spotter
            .recognize_into(samples, feats, row_a, row_b, &mut self.recognitions);
        let words = self
            .recognitions
            .iter()
            // lint: the word list is the returned AppOutput, sized by hits, not window len
            .map(|r| self.spotter.word_str(r.word).to_string())
            // lint: the word list is the returned AppOutput
            .collect();
        AppOutput::Words(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_core::admission::{classify, WeightClass};
    use iotse_core::calibration::Calibration;
    use iotse_core::executor::Scenario;
    use iotse_core::scheme::Scheme;

    #[test]
    fn classified_heavy_for_both_memory_and_mips() {
        match classify(&SpeechToText::new(), &Calibration::paper()) {
            WeightClass::Heavy(blockers) => {
                assert_eq!(blockers.len(), 2, "{blockers:?}");
            }
            WeightClass::Light => panic!("speech-to-text must be heavy-weight"),
        }
    }

    #[test]
    fn never_offloaded_even_under_bcom() {
        for scheme in [Scheme::Com, Scheme::Bcom] {
            let r = Scenario::new(scheme, vec![Box::new(SpeechToText::new())])
                .windows(2)
                .seed(23)
                .run();
            let flow = r.app(AppId::A11).expect("ran").flow;
            assert_ne!(flow, iotse_core::AppFlow::Offloaded, "{scheme}");
        }
    }

    #[test]
    fn recognizes_a_reasonable_share_of_spoken_words() {
        // The default world schedules ~24 utterances over 120 s; run 30
        // windows and compare recognized words against scheduled ones.
        let r = Scenario::new(Scheme::Batching, vec![Box::new(SpeechToText::new())])
            .windows(30)
            .seed(24)
            .run();
        let recognized: usize = r
            .app(AppId::A11)
            .expect("ran")
            .windows
            .iter()
            .map(|w| match &w.output {
                AppOutput::Words(ws) => ws.len(),
                _ => panic!("wrong output type"),
            })
            .sum();
        // ~6 utterances fall in the first 30 s; edge-straddling words may
        // be missed but most must land.
        assert!(recognized >= 3, "only {recognized} words recognized");
        assert!(recognized <= 10, "implausibly many words: {recognized}");
    }
}
