//! A9 — JPEG decoder (Security).
//!
//! Takes the camera frame, entropy-encodes its luma plane, and runs the
//! full decode path (varint entropy decode, dequantize, **IDCT**) — the
//! computation the paper's A9 times — then reports the round-trip PSNR.
//!
//! The luma plane, symbol buffer, encoded stream and decoded pixels all
//! live in workload-owned [`Scratch`] lanes, so after the first window the
//! whole encode/decode round-trip runs without heap allocation.

use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_sensors::signal::image::LOW_RES;
use iotse_sensors::spec::SensorId;
use iotse_sim::time::SimDuration;

use crate::kernels::jpeg;
use crate::scratch::Scratch;

/// JPEG quality factor used by the pipeline.
pub const QUALITY: u8 = 85;

/// The JPEG-decoder workload.
#[derive(Debug, Clone)]
pub struct JpegDecoder {
    scratch: Scratch,
    encoded: jpeg::EncodedImage,
}

impl JpegDecoder {
    /// Creates the workload.
    #[must_use]
    pub fn new() -> Self {
        JpegDecoder {
            scratch: Scratch::new(),
            encoded: jpeg::EncodedImage {
                width: 0,
                height: 0,
                quality: QUALITY,
                stream: Vec::new(), // lint: one-time constructor, reused every window
            },
        }
    }
}

impl Default for JpegDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for JpegDecoder {
    fn id(&self) -> AppId {
        AppId::A9
    }

    fn name(&self) -> &'static str {
        "JPEG Decoder"
    }

    fn window(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn sensors(&self) -> Vec<SensorUsage> {
        vec![SensorUsage::on_demand(SensorId::S10)]
    }

    fn resources(&self) -> ResourceProfile {
        // Figure 6 maximum memory (36.3 KB incl. stack). The fixed-point
        // IDCT ports well to the MCU, giving A9 one of the milder
        // slowdowns (Figure 13 keeps it above 1×).
        super::profile(36_659, 512, 90.0, 50.0, 150.0)
    }

    fn memoizable(&self) -> bool {
        // PSNR is a pure function of the frame bytes; the scratch buffers
        // are workspace, not state.
        true
    }

    // iotse-lint: hot-path
    fn compute(&mut self, data: &WindowData) -> AppOutput {
        let Some(rgb) = data
            .sensor(SensorId::S10)
            .last()
            .and_then(|s| s.value.as_bytes())
        else {
            return AppOutput::ImageQuality { psnr_db: 0.0 };
        };
        let (w, h) = LOW_RES;
        let Scratch {
            bytes_a: luma,
            bytes_b: decoded,
            words: symbols,
            ..
        } = &mut self.scratch;
        // Luma plane from the raw RGB frame.
        luma.clear();
        luma.extend(rgb.chunks_exact(3).map(|p| {
            ((u32::from(p[0]) * 299 + u32::from(p[1]) * 587 + u32::from(p[2]) * 114) / 1000) as u8
        }));
        jpeg::encode_into(luma, w, h, QUALITY, symbols, &mut self.encoded);
        jpeg::decode_into(&self.encoded, symbols, decoded).expect("own encoding decodes");
        AppOutput::ImageQuality {
            psnr_db: jpeg::psnr(luma, decoded),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_core::executor::Scenario;
    use iotse_core::scheme::Scheme;

    #[test]
    fn spec_matches_table2() {
        let app = JpegDecoder::new();
        assert_eq!(iotse_core::workload::window_interrupts(&app), 1);
        assert_eq!(iotse_core::workload::window_bytes(&app), 24 * 1024);
    }

    #[test]
    fn every_frame_round_trips_above_30_db() {
        let r = Scenario::new(Scheme::Baseline, vec![Box::new(JpegDecoder::new())])
            .windows(3)
            .seed(18)
            .run();
        for w in &r.app(AppId::A9).expect("ran").windows {
            let AppOutput::ImageQuality { psnr_db } = w.output else {
                panic!("wrong output type");
            };
            assert!(psnr_db > 30.0, "window {} PSNR {psnr_db}", w.window);
            assert!(psnr_db.is_finite(), "noisy frames cannot be lossless");
        }
    }

    #[test]
    fn psnr_is_scheme_invariant() {
        let run = |scheme| {
            let r = Scenario::new(scheme, vec![Box::new(JpegDecoder::new())])
                .windows(2)
                .seed(19)
                .run();
            r.app(AppId::A9)
                .expect("ran")
                .windows
                .iter()
                .map(|w| w.output.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(Scheme::Baseline), run(Scheme::Com));
    }

    #[test]
    fn buffer_reuse_does_not_change_results() {
        // A long-lived decoder reusing its scratch across different frames
        // must agree with a fresh decoder seeing only the last frame.
        use iotse_sensors::reading::{SampleValue, SensorSample};
        use iotse_sim::time::SimTime;
        let (w, h) = LOW_RES;
        let frame = |window: u32, phase: u32| {
            let rgb: Vec<u8> = (0..w * h * 3)
                .map(|i| ((i as u32).wrapping_mul(31).wrapping_add(phase * 97) % 256) as u8)
                .collect();
            let mut data = WindowData {
                window,
                start: SimTime::from_secs(u64::from(window)),
                end: SimTime::from_secs(u64::from(window) + 1),
                samples: std::collections::BTreeMap::new(),
            };
            data.samples.insert(
                SensorId::S10,
                vec![SensorSample {
                    sensor: SensorId::S10,
                    seq: u64::from(window),
                    acquired_at: data.start,
                    value: SampleValue::Bytes(rgb),
                }],
            );
            data
        };
        let mut reused = JpegDecoder::new();
        let _ = reused.compute(&frame(0, 1)); // dirty the scratch lanes
        let second = reused.compute(&frame(1, 2));
        assert_eq!(second, JpegDecoder::new().compute(&frame(1, 2)));
    }
}
