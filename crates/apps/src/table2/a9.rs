//! A9 — JPEG decoder (Security).
//!
//! Takes the camera frame, entropy-encodes its luma plane, and runs the
//! full decode path (varint entropy decode, dequantize, **IDCT**) — the
//! computation the paper's A9 times — then reports the round-trip PSNR.

use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_sensors::signal::image::LOW_RES;
use iotse_sensors::spec::SensorId;
use iotse_sim::time::SimDuration;

use crate::kernels::jpeg;

/// JPEG quality factor used by the pipeline.
pub const QUALITY: u8 = 85;

/// The JPEG-decoder workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct JpegDecoder;

impl JpegDecoder {
    /// Creates the workload.
    #[must_use]
    pub fn new() -> Self {
        JpegDecoder
    }
}

impl Workload for JpegDecoder {
    fn id(&self) -> AppId {
        AppId::A9
    }

    fn name(&self) -> &'static str {
        "JPEG Decoder"
    }

    fn window(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn sensors(&self) -> Vec<SensorUsage> {
        vec![SensorUsage::on_demand(SensorId::S10)]
    }

    fn resources(&self) -> ResourceProfile {
        // Figure 6 maximum memory (36.3 KB incl. stack). The fixed-point
        // IDCT ports well to the MCU, giving A9 one of the milder
        // slowdowns (Figure 13 keeps it above 1×).
        super::profile(36_659, 512, 90.0, 50.0, 150.0)
    }

    fn compute(&mut self, data: &WindowData) -> AppOutput {
        let Some(rgb) = data
            .sensor(SensorId::S10)
            .last()
            .and_then(|s| s.value.as_bytes())
        else {
            return AppOutput::ImageQuality { psnr_db: 0.0 };
        };
        let (w, h) = LOW_RES;
        // Luma plane from the raw RGB frame.
        let luma: Vec<u8> = rgb
            .chunks_exact(3)
            .map(|p| {
                ((u32::from(p[0]) * 299 + u32::from(p[1]) * 587 + u32::from(p[2]) * 114) / 1000)
                    as u8
            })
            .collect();
        let encoded = jpeg::encode(&luma, w, h, QUALITY);
        let decoded = jpeg::decode(&encoded).expect("own encoding decodes");
        AppOutput::ImageQuality {
            psnr_db: jpeg::psnr(&luma, &decoded),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_core::executor::Scenario;
    use iotse_core::scheme::Scheme;

    #[test]
    fn spec_matches_table2() {
        let app = JpegDecoder::new();
        assert_eq!(iotse_core::workload::window_interrupts(&app), 1);
        assert_eq!(iotse_core::workload::window_bytes(&app), 24 * 1024);
    }

    #[test]
    fn every_frame_round_trips_above_30_db() {
        let r = Scenario::new(Scheme::Baseline, vec![Box::new(JpegDecoder::new())])
            .windows(3)
            .seed(18)
            .run();
        for w in &r.app(AppId::A9).expect("ran").windows {
            let AppOutput::ImageQuality { psnr_db } = w.output else {
                panic!("wrong output type");
            };
            assert!(psnr_db > 30.0, "window {} PSNR {psnr_db}", w.window);
            assert!(psnr_db.is_finite(), "noisy frames cannot be lossless");
        }
    }

    #[test]
    fn psnr_is_scheme_invariant() {
        let run = |scheme| {
            let r = Scenario::new(scheme, vec![Box::new(JpegDecoder::new())])
                .windows(2)
                .seed(19)
                .run();
            r.app(AppId::A9)
                .expect("ran")
                .windows
                .iter()
                .map(|w| w.output.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(Scheme::Baseline), run(Scheme::Com));
    }
}
