//! A1 — CoAP server (Building Automation).
//!
//! Serves the light and sound sensors over the Constrained Application
//! Protocol: each window it handles one GET per resource, encoding the
//! observation history as a JSON payload inside a real RFC 7252 message,
//! then decodes its own wire bytes back (the client side) to prove the
//! exchange.

use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_sensors::spec::SensorId;
use iotse_sim::time::SimDuration;

use crate::kernels::coap::CoapMessage;
use crate::kernels::json;
use crate::scratch::Scratch;

/// The CoAP-server workload.
#[derive(Debug, Clone, Default)]
pub struct CoapServer {
    next_message_id: u16,
    scratch: Scratch,
}

impl CoapServer {
    /// Creates the workload.
    #[must_use]
    pub fn new() -> Self {
        CoapServer::default()
    }
}

/// Handles one GET: encodes the request, parses it server-side, and answers
/// with summary statistics. The JSON payload is streamed into `payload_buf`
/// (byte-identical to serializing the equivalent `Json` object, whose
/// `BTreeMap` would order the keys count, max, mean, resource).
fn serve(mid: u16, payload_buf: &mut String, path: &str, values: &[f64]) -> CoapMessage {
    // Client request …
    let request = CoapMessage::get(mid, &mid.to_be_bytes(), path);
    let wire = request.encode();
    // … server parses it and answers with summary statistics.
    let parsed = CoapMessage::decode(&wire).expect("our own encoding is valid");
    let n = values.len() as f64;
    let mean = if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / n
    };
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    payload_buf.clear();
    payload_buf.push_str("{\"count\":");
    json::write_number(payload_buf, n);
    payload_buf.push_str(",\"max\":");
    json::write_number(payload_buf, if values.is_empty() { 0.0 } else { max });
    payload_buf.push_str(",\"mean\":");
    json::write_number(payload_buf, mean);
    payload_buf.push_str(",\"resource\":");
    json::write_escaped(payload_buf, &parsed.uri_path());
    payload_buf.push('}');
    CoapMessage::content(
        parsed.message_id,
        &parsed.token,
        // lint: the message owns its payload; one copy per served request
        payload_buf.as_bytes().to_vec(),
    )
}

impl Workload for CoapServer {
    fn id(&self) -> AppId {
        AppId::A1
    }

    fn name(&self) -> &'static str {
        "CoAP Server"
    }

    fn window(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn sensors(&self) -> Vec<SensorUsage> {
        vec![
            SensorUsage::periodic(SensorId::S7, 1000),
            SensorUsage::periodic(SensorId::S8, 1000),
        ]
    }

    fn resources(&self) -> ResourceProfile {
        super::profile(28_672, 512, 35.0, 8.0, 90.0)
    }

    fn memoizable(&self) -> bool {
        // The message-id counter shows up only in CoAP framing, never in
        // the JSON payloads the document is built from — the output is a
        // pure function of the window's samples.
        true
    }

    // iotse-lint: hot-path
    fn compute(&mut self, data: &WindowData) -> AppOutput {
        let CoapServer {
            next_message_id,
            scratch,
        } = self;
        let Scratch {
            text_a: payload_buf,
            scalars: values,
            ..
        } = scratch;
        // lint: the document is the returned AppOutput, so it cannot live in scratch
        let mut doc = String::new();
        for (i, (path, sensor)) in [
            ("sensors/light", SensorId::S7),
            ("sensors/sound", SensorId::S8),
        ]
        .into_iter()
        .enumerate()
        {
            values.clear();
            values.extend(
                data.sensor(sensor)
                    .iter()
                    .filter_map(|s| s.value.as_scalar()),
            );
            *next_message_id = next_message_id.wrapping_add(1);
            let response = serve(*next_message_id, payload_buf, path, values);
            // The client decodes the response; a decode failure would be a
            // protocol bug, so it is asserted, not swallowed.
            let round = CoapMessage::decode(&response.encode()).expect("response decodes");
            if i > 0 {
                doc.push('\n');
            }
            doc.push_str(&String::from_utf8_lossy(&round.payload));
        }
        AppOutput::Document(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::json::Json;
    use iotse_core::executor::Scenario;
    use iotse_core::scheme::Scheme;

    #[test]
    fn streamed_payload_matches_json_tree_serialization() {
        let values = [312.5, 12.0, -3.25];
        let mut streamed = String::new();
        let response = serve(7, &mut streamed, "sensors/light", &values);
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        let tree = Json::object([
            ("resource", Json::String("sensors/light".into())),
            ("count", Json::Number(n)),
            ("mean", Json::Number(mean)),
            ("max", Json::Number(max)),
        ]);
        assert_eq!(streamed, tree.to_text());
        assert_eq!(response.payload, tree.to_text().into_bytes());
        // Empty windows summarize to zeros, not NaN.
        let empty = serve(8, &mut streamed, "sensors/sound", &[]);
        let v = Json::parse(&String::from_utf8_lossy(&empty.payload)).expect("valid");
        assert_eq!(v.get("count").and_then(Json::as_f64), Some(0.0));
        assert_eq!(v.get("max").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn spec_matches_table2() {
        let app = CoapServer::new();
        assert_eq!(iotse_core::workload::window_interrupts(&app), 2000);
        assert_eq!(iotse_core::workload::window_bytes(&app), 12_000); // 11.72 KB
    }

    #[test]
    fn serves_parseable_json_over_coap() {
        let r = Scenario::new(Scheme::Baseline, vec![Box::new(CoapServer::new())])
            .windows(2)
            .seed(8)
            .run();
        for w in &r.app(AppId::A1).expect("ran").windows {
            let AppOutput::Document(doc) = &w.output else {
                panic!("wrong output type");
            };
            let lines: Vec<&str> = doc.lines().collect();
            assert_eq!(lines.len(), 2);
            for (line, resource) in lines.iter().zip(["sensors/light", "sensors/sound"]) {
                let v = Json::parse(line).expect("payload is valid JSON");
                assert_eq!(v.get("resource").and_then(Json::as_str), Some(resource));
                assert_eq!(v.get("count").and_then(Json::as_f64), Some(1000.0));
                assert!(v.get("mean").and_then(Json::as_f64).expect("mean") > 0.0);
            }
        }
    }
}
