//! A6 — Dropbox manager (Web Control).
//!
//! Records the sound/distance sensor streams to "files" and keeps them in
//! sync with the cloud using content-defined chunking and digest
//! deduplication — the real delta-sync mechanism, so repeated content costs
//! no upload.

use iotse_core::workload::{AppId, AppOutput, ResourceProfile, SensorUsage, WindowData, Workload};
use iotse_sensors::spec::SensorId;
use iotse_sim::time::SimDuration;

use crate::kernels::sync::{ChunkConfig, ChunkStore};
use crate::scratch::Scratch;

/// The Dropbox-manager workload.
#[derive(Debug, Clone, Default)]
pub struct DropboxManager {
    store: ChunkStore,
    windows_synced: u64,
    scratch: Scratch,
}

impl DropboxManager {
    /// Creates the workload with an empty cloud store.
    #[must_use]
    pub fn new() -> Self {
        DropboxManager {
            store: ChunkStore::new(ChunkConfig::default()),
            windows_synced: 0,
            scratch: Scratch::new(),
        }
    }
}

impl Workload for DropboxManager {
    fn id(&self) -> AppId {
        AppId::A6
    }

    fn name(&self) -> &'static str {
        "Dropbox Manager"
    }

    fn window(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn sensors(&self) -> Vec<SensorUsage> {
        vec![
            SensorUsage::periodic(SensorId::S8, 1000),
            SensorUsage::periodic(SensorId::S9, 1000),
        ]
    }

    fn resources(&self) -> ResourceProfile {
        super::profile(26_624, 410, 40.0, 9.0, 100.0)
    }

    // NOT memoizable: the chunk store deduplicates against everything it
    // has seen, and the sync counter names each report — both depend on
    // window history, not just this window's samples.

    // iotse-lint: hot-path
    fn compute(&mut self, data: &WindowData) -> AppOutput {
        // Serialize the window's recordings into the file bytes to sync.
        let file = &mut self.scratch.bytes_a;
        file.clear();
        for sensor in [SensorId::S8, SensorId::S9] {
            for s in data.sensor(sensor) {
                if let Some(x) = s.value.as_scalar() {
                    // Quantize like the on-disk format would.
                    file.extend_from_slice(&((x * 100.0) as i32).to_le_bytes());
                }
            }
        }
        let report = self.store.sync(file);
        self.windows_synced += 1;
        // lint: the sync report is the returned AppOutput, one small format per window
        AppOutput::Document(format!(
            "sync#{}: uploaded={} deduplicated={} bytes={} store={}",
            self.windows_synced,
            report.uploaded,
            report.deduplicated,
            report.uploaded_bytes,
            self.store.len(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_core::executor::Scenario;
    use iotse_core::scheme::Scheme;

    #[test]
    fn spec_matches_table2() {
        let app = DropboxManager::new();
        assert_eq!(iotse_core::workload::window_interrupts(&app), 2000);
        assert_eq!(iotse_core::workload::window_bytes(&app), 12_000);
    }

    #[test]
    fn every_window_uploads_fresh_sensor_content() {
        let r = Scenario::new(Scheme::Batching, vec![Box::new(DropboxManager::new())])
            .windows(3)
            .seed(16)
            .run();
        for w in &r.app(AppId::A6).expect("ran").windows {
            let AppOutput::Document(doc) = &w.output else {
                panic!("wrong type")
            };
            let uploaded: usize = doc
                .split("uploaded=")
                .nth(1)
                .and_then(|s| s.split(' ').next())
                .and_then(|s| s.parse().ok())
                .expect("field");
            assert!(uploaded > 0, "sensor noise should never fully dedup: {doc}");
        }
    }

    #[test]
    fn store_grows_across_windows() {
        let r = Scenario::new(Scheme::Baseline, vec![Box::new(DropboxManager::new())])
            .windows(3)
            .seed(17)
            .run();
        let sizes: Vec<usize> = r
            .app(AppId::A6)
            .expect("ran")
            .windows
            .iter()
            .map(|w| {
                let AppOutput::Document(doc) = &w.output else {
                    panic!("wrong type")
                };
                doc.split("store=")
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .expect("field")
            })
            .collect();
        assert!(
            sizes.windows(2).all(|p| p[0] < p[1]),
            "store must grow: {sizes:?}"
        );
    }
}
