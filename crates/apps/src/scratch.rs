//! Reusable per-workload scratch buffers.
//!
//! Every [`Workload`](iotse_core::workload::Workload) is `&mut self` for the
//! whole run, so a workload that owns a [`Scratch`] can reuse the same heap
//! blocks window after window: after the first few windows grow each buffer
//! to its steady-state size, `compute` performs (near) zero allocation.
//!
//! # Lifetime rules
//!
//! - Scratch contents are **meaningless between `compute` calls**. A kernel
//!   must `clear()` (or overwrite) every lane it reads *before* reading it;
//!   it must never assume a lane still holds last window's data. (Stateful
//!   kernels like A6's chunk store keep their cross-window state in their
//!   own fields, never in scratch.)
//! - Lanes are plain `pub` fields so a workload can split-borrow several at
//!   once (`&mut s.text_a` alongside `&mut s.text_b`) and hand disjoint
//!   lanes to kernel `*_into` entry points.
//! - `clear()` on a `String`/`Vec` keeps its capacity — that retention *is*
//!   the optimization. Nothing here shrinks; a fleet that wants memory back
//!   drops the workload.
//!
//! Scratch deliberately has no accessor methods: a method returning
//! `&mut Vec<f64>` would borrow the whole struct and forbid passing two
//! lanes to one call.

/// A grab-bag of growable buffers a workload reuses across windows.
///
/// Lane names are by type, not by purpose — the same `scalars` lane holds
/// ECG samples in A8 and audio samples in A11. See the module docs for the
/// lifetime rules.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// First text lane (e.g. a streamed JSON body).
    pub text_a: String,
    /// Second text lane (e.g. the HTTP envelope around `text_a`).
    pub text_b: String,
    /// First byte lane (e.g. a luma plane or a file image).
    pub bytes_a: Vec<u8>,
    /// Second byte lane (e.g. decoded pixels compared against `bytes_a`).
    pub bytes_b: Vec<u8>,
    /// Scalar samples lane.
    pub scalars: Vec<f64>,
    /// Flattened feature-vector lane (speech MFCC-ish rows).
    pub feats: Vec<f64>,
    /// First DTW row lane.
    pub row_a: Vec<f64>,
    /// Second DTW row lane.
    pub row_b: Vec<f64>,
    /// Triple samples lane (accelerometer).
    pub triples: Vec<[f64; 3]>,
    /// Signed-word lane (JPEG entropy symbols).
    pub words: Vec<i32>,
}

impl Scratch {
    /// Creates an empty scratch (no capacity reserved; lanes grow on first
    /// use and then stay grown).
    #[must_use]
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Clears every lane, keeping capacity. Kernels normally clear only the
    /// lanes they use; this is for tests and paranoia.
    pub fn clear(&mut self) {
        let Scratch {
            text_a,
            text_b,
            bytes_a,
            bytes_b,
            scalars,
            feats,
            row_a,
            row_b,
            triples,
            words,
        } = self;
        text_a.clear();
        text_b.clear();
        bytes_a.clear();
        bytes_b.clear();
        scalars.clear();
        feats.clear();
        row_a.clear();
        row_b.clear();
        triples.clear();
        words.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_keeps_capacity() {
        let mut s = Scratch::new();
        s.text_a.push_str("0123456789");
        s.scalars.extend((0..100).map(f64::from));
        s.words.extend(0..50);
        let (tc, sc, wc) = (
            s.text_a.capacity(),
            s.scalars.capacity(),
            s.words.capacity(),
        );
        s.clear();
        assert!(s.text_a.is_empty() && s.scalars.is_empty() && s.words.is_empty());
        assert_eq!(s.text_a.capacity(), tc);
        assert_eq!(s.scalars.capacity(), sc);
        assert_eq!(s.words.capacity(), wc);
    }

    #[test]
    fn lanes_split_borrow() {
        let mut s = Scratch::new();
        // The whole point of pub fields: two lanes borrowed mutably at once.
        let (a, b) = (&mut s.row_a, &mut s.row_b);
        a.push(1.0);
        b.push(2.0);
        assert_eq!((s.row_a[0], s.row_b[0]), (1.0, 2.0));
    }
}
