//! STA/LTA seismic triggering — the A7 kernel.
//!
//! The standard short-term-average / long-term-average detector used by
//! real seismic networks: strong motion makes the short-window energy jump
//! relative to the long-window background, and the ratio crossing a
//! threshold declares an event. The detector keeps its long-term state
//! across windows, matching how the paper's earthquake app runs forever.

/// Tuning of the STA/LTA trigger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaLtaConfig {
    /// Short-term window, samples.
    pub sta_samples: usize,
    /// Long-term window, samples.
    pub lta_samples: usize,
    /// Trigger when `STA/LTA` exceeds this.
    pub trigger_ratio: f64,
    /// De-trigger when the ratio falls below this.
    pub release_ratio: f64,
}

impl Default for StaLtaConfig {
    fn default() -> Self {
        // The STA spans a full walking stride (0.5 s at 1 kHz): periodic
        // gait impulses then average to the same level the LTA sees, so a
        // person walking with the device does not read as an earthquake,
        // while a sudden sustained event still lifts STA well above LTA.
        StaLtaConfig {
            sta_samples: 500,
            lta_samples: 5000,
            trigger_ratio: 3.0,
            release_ratio: 1.2,
        }
    }
}

/// The stateful detector.
///
/// # Examples
///
/// ```
/// use iotse_apps::kernels::stalta::{StaLta, StaLtaConfig};
///
/// let mut detector = StaLta::new(StaLtaConfig::default());
/// // A quiet second to charge the long-term average…
/// let quiet: Vec<[f64; 3]> = (0..1000).map(|i| [0.0, 0.0, 9.81 + 0.01 * (i as f64).sin()]).collect();
/// assert!(!detector.process_window(&quiet));
/// // …then strong shaking.
/// let shaking: Vec<[f64; 3]> = (0..1000)
///     .map(|i| [0.5, 0.5, 9.81 + 3.0 * (i as f64 * 0.08).sin()])
///     .collect();
/// assert!(detector.process_window(&shaking));
/// ```
#[derive(Debug, Clone)]
pub struct StaLta {
    config: StaLtaConfig,
    sta: f64,
    lta: f64,
    triggered: bool,
    primed: bool,
}

impl StaLta {
    /// Creates a detector with uncharged averages.
    ///
    /// # Panics
    ///
    /// Panics if window lengths are zero or STA is not shorter than LTA.
    #[must_use]
    pub fn new(config: StaLtaConfig) -> Self {
        assert!(
            config.sta_samples > 0 && config.lta_samples > 0,
            "windows must be non-empty"
        );
        assert!(
            config.sta_samples < config.lta_samples,
            "STA must be shorter than LTA"
        );
        assert!(
            config.release_ratio < config.trigger_ratio,
            "release must be below trigger"
        );
        StaLta {
            config,
            sta: 0.0,
            lta: 0.0,
            triggered: false,
            primed: false,
        }
    }

    /// Whether the detector is currently in the triggered state.
    #[must_use]
    pub fn is_triggered(&self) -> bool {
        self.triggered
    }

    /// The current STA/LTA ratio (0 until primed).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.lta <= f64::EPSILON {
            0.0
        } else {
            self.sta / self.lta
        }
    }

    /// Feeds one window of 3-axis samples; returns whether an event was
    /// active at any point within the window.
    pub fn process_window(&mut self, samples: &[[f64; 3]]) -> bool {
        let a_sta = 1.0 / self.config.sta_samples as f64;
        let a_lta = 1.0 / self.config.lta_samples as f64;
        let mut any = false;
        for s in samples {
            // Horizontal + vertical high-frequency energy (gravity removed
            // by differencing would lose low-frequency S-waves; use the
            // deviation from 1 g instead).
            let vertical = s[2] - crate::kernels::GRAVITY;
            let energy = s[0] * s[0] + s[1] * s[1] + vertical * vertical;
            self.sta += a_sta * (energy - self.sta);
            if !self.primed {
                // Charge the LTA quickly on the very first window so the
                // detector is usable from the second window on.
                self.lta += a_sta * (energy - self.lta);
            } else {
                // The LTA keeps adapting (slowly) even during an event;
                // that is what eventually releases the trigger once the
                // strong motion has been "background" for long enough.
                self.lta += a_lta * (energy - self.lta);
            }
            let ratio = self.ratio();
            if !self.triggered && self.primed && ratio > self.config.trigger_ratio {
                self.triggered = true;
            } else if self.triggered && ratio < self.config.release_ratio {
                self.triggered = false;
            }
            any |= self.triggered;
        }
        self.primed = true;
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_sensors::signal::seismic::{Quake, SeismicGenerator};
    use iotse_sim::rng::SeedTree;
    use iotse_sim::time::{SimDuration, SimTime};

    fn quiet(n: usize) -> Vec<[f64; 3]> {
        (0..n)
            .map(|i| [0.0, 0.0, 9.806 + 0.02 * (i as f64 * 0.37).sin()])
            .collect()
    }

    #[test]
    fn stays_quiet_on_background() {
        let mut d = StaLta::new(StaLtaConfig::default());
        for _ in 0..5 {
            assert!(!d.process_window(&quiet(1000)));
        }
    }

    #[test]
    fn triggers_on_injected_quake_and_releases_after() {
        let quake = Quake {
            onset: SimTime::from_secs(2),
            duration: SimDuration::from_secs(2),
            peak: 3.0,
        };
        let generator = SeismicGenerator::new(&SeedTree::new(5), 0.02, vec![quake]);
        let mut d = StaLta::new(StaLtaConfig::default());
        let mut verdicts = Vec::new();
        for w in 0..6u64 {
            let samples: Vec<[f64; 3]> = (0..1000)
                .map(|ms| generator.value_at(SimTime::from_millis(w * 1000 + ms)))
                .collect();
            verdicts.push(d.process_window(&samples));
        }
        assert_eq!(verdicts[..2], [false, false], "no event before onset");
        assert!(verdicts[2] && verdicts[3], "event windows must trigger");
        assert!(!verdicts[5], "must release after the event dies out");
    }

    #[test]
    fn steps_do_not_trigger_the_quake_detector() {
        use iotse_sensors::signal::gait::{GaitGenerator, GaitProfile};
        let mut g = GaitGenerator::new(&SeedTree::new(6), GaitProfile::default());
        let mut d = StaLta::new(StaLtaConfig::default());
        let mut any = false;
        for w in 0..5u64 {
            let samples: Vec<[f64; 3]> = (0..1000)
                .map(|ms| g.sample_triple(SimTime::from_millis(w * 1000 + ms)))
                .collect();
            any |= d.process_window(&samples);
        }
        assert!(!any, "walking must not look like an earthquake");
    }

    #[test]
    fn ratio_is_zero_before_any_input() {
        let d = StaLta::new(StaLtaConfig::default());
        assert_eq!(d.ratio(), 0.0);
        assert!(!d.is_triggered());
    }

    #[test]
    #[should_panic(expected = "STA must be shorter")]
    fn rejects_inverted_windows() {
        let _ = StaLta::new(StaLtaConfig {
            sta_samples: 100,
            lta_samples: 100,
            ..StaLtaConfig::default()
        });
    }
}
