//! A small JSON document library — the arduinoJSON stand-in behind A3, and
//! the payload formatter for the M2X/Blynk/Dropbox protocol apps.
//!
//! Implements the subset the workloads exercise: objects, arrays, strings
//! (with escapes), finite numbers, booleans and null; a serializer; and a
//! recursive-descent parser. Round-tripping is property-tested at the
//! workspace level.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (serialized in shortest-round-trip form).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array.
    #[must_use]
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// The value at `key`, if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    ///
    /// # Panics
    ///
    /// Panics if the document contains a non-finite number (JSON cannot
    /// represent NaN/∞; construction should have prevented it).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(x) => write_number(out, *x),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseJsonError`] describing the first syntax problem.
    pub fn parse(text: &str) -> Result<Json, ParseJsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Checks that `text` is syntactically valid JSON without building a
    /// document — the success path performs no heap allocation, so hot
    /// kernels (the M2X client verifies every body it frames) can validate
    /// inside their steady-state zero-alloc budget. Accepts exactly the
    /// inputs [`Json::parse`] accepts.
    ///
    /// # Errors
    ///
    /// Returns [`ParseJsonError`] describing the first syntax problem.
    pub fn validate(text: &str) -> Result<(), ParseJsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.skim_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(())
    }
}

/// Appends `x` in exactly the form [`Json::to_text`] uses for
/// `Json::Number` — integers in `i64` form, everything else via the
/// shortest-round-trip `Display`. Streaming serializers (the M2X client
/// writes its body straight into a scratch `String`) use this so their
/// output stays byte-identical to a `Json` tree's.
///
/// # Panics
///
/// Panics if `x` is not finite (JSON cannot represent NaN/∞).
pub fn write_number(out: &mut String, x: f64) {
    assert!(x.is_finite(), "JSON cannot represent {x}");
    if x == x.trunc() && x.abs() < 1e15 {
        let _ = fmt::Write::write_fmt(out, format_args!("{}", x as i64));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
    }
}

/// Appends `s` as a quoted JSON string with exactly the escapes
/// [`Json::to_text`] produces — the streaming counterpart of
/// `Json::String`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    /// Byte offset of the problem.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseJsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseJsonError {
        ParseJsonError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseJsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            // lint: the error message only allocates on invalid JSON
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            // lint: the error message only allocates on invalid JSON
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseJsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            // lint: the error message only allocates on invalid JSON
            Some(c) => Err(self.err(format!("unexpected '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        out.push(char::from_u32(code).ok_or_else(|| self.err("bad code point"))?);
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        if start + width > self.bytes.len() {
                            return Err(self.err("truncated UTF-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..start + width])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .ok()
            .filter(|x| x.is_finite())
            .map(Json::Number)
            // lint: the error message only allocates on invalid JSON
            .ok_or_else(|| self.err(format!("bad number '{text}'")))
    }

    /// The allocation-free mirror of [`Parser::value`]: skims past one JSON
    /// value, validating syntax without materialising it.
    fn skim_value(&mut self) -> Result<(), ParseJsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null).map(drop),
            Some(b't') => self.literal("true", Json::Bool(true)).map(drop),
            Some(b'f') => self.literal("false", Json::Bool(false)).map(drop),
            Some(b'"') => self.skim_string(),
            Some(b'[') => self.skim_array(),
            Some(b'{') => self.skim_object(),
            Some(b'-' | b'0'..=b'9') => self.number().map(drop),
            // lint: the error message only allocates on invalid JSON
            Some(c) => Err(self.err(format!("unexpected '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn skim_string(&mut self) -> Result<(), ParseJsonError> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'n' | b'r' | b't' | b'b' | b'f') => {}
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        if char::from_u32(code).is_none() {
                            return Err(self.err("bad code point"));
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) => {
                    if c >= 0x80 {
                        let start = self.pos - 1;
                        let width = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        if start + width > self.bytes.len() {
                            return Err(self.err("truncated UTF-8"));
                        }
                        if std::str::from_utf8(&self.bytes[start..start + width]).is_err() {
                            return Err(self.err("invalid UTF-8"));
                        }
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn skim_array(&mut self) -> Result<(), ParseJsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.skim_value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn skim_object(&mut self) -> Result<(), ParseJsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.skim_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.skim_value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseJsonError> {
        self.expect(b'[')?;
        // lint: parsing builds the owned tree; A3 keeps the allocating path deliberately
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseJsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_compactly_and_deterministically() {
        let doc = Json::object([
            ("sensor", Json::String("barometer".into())),
            ("hpa", Json::Number(1013.25)),
            ("ok", Json::Bool(true)),
            ("tags", Json::array([Json::Number(1.0), Json::Null])),
        ]);
        assert_eq!(
            doc.to_text(),
            r#"{"hpa":1013.25,"ok":true,"sensor":"barometer","tags":[1,null]}"#
        );
    }

    #[test]
    fn parses_what_it_prints() {
        let doc = Json::object([
            ("a", Json::Number(-2.5)),
            ("b", Json::String("x\"y\\z\n".into())),
            (
                "c",
                Json::array([Json::Bool(false), Json::object([("d", Json::Null)])]),
            ),
        ]);
        let text = doc.to_text();
        assert_eq!(Json::parse(&text).expect("round-trips"), doc);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Number(42.0).to_text(), "42");
        assert_eq!(Json::Number(42.5).to_text(), "42.5");
        assert_eq!(Json::Number(-0.0).to_text(), "0");
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e1 , \"s\" ] , \"b\" : { } } ").expect("parses");
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(25.0)
        );
        assert_eq!(v.get("b"), Some(&Json::Object(BTreeMap::new())));
    }

    #[test]
    fn parses_unicode_escapes_and_utf8() {
        let v = Json::parse(r#""é café ☕""#).expect("parses");
        assert_eq!(v.as_str(), Some("é café ☕"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "[1] x",
            "nan",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn error_reports_position() {
        let e = Json::parse("[1, ?]").expect_err("bad");
        assert_eq!(e.position, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    #[should_panic(expected = "JSON cannot represent")]
    fn non_finite_numbers_panic_on_serialize() {
        let _ = Json::Number(f64::NAN).to_text();
    }

    #[test]
    fn validate_agrees_with_parse() {
        let good = [
            r#"{"a":[1,2.5e1,"s"],"b":{}}"#,
            " [ true , null , \"x\\u00e9\" ] ",
            "-12.5",
            r#""é café ☕""#,
        ];
        for text in good {
            assert!(Json::parse(text).is_ok(), "parse rejected {text:?}");
            assert!(Json::validate(text).is_ok(), "validate rejected {text:?}");
        }
        for bad in ["", "{", "[1,", "tru", "\"abc", "{\"a\" 1}", "[1] x", "nan"] {
            let p = Json::parse(bad).expect_err("parse accepts");
            let v = Json::validate(bad).expect_err("validate accepts");
            assert_eq!(p.position, v.position, "positions differ on {bad:?}");
        }
    }

    #[test]
    fn streaming_writers_match_tree_serialization() {
        for x in [0.0, -0.0, 42.0, 42.5, -2.5, 1013.25, 1e20, 0.1] {
            let mut streamed = String::new();
            write_number(&mut streamed, x);
            assert_eq!(streamed, Json::Number(x).to_text(), "number {x}");
        }
        for s in ["plain", "x\"y\\z\n", "é café ☕", "tab\tand\u{1}ctl"] {
            let mut streamed = String::new();
            write_escaped(&mut streamed, s);
            assert_eq!(streamed, Json::String(s.to_string()).to_text(), "{s:?}");
        }
    }

    #[test]
    fn deep_round_trip_with_many_values() {
        let doc = Json::array((0..100).map(|i| {
            Json::object([
                ("i", Json::Number(f64::from(i))),
                ("x", Json::Number(f64::from(i) * 0.1)),
                ("s", Json::String(format!("v{i}"))),
            ])
        }));
        let text = doc.to_text();
        assert_eq!(Json::parse(&text).expect("round-trips"), doc);
    }
}
