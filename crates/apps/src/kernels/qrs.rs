//! Beat detection and rhythm analysis — the A8 kernel.
//!
//! A Pan–Tompkins-flavoured pipeline over the pulse sensor's ADC stream:
//! bandpass-ish differencing, squaring, moving-window integration, adaptive
//! thresholding with a refractory period — then RR-interval analysis that
//! flags premature beats (an RR interval much shorter than the running
//! median). State persists across windows because rhythm only exists
//! across beats.

/// Tuning of the beat detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QrsConfig {
    /// Sample rate, Hz.
    pub sample_rate_hz: f64,
    /// Integration window, samples.
    pub integration_samples: usize,
    /// Refractory period, seconds (a heart cannot beat twice in 250 ms).
    pub refractory_s: f64,
    /// An RR below this fraction of the running median is premature.
    pub premature_fraction: f64,
}

impl Default for QrsConfig {
    fn default() -> Self {
        QrsConfig {
            sample_rate_hz: 1000.0,
            integration_samples: 30,
            refractory_s: 0.25,
            premature_fraction: 0.80,
        }
    }
}

/// Summary of one analysis window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RhythmSummary {
    /// Beats detected in the window.
    pub beats: u32,
    /// Beats flagged premature.
    pub irregular: u32,
}

/// The stateful beat detector and rhythm analyser.
///
/// # Examples
///
/// ```
/// use iotse_apps::kernels::qrs::{QrsConfig, QrsDetector};
/// use iotse_sensors::signal::ecg::{EcgGenerator, EcgProfile};
/// use iotse_sim::rng::SeedTree;
/// use iotse_sim::time::SimTime;
///
/// let generator = EcgGenerator::new(&SeedTree::new(1), EcgProfile::default(), SimTime::from_secs(10));
/// let mut detector = QrsDetector::new(QrsConfig::default());
/// let mut beats = 0;
/// for w in 0..10u64 {
///     let samples: Vec<f64> = (0..1000)
///         .map(|ms| generator.value_at(SimTime::from_millis(w * 1000 + ms)))
///         .collect();
///     beats += detector.process_window(&samples).beats;
/// }
/// // 72 bpm over 10 s ⇒ about 12 beats detected (edge beats may slip a window).
/// assert!((10..=14).contains(&beats), "got {beats}");
/// ```
#[derive(Debug, Clone)]
pub struct QrsDetector {
    config: QrsConfig,
    integrator: Vec<f64>,
    int_pos: usize,
    int_sum: f64,
    prev: f64,
    threshold: f64,
    noise_level: f64,
    samples_seen: u64,
    last_beat_at: Option<u64>,
    rr_history: Vec<f64>,
}

impl QrsDetector {
    /// Creates a detector with adaptive thresholds uncharged.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate.
    #[must_use]
    pub fn new(config: QrsConfig) -> Self {
        assert!(config.sample_rate_hz > 0.0, "sample rate must be positive");
        assert!(
            config.integration_samples > 0,
            "integration window must be non-empty"
        );
        assert!(
            (0.0..1.0).contains(&config.premature_fraction),
            "premature fraction must be in (0, 1)"
        );
        QrsDetector {
            config,
            // lint: one-time constructor; the ring buffer is reused every window
            integrator: vec![0.0; config.integration_samples],
            int_pos: 0,
            int_sum: 0.0,
            prev: 0.0,
            threshold: 0.0,
            noise_level: 0.0,
            samples_seen: 0,
            last_beat_at: None,
            // lint: one-time constructor; RR history grows with detected beats only
            rr_history: Vec::new(),
        }
    }

    /// RR intervals (seconds) observed so far, oldest first.
    #[must_use]
    pub fn rr_intervals(&self) -> &[f64] {
        &self.rr_history
    }

    /// Feeds one window of raw ADC samples and returns its rhythm summary.
    pub fn process_window(&mut self, samples: &[f64]) -> RhythmSummary {
        let refractory = (self.config.refractory_s * self.config.sample_rate_hz) as u64;
        let mut out = RhythmSummary::default();
        for &x in samples {
            self.samples_seen += 1;
            // Derivative emphasises the QRS slope; square rectifies.
            let d = x - self.prev;
            self.prev = x;
            let energy = d * d;
            // Moving-window integration.
            self.int_sum += energy - self.integrator[self.int_pos];
            self.integrator[self.int_pos] = energy;
            self.int_pos = (self.int_pos + 1) % self.integrator.len();
            let feature = self.int_sum / self.integrator.len() as f64;

            // Adaptive threshold à la Pan–Tompkins.
            let spaced = self
                .last_beat_at
                .is_none_or(|l| self.samples_seen - l >= refractory);
            let warmup = self.samples_seen < self.integrator.len() as u64 * 2;
            if !warmup && spaced && feature > self.threshold.max(self.noise_level * 4.0 + 1e-9) {
                out.beats += 1;
                if let Some(last) = self.last_beat_at {
                    let rr = (self.samples_seen - last) as f64 / self.config.sample_rate_hz;
                    if self.is_premature(rr) {
                        out.irregular += 1;
                    }
                    self.rr_history.push(rr);
                }
                self.last_beat_at = Some(self.samples_seen);
                self.threshold = 0.7 * feature + 0.3 * self.threshold;
            } else {
                if spaced {
                    // Track the noise floor only outside the refractory
                    // period — the QRS tail must not inflate it.
                    self.noise_level += 0.002 * (feature - self.noise_level);
                }
                self.threshold *= 0.9995; // slow decay tracks amplitude drift
            }
        }
        out
    }

    fn is_premature(&self, rr: f64) -> bool {
        if self.rr_history.len() < 4 {
            return false;
        }
        let window = &self.rr_history[self.rr_history.len().saturating_sub(8)..];
        let mut recent = [0.0f64; 8];
        recent[..window.len()].copy_from_slice(window);
        let recent = &mut recent[..window.len()];
        recent.sort_by(|a, b| a.partial_cmp(b).expect("RR intervals are finite"));
        let median = recent[recent.len() / 2];
        rr < median * self.config.premature_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_sensors::signal::ecg::{EcgGenerator, EcgProfile};
    use iotse_sim::rng::SeedTree;
    use iotse_sim::time::SimTime;

    fn run(profile: EcgProfile, seconds: u64, seed: u64) -> (RhythmSummary, QrsDetector) {
        let generator =
            EcgGenerator::new(&SeedTree::new(seed), profile, SimTime::from_secs(seconds));
        let mut detector = QrsDetector::new(QrsConfig::default());
        let mut total = RhythmSummary::default();
        for w in 0..seconds {
            let samples: Vec<f64> = (0..1000)
                .map(|ms| generator.value_at(SimTime::from_millis(w * 1000 + ms)))
                .collect();
            let s = detector.process_window(&samples);
            total.beats += s.beats;
            total.irregular += s.irregular;
        }
        (total, detector)
    }

    #[test]
    fn beat_count_tracks_the_generator() {
        let (total, _) = run(EcgProfile::default(), 20, 3);
        let expected = 20.0 * 72.0 / 60.0; // 24 beats
        assert!(
            (total.beats as f64 - expected).abs() <= 2.0,
            "expected ≈{expected}, got {}",
            total.beats
        );
    }

    #[test]
    fn regular_rhythm_has_no_irregular_flags() {
        let (total, detector) = run(EcgProfile::default(), 20, 4);
        assert_eq!(total.irregular, 0);
        // RR intervals cluster tightly around 60/72 s.
        for &rr in detector.rr_intervals() {
            assert!((rr - 60.0 / 72.0).abs() < 0.08, "rr {rr}");
        }
    }

    #[test]
    fn premature_beats_are_flagged() {
        let profile = EcgProfile {
            premature_fraction: 0.2,
            ..EcgProfile::default()
        };
        let (total, _) = run(profile, 30, 5);
        assert!(
            total.irregular >= 3,
            "expected several flags, got {}",
            total.irregular
        );
        assert!(total.irregular < total.beats, "not every beat is premature");
    }

    #[test]
    fn silence_detects_nothing() {
        let mut detector = QrsDetector::new(QrsConfig::default());
        let flat: Vec<f64> = vec![512.0; 2000];
        let s = detector.process_window(&flat);
        assert_eq!(s, RhythmSummary::default());
    }

    #[test]
    fn state_persists_across_windows() {
        // One beat right at a window edge is still a single beat.
        let generator = EcgGenerator::new(
            &SeedTree::new(6),
            EcgProfile::default(),
            SimTime::from_secs(4),
        );
        let mut whole = QrsDetector::new(QrsConfig::default());
        let mut split = QrsDetector::new(QrsConfig::default());
        let all: Vec<f64> = (0..4000)
            .map(|ms| generator.value_at(SimTime::from_millis(ms)))
            .collect();
        let w = whole.process_window(&all);
        let mut s = RhythmSummary::default();
        for chunk in all.chunks(1000) {
            let part = split.process_window(chunk);
            s.beats += part.beats;
            s.irregular += part.irregular;
        }
        assert_eq!(w.beats, s.beats, "window splitting must not change beats");
    }

    #[test]
    #[should_panic(expected = "premature fraction")]
    fn rejects_bad_fraction() {
        let _ = QrsDetector::new(QrsConfig {
            premature_fraction: 1.5,
            ..QrsConfig::default()
        });
    }
}
