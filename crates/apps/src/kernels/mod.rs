//! The real application kernels behind the Table II workloads.
//!
//! Each module is a small, self-contained library doing the actual job the
//! paper's app did — the executor only models *where* and *how long* the
//! kernel runs; the kernel itself computes real answers over real (synthetic)
//! data, which is what the functional tests check against ground truth.

pub mod coap;
pub mod fingermatch;
pub mod jpeg;
pub mod json;
pub mod qrs;
pub mod speech;
pub mod stalta;
pub mod stepcount;
pub mod sync;

/// Standard gravity, m/s² (re-exported for kernels that de-bias
/// accelerometer data).
pub const GRAVITY: f64 = iotse_sensors::signal::gait::GRAVITY;
