//! A baseline-JPEG-style image codec — the A9 kernel.
//!
//! The paper's JPEG-decoder workload performs the inverse DCT over camera
//! frames. To make the decode real, this module implements the full
//! grayscale pipeline: 8×8 forward DCT, quality-scaled quantization with
//! the standard JPEG luminance table, zigzag scan, DC differencing, and a
//! run-length/varint entropy stage — plus the decoder that undoes all of it
//! (the part the paper times). PSNR against the original closes the loop.

use std::f64::consts::PI;
use std::sync::OnceLock;

/// The shared DCT basis: `COS[x][u] = cos((2x+1)·u·π/16)`, the exact
/// expression the DCT loops used to evaluate inline. Computing each entry
/// once keeps every basis value bit-identical to the former per-iteration
/// `cos()` calls while removing 128 transcendental evaluations per 8×8
/// block — the bulk of A9's kernel time.
static COS_BASIS: OnceLock<[[f64; 8]; 8]> = OnceLock::new();

fn cos_basis() -> &'static [[f64; 8]; 8] {
    COS_BASIS.get_or_init(|| {
        let mut t = [[0.0f64; 8]; 8];
        for (x, row) in t.iter_mut().enumerate() {
            for (u, c) in row.iter_mut().enumerate() {
                *c = ((2.0 * x as f64 + 1.0) * u as f64 * PI / 16.0).cos();
            }
        }
        t
    })
}

/// The ITU-T T.81 Annex K luminance quantization table.
pub const LUMA_QUANT: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// The zigzag scan order of an 8×8 block.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Scales the base table for a quality factor 1–100 (libjpeg convention).
///
/// # Panics
///
/// Panics if `quality` is outside 1–100.
#[must_use]
pub fn quant_table(quality: u8) -> [u16; 64] {
    assert!((1..=100).contains(&quality), "quality must be 1–100");
    let scale: i32 = if quality < 50 {
        5000 / i32::from(quality)
    } else {
        200 - 2 * i32::from(quality)
    };
    let mut out = [0u16; 64];
    for (o, &q) in out.iter_mut().zip(LUMA_QUANT.iter()) {
        *o = (((i32::from(q) * scale) + 50) / 100).clamp(1, 255) as u16;
    }
    out
}

/// Forward 8×8 DCT-II over one block of centred samples.
#[must_use]
pub fn fdct(block: &[f64; 64]) -> [f64; 64] {
    let cos = cos_basis();
    let mut out = [0.0; 64];
    for (v, row) in out.chunks_exact_mut(8).enumerate() {
        for (u, coeff) in row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for y in 0..8 {
                for x in 0..8 {
                    acc += block[y * 8 + x] * cos[x][u] * cos[y][v];
                }
            }
            let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            let cv = if v == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            *coeff = 0.25 * cu * cv * acc;
        }
    }
    out
}

/// Inverse 8×8 DCT (DCT-III) — the workload's headline computation.
#[must_use]
pub fn idct(coeffs: &[f64; 64]) -> [f64; 64] {
    let cos = cos_basis();
    let mut out = [0.0; 64];
    for (y, row) in out.chunks_exact_mut(8).enumerate() {
        for (x, px) in row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for v in 0..8 {
                for u in 0..8 {
                    let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
                    let cv = if v == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
                    acc += cu * cv * coeffs[v * 8 + u] * cos[x][u] * cos[y][v];
                }
            }
            *px = 0.25 * acc;
        }
    }
    out
}

/// An encoded grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedImage {
    /// Pixel width.
    pub width: usize,
    /// Pixel height.
    pub height: usize,
    /// Quality factor used.
    pub quality: u8,
    /// The entropy-coded stream.
    pub stream: Vec<u8>,
}

impl EncodedImage {
    /// Compressed size in bytes.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.stream.len()
    }
}

/// A decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeImageError(pub String);

impl std::fmt::Display for DecodeImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt image stream: {}", self.0)
    }
}

impl std::error::Error for DecodeImageError {}

/// Encodes a grayscale image (`width × height` bytes, row-major).
///
/// # Panics
///
/// Panics if `pixels` does not match the dimensions or `quality` is
/// outside 1–100.
#[must_use]
pub fn encode(pixels: &[u8], width: usize, height: usize, quality: u8) -> EncodedImage {
    // lint: allocating convenience wrapper; hot callers reuse buffers via encode_into
    let mut symbols: Vec<i32> = Vec::new();
    let mut out = EncodedImage {
        width,
        height,
        quality,
        // lint: allocating convenience wrapper; hot callers reuse buffers via encode_into
        stream: Vec::new(),
    };
    encode_into(pixels, width, height, quality, &mut symbols, &mut out);
    out
}

/// [`encode`] into caller-provided buffers: `symbols` is run-length
/// scratch, `out.stream` receives the entropy-coded bytes. Both are cleared
/// first, so steady-state re-encoding (the A9 workload encodes one frame
/// per window) performs no heap allocation once the buffers have grown to
/// size. The produced image is byte-identical to [`encode`]'s.
///
/// # Panics
///
/// Panics if `pixels` does not match the dimensions or `quality` is
/// outside 1–100.
pub fn encode_into(
    pixels: &[u8],
    width: usize,
    height: usize,
    quality: u8,
    symbols: &mut Vec<i32>,
    out: &mut EncodedImage,
) {
    assert_eq!(
        pixels.len(),
        width * height,
        "pixel buffer does not match dimensions"
    );
    let quant = quant_table(quality);
    let bw = width.div_ceil(8);
    let bh = height.div_ceil(8);
    symbols.clear();
    let mut prev_dc = 0i32;
    for by in 0..bh {
        for bx in 0..bw {
            // Gather (edge-clamped) and centre.
            let mut block = [0.0f64; 64];
            for y in 0..8 {
                for x in 0..8 {
                    let sx = (bx * 8 + x).min(width - 1);
                    let sy = (by * 8 + y).min(height - 1);
                    block[y * 8 + x] = f64::from(pixels[sy * width + sx]) - 128.0;
                }
            }
            let coeffs = fdct(&block);
            // Quantize in zigzag order, difference the DC.
            let mut zz = [0i32; 64];
            for (i, &pos) in ZIGZAG.iter().enumerate() {
                zz[i] = (coeffs[pos] / f64::from(quant[pos])).round() as i32;
            }
            let dc = zz[0];
            zz[0] = dc - prev_dc;
            prev_dc = dc;
            // Run-length: (zero-run, value) pairs, 0,0 = end of block.
            let mut i = 0;
            symbols.push(zz[0]);
            i += 1;
            while i < 64 {
                let mut run = 0i32;
                while i < 64 && zz[i] == 0 {
                    run += 1;
                    i += 1;
                }
                if i == 64 {
                    symbols.push(-1_000_000); // EOB sentinel
                } else {
                    symbols.push(run);
                    symbols.push(zz[i]);
                    i += 1;
                }
            }
            if *symbols.last().expect("non-empty") != -1_000_000 {
                symbols.push(-1_000_000);
            }
        }
    }
    // Varint (zigzag-integer) entropy stage.
    out.width = width;
    out.height = height;
    out.quality = quality;
    out.stream.clear();
    out.stream.reserve(symbols.len());
    for &s in symbols.iter() {
        let mut u = zigzag_i32(s);
        loop {
            let byte = (u & 0x7F) as u8;
            u >>= 7;
            if u == 0 {
                out.stream.push(byte);
                break;
            }
            out.stream.push(byte | 0x80);
        }
    }
}

/// Decodes back to grayscale pixels.
///
/// # Errors
///
/// Returns [`DecodeImageError`] on truncated or inconsistent streams.
pub fn decode(image: &EncodedImage) -> Result<Vec<u8>, DecodeImageError> {
    // lint: allocating convenience wrapper; hot callers reuse buffers via decode_into
    let mut symbols: Vec<i32> = Vec::new();
    // lint: allocating convenience wrapper; hot callers reuse buffers via decode_into
    let mut pixels: Vec<u8> = Vec::new();
    decode_into(image, &mut symbols, &mut pixels)?;
    Ok(pixels)
}

/// [`decode`] into caller-provided buffers: `symbols` is un-varint scratch,
/// `pixels` receives the reconstructed image (cleared and refilled). The
/// pixels are byte-identical to [`decode`]'s. On error the buffer contents
/// are unspecified.
///
/// # Errors
///
/// Returns [`DecodeImageError`] on truncated or inconsistent streams.
pub fn decode_into(
    image: &EncodedImage,
    symbols: &mut Vec<i32>,
    pixels: &mut Vec<u8>,
) -> Result<(), DecodeImageError> {
    // lint: the error message only allocates on a malformed stream
    let err = |m: &str| DecodeImageError(m.to_string());
    let quant = quant_table(image.quality);
    let bw = image.width.div_ceil(8);
    let bh = image.height.div_ceil(8);

    // Un-varint.
    symbols.clear();
    let mut acc: u64 = 0;
    let mut shift = 0;
    for &b in &image.stream {
        acc |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            let u = u32::try_from(acc).map_err(|_| err("varint overflow"))?;
            symbols.push(unzigzag_i32(u));
            acc = 0;
            shift = 0;
        } else {
            shift += 7;
            if shift > 28 {
                return Err(err("varint too long"));
            }
        }
    }
    if shift != 0 {
        return Err(err("truncated varint"));
    }

    pixels.clear();
    pixels.resize(image.width * image.height, 0);
    let mut pos = 0usize;
    let mut prev_dc = 0i32;
    for by in 0..bh {
        for bx in 0..bw {
            let mut zz = [0i32; 64];
            let dc_diff = *symbols.get(pos).ok_or_else(|| err("missing DC"))?;
            pos += 1;
            prev_dc += dc_diff;
            zz[0] = prev_dc;
            let mut i = 1;
            loop {
                let s = *symbols.get(pos).ok_or_else(|| err("truncated block"))?;
                pos += 1;
                if s == -1_000_000 {
                    break;
                }
                let run = usize::try_from(s).map_err(|_| err("negative run"))?;
                i += run;
                let value = *symbols.get(pos).ok_or_else(|| err("missing AC value"))?;
                pos += 1;
                if i >= 64 {
                    return Err(err("AC index out of block"));
                }
                zz[i] = value;
                i += 1;
            }
            // Dequantize out of zigzag order.
            let mut coeffs = [0.0f64; 64];
            for (k, &p) in ZIGZAG.iter().enumerate() {
                coeffs[p] = f64::from(zz[k]) * f64::from(quant[p]);
            }
            let block = idct(&coeffs);
            for y in 0..8 {
                for x in 0..8 {
                    let sx = bx * 8 + x;
                    let sy = by * 8 + y;
                    if sx < image.width && sy < image.height {
                        pixels[sy * image.width + sx] =
                            (block[y * 8 + x] + 128.0).round().clamp(0.0, 255.0) as u8;
                    }
                }
            }
        }
    }
    if pos != symbols.len() {
        return Err(err("trailing symbols"));
    }
    Ok(())
}

/// Peak signal-to-noise ratio between two equal-size grayscale images, dB.
///
/// Returns `f64::INFINITY` for identical images.
///
/// # Panics
///
/// Panics if lengths differ or the images are empty.
#[must_use]
pub fn psnr(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len(), "image sizes differ");
    assert!(!a.is_empty(), "empty images have no PSNR");
    let mse: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / a.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0 * 255.0 / mse).log10()
    }
}

fn zigzag_i32(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

fn unzigzag_i32(u: u32) -> i32 {
    ((u >> 1) as i32) ^ -((u & 1) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_sensors::signal::image::ImageGenerator;
    use iotse_sim::rng::SeedTree;

    #[test]
    fn idct_inverts_fdct() {
        let mut block = [0.0f64; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 37 % 255) as f64) - 128.0;
        }
        let back = idct(&fdct(&block));
        for (a, b) in block.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn flat_block_has_only_dc() {
        let block = [57.0f64; 64];
        let coeffs = fdct(&block);
        assert!((coeffs[0] - 57.0 * 8.0).abs() < 1e-9);
        for &c in &coeffs[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn quant_table_scales_with_quality() {
        let q90 = quant_table(90);
        let q10 = quant_table(10);
        assert!(q10.iter().zip(q90.iter()).all(|(a, b)| a >= b));
        assert_eq!(quant_table(50), LUMA_QUANT);
        assert!(quant_table(100).iter().all(|&q| q == 1));
    }

    #[test]
    fn round_trip_is_faithful_at_high_quality() {
        let mut camera = ImageGenerator::new(&SeedTree::new(2), 64, 48);
        let luma = camera.frame(0).luma();
        let encoded = encode(&luma, 64, 48, 90);
        let decoded = decode(&encoded).expect("decodes");
        let q = psnr(&luma, &decoded);
        assert!(q > 30.0, "PSNR {q} dB too low for quality 90");
    }

    #[test]
    fn lower_quality_compresses_smaller_and_worse() {
        let mut camera = ImageGenerator::new(&SeedTree::new(3), 64, 48);
        let luma = camera.frame(1).luma();
        let high = encode(&luma, 64, 48, 90);
        let low = encode(&luma, 64, 48, 10);
        assert!(
            low.byte_len() < high.byte_len(),
            "low quality must be smaller"
        );
        let p_high = psnr(&luma, &decode(&high).expect("decodes"));
        let p_low = psnr(&luma, &decode(&low).expect("decodes"));
        assert!(p_high > p_low, "{p_high} vs {p_low}");
        assert!(
            low.byte_len() < luma.len(),
            "compression must actually compress"
        );
    }

    #[test]
    fn non_multiple_of_eight_dimensions() {
        let w = 13;
        let h = 9;
        let pixels: Vec<u8> = (0..w * h).map(|i| (i * 7 % 256) as u8).collect();
        let decoded = decode(&encode(&pixels, w, h, 85)).expect("decodes");
        assert_eq!(decoded.len(), pixels.len());
        assert!(psnr(&pixels, &decoded) > 20.0);
    }

    #[test]
    fn extreme_qualities_round_trip() {
        let mut camera = ImageGenerator::new(&SeedTree::new(9), 32, 24);
        let luma = camera.frame(0).luma();
        for quality in [1, 100] {
            let decoded = decode(&encode(&luma, 32, 24, quality)).expect("decodes");
            assert_eq!(decoded.len(), luma.len(), "quality {quality}");
        }
        // Quality 100 quantizes everything by 1: near-lossless.
        let lossless = decode(&encode(&luma, 32, 24, 100)).expect("decodes");
        assert!(psnr(&luma, &lossless) > 50.0);
    }

    #[test]
    fn single_pixel_image() {
        let decoded = decode(&encode(&[137u8], 1, 1, 75)).expect("decodes");
        assert_eq!(decoded.len(), 1);
        assert!(i16::from(decoded[0]).abs_diff(137) < 12);
    }

    #[test]
    fn into_variants_match_allocating_api_across_reuse() {
        let mut camera = ImageGenerator::new(&SeedTree::new(5), 48, 32);
        let mut symbols = Vec::new();
        let mut encoded = EncodedImage {
            width: 0,
            height: 0,
            quality: 1,
            stream: Vec::new(),
        };
        let mut pixels = Vec::new();
        // Reuse the same buffers over several frames; every result must be
        // byte-identical to the allocating API's.
        for frame in 0..3u64 {
            let luma = camera.frame(frame).luma();
            encode_into(&luma, 48, 32, 85, &mut symbols, &mut encoded);
            assert_eq!(encoded, encode(&luma, 48, 32, 85), "frame {frame}");
            decode_into(&encoded, &mut symbols, &mut pixels).expect("decodes");
            assert_eq!(pixels, decode(&encoded).expect("decodes"), "frame {frame}");
        }
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let pixels = vec![128u8; 64];
        let mut enc = encode(&pixels, 8, 8, 80);
        enc.stream.truncate(1);
        assert!(decode(&enc).is_err());
        enc.stream = vec![0xFF; 10]; // unterminated varints
        assert!(decode(&enc).is_err());
        enc.stream = vec![0x04, 0x00]; // run beyond block then EOF
        assert!(decode(&enc).is_err());
    }

    #[test]
    fn psnr_properties() {
        let a = vec![10u8; 100];
        assert_eq!(psnr(&a, &a), f64::INFINITY);
        let mut b = a.clone();
        b[0] = 12;
        let one_off = psnr(&a, &b);
        b[1] = 20;
        assert!(psnr(&a, &b) < one_off);
    }

    #[test]
    fn zigzag_scan_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn varint_zigzag_round_trips() {
        for v in [-1_000_000, -256, -1, 0, 1, 127, 128, 65_535, 1_000_000] {
            assert_eq!(unzigzag_i32(zigzag_i32(v)), v);
        }
    }
}
