//! A CoAP (RFC 7252) message codec — the protocol kernel behind A1.
//!
//! Implements the subset a sensor server exercises: the 4-byte fixed
//! header, tokens, delta-encoded options (with extended deltas/lengths),
//! the payload marker, and round-trip encode/decode.

use std::fmt;

/// CoAP message type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoapType {
    /// Requires an acknowledgement.
    Confirmable,
    /// Fire-and-forget.
    NonConfirmable,
    /// Acknowledges a confirmable message.
    Acknowledgement,
    /// Rejects a message.
    Reset,
}

impl CoapType {
    fn to_bits(self) -> u8 {
        match self {
            CoapType::Confirmable => 0,
            CoapType::NonConfirmable => 1,
            CoapType::Acknowledgement => 2,
            CoapType::Reset => 3,
        }
    }

    fn from_bits(b: u8) -> CoapType {
        match b & 0b11 {
            0 => CoapType::Confirmable,
            1 => CoapType::NonConfirmable,
            2 => CoapType::Acknowledgement,
            _ => CoapType::Reset,
        }
    }
}

/// A CoAP code as `class.detail` (e.g. `0.01` GET, `2.05` Content).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoapCode {
    /// The 3-bit class.
    pub class: u8,
    /// The 5-bit detail.
    pub detail: u8,
}

impl CoapCode {
    /// `0.01` GET.
    pub const GET: CoapCode = CoapCode {
        class: 0,
        detail: 1,
    };
    /// `0.02` POST.
    pub const POST: CoapCode = CoapCode {
        class: 0,
        detail: 2,
    };
    /// `2.05` Content.
    pub const CONTENT: CoapCode = CoapCode {
        class: 2,
        detail: 5,
    };
    /// `4.04` Not Found.
    pub const NOT_FOUND: CoapCode = CoapCode {
        class: 4,
        detail: 4,
    };

    fn to_byte(self) -> u8 {
        (self.class << 5) | (self.detail & 0x1F)
    }

    fn from_byte(b: u8) -> CoapCode {
        CoapCode {
            class: b >> 5,
            detail: b & 0x1F,
        }
    }
}

impl fmt::Display for CoapCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:02}", self.class, self.detail)
    }
}

/// One CoAP option (number + raw value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoapOption {
    /// The option number (11 = Uri-Path, 12 = Content-Format, …).
    pub number: u16,
    /// The raw option value.
    pub value: Vec<u8>,
}

/// Uri-Path option number.
pub const OPT_URI_PATH: u16 = 11;
/// Content-Format option number.
pub const OPT_CONTENT_FORMAT: u16 = 12;
/// Observe option number.
pub const OPT_OBSERVE: u16 = 6;

/// A CoAP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoapMessage {
    /// Message semantics.
    pub mtype: CoapType,
    /// Request/response code.
    pub code: CoapCode,
    /// Message id for deduplication/acknowledgement.
    pub message_id: u16,
    /// 0–8 byte token correlating requests and responses.
    pub token: Vec<u8>,
    /// Options sorted by number (encoding requires it; decode preserves it).
    pub options: Vec<CoapOption>,
    /// Payload (empty = none).
    pub payload: Vec<u8>,
}

/// A malformed-message error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeCoapError(pub String);

impl fmt::Display for DecodeCoapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed CoAP message: {}", self.0)
    }
}

impl std::error::Error for DecodeCoapError {}

impl CoapMessage {
    /// Builds a GET request for a `/`-separated path.
    #[must_use]
    pub fn get(message_id: u16, token: &[u8], path: &str) -> CoapMessage {
        let options = path
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|seg| CoapOption {
                number: OPT_URI_PATH,
                // lint: the request owns its path segments, a few bytes each
                value: seg.as_bytes().to_vec(),
            })
            // lint: the request owns its option list
            .collect();
        CoapMessage {
            mtype: CoapType::Confirmable,
            code: CoapCode::GET,
            message_id,
            // lint: the request owns its token, at most 8 bytes
            token: token.to_vec(),
            options,
            // lint: GET carries no payload; empty Vec does not allocate
            payload: Vec::new(),
        }
    }

    /// Builds a `2.05 Content` response carrying `payload`.
    #[must_use]
    pub fn content(message_id: u16, token: &[u8], payload: Vec<u8>) -> CoapMessage {
        CoapMessage {
            mtype: CoapType::Acknowledgement,
            code: CoapCode::CONTENT,
            message_id,
            // lint: the request owns its token, at most 8 bytes
            token: token.to_vec(),
            // lint: building the option list is the CoAP framing workload itself
            options: vec![CoapOption {
                number: OPT_CONTENT_FORMAT,
                // lint: one-byte content-format value (application/json)
                value: vec![50],
            }],
            payload,
        }
    }

    /// The Uri-Path reassembled from options.
    #[must_use]
    pub fn uri_path(&self) -> String {
        self.options
            .iter()
            .filter(|o| o.number == OPT_URI_PATH)
            .map(|o| String::from_utf8_lossy(&o.value).into_owned())
            .collect::<Vec<_>>()
            .join("/")
    }

    /// Encodes to wire format.
    ///
    /// # Panics
    ///
    /// Panics if the token exceeds 8 bytes or options are not sorted by
    /// number (RFC 7252 requires delta encoding over sorted options).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.token.len() <= 8, "token too long");
        assert!(
            self.options.windows(2).all(|w| w[0].number <= w[1].number),
            "options must be sorted by number"
        );
        // lint: encode returns the owned wire buffer, sized up front
        let mut out = Vec::with_capacity(8 + self.payload.len());
        out.push(0x40 | (self.mtype.to_bits() << 4) | self.token.len() as u8);
        out.push(self.code.to_byte());
        out.extend_from_slice(&self.message_id.to_be_bytes());
        out.extend_from_slice(&self.token);
        let mut last = 0u16;
        for opt in &self.options {
            let delta = opt.number - last;
            last = opt.number;
            let (dn, dext) = nibble(delta);
            let (ln, lext) = nibble(opt.value.len() as u16);
            out.push((dn << 4) | ln);
            out.extend_from_slice(&dext);
            out.extend_from_slice(&lext);
            out.extend_from_slice(&opt.value);
        }
        if !self.payload.is_empty() {
            out.push(0xFF);
            out.extend_from_slice(&self.payload);
        }
        out
    }

    /// Decodes from wire format.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeCoapError`] on truncated or malformed input.
    pub fn decode(bytes: &[u8]) -> Result<CoapMessage, DecodeCoapError> {
        // lint: the error message only allocates on a malformed datagram
        let err = |m: &str| DecodeCoapError(m.to_string());
        if bytes.len() < 4 {
            return Err(err("shorter than fixed header"));
        }
        if bytes[0] >> 6 != 1 {
            return Err(err("unsupported version"));
        }
        let mtype = CoapType::from_bits(bytes[0] >> 4);
        let tkl = (bytes[0] & 0x0F) as usize;
        if tkl > 8 {
            return Err(err("token length above 8"));
        }
        let code = CoapCode::from_byte(bytes[1]);
        let message_id = u16::from_be_bytes([bytes[2], bytes[3]]);
        let mut pos = 4;
        if pos + tkl > bytes.len() {
            return Err(err("truncated token"));
        }
        // lint: decode builds an owned message; the token is at most 8 bytes
        let token = bytes[pos..pos + tkl].to_vec();
        pos += tkl;

        // lint: decode builds owned options/payload; parsing the wire *is* the workload
        let mut options = Vec::new();
        let mut number = 0u16;
        // lint: decode builds owned options/payload; parsing the wire *is* the workload
        let mut payload = Vec::new();
        while pos < bytes.len() {
            if bytes[pos] == 0xFF {
                pos += 1;
                if pos == bytes.len() {
                    return Err(err("payload marker with empty payload"));
                }
                // lint: decode builds an owned message; the payload copy is the result
                payload = bytes[pos..].to_vec();
                break;
            }
            let dn = bytes[pos] >> 4;
            let ln = bytes[pos] & 0x0F;
            pos += 1;
            let delta = read_ext(bytes, &mut pos, dn).ok_or_else(|| err("bad option delta"))?;
            let len =
                read_ext(bytes, &mut pos, ln).ok_or_else(|| err("bad option length"))? as usize;
            number = number
                .checked_add(delta)
                .ok_or_else(|| err("option number overflow"))?;
            if pos + len > bytes.len() {
                return Err(err("truncated option value"));
            }
            options.push(CoapOption {
                number,
                // lint: decode builds an owned message; options are a few bytes each
                value: bytes[pos..pos + len].to_vec(),
            });
            pos += len;
        }
        Ok(CoapMessage {
            mtype,
            code,
            message_id,
            token,
            options,
            payload,
        })
    }
}

/// Splits a delta/length into its nibble and extended bytes per RFC 7252.
fn nibble(v: u16) -> (u8, Vec<u8>) {
    match v {
        // lint: nibble extensions are 0-2 bytes; the empty arm never allocates
        0..=12 => (v as u8, Vec::new()),
        // lint: nibble extensions are 0-2 bytes; the empty arm never allocates
        13..=268 => (13, vec![(v - 13) as u8]),
        // lint: nibble extensions are 0-2 bytes
        _ => (14, (v - 269).to_be_bytes().to_vec()),
    }
}

fn read_ext(bytes: &[u8], pos: &mut usize, n: u8) -> Option<u16> {
    match n {
        0..=12 => Some(u16::from(n)),
        13 => {
            let b = *bytes.get(*pos)?;
            *pos += 1;
            Some(u16::from(b) + 13)
        }
        14 => {
            let hi = *bytes.get(*pos)?;
            let lo = *bytes.get(*pos + 1)?;
            *pos += 2;
            Some(u16::from_be_bytes([hi, lo]).checked_add(269)?)
        }
        _ => None, // 15 is reserved (payload marker nibble)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_request_round_trips() {
        let req = CoapMessage::get(0x1234, &[0xAB, 0xCD], "sensors/light");
        let wire = req.encode();
        let back = CoapMessage::decode(&wire).expect("decodes");
        assert_eq!(back, req);
        assert_eq!(back.uri_path(), "sensors/light");
        assert_eq!(back.code, CoapCode::GET);
        assert_eq!(back.message_id, 0x1234);
    }

    #[test]
    fn content_response_round_trips_with_payload() {
        let resp = CoapMessage::content(7, &[1], br#"{"lux":312.5}"#.to_vec());
        let wire = resp.encode();
        let back = CoapMessage::decode(&wire).expect("decodes");
        assert_eq!(back, resp);
        assert_eq!(back.payload, br#"{"lux":312.5}"#);
        assert_eq!(back.options[0].number, OPT_CONTENT_FORMAT);
    }

    #[test]
    fn header_bytes_match_rfc_layout() {
        let req = CoapMessage::get(0x0102, &[], "x");
        let wire = req.encode();
        // Version 1, type CON (0), TKL 0 ⇒ 0x40.
        assert_eq!(wire[0], 0x40);
        // GET ⇒ 0.01 ⇒ 0x01.
        assert_eq!(wire[1], 0x01);
        assert_eq!(&wire[2..4], &[0x01, 0x02]);
        // First option: delta 11 (Uri-Path), length 1.
        assert_eq!(wire[4], 0xB1);
        assert_eq!(wire[5], b'x');
    }

    #[test]
    fn extended_option_deltas_encode() {
        // Observe(6) then a large custom option number forces the 14-nibble.
        let msg = CoapMessage {
            mtype: CoapType::NonConfirmable,
            code: CoapCode::CONTENT,
            message_id: 1,
            token: vec![],
            options: vec![
                CoapOption {
                    number: OPT_OBSERVE,
                    value: vec![0x01],
                },
                CoapOption {
                    number: 2000,
                    value: vec![0u8; 300],
                },
            ],
            payload: vec![0xAA],
        };
        let back = CoapMessage::decode(&msg.encode()).expect("decodes");
        assert_eq!(back, msg);
    }

    #[test]
    fn rejects_malformed_messages() {
        assert!(CoapMessage::decode(&[]).is_err());
        assert!(
            CoapMessage::decode(&[0x00, 0x01, 0x00, 0x01]).is_err(),
            "wrong version"
        );
        assert!(
            CoapMessage::decode(&[0x49, 0x01, 0x00, 0x01]).is_err(),
            "TKL 9"
        );
        // Payload marker with nothing after it.
        assert!(CoapMessage::decode(&[0x40, 0x01, 0x00, 0x01, 0xFF]).is_err());
        // Truncated option value.
        assert!(CoapMessage::decode(&[0x40, 0x01, 0x00, 0x01, 0xB5, b'x']).is_err());
    }

    #[test]
    fn multi_segment_paths() {
        let req = CoapMessage::get(1, &[], "a/b/c/d");
        let back = CoapMessage::decode(&req.encode()).expect("decodes");
        assert_eq!(back.uri_path(), "a/b/c/d");
        assert_eq!(back.options.len(), 4);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_options_panic_on_encode() {
        let msg = CoapMessage {
            mtype: CoapType::Confirmable,
            code: CoapCode::GET,
            message_id: 1,
            token: vec![],
            options: vec![
                CoapOption {
                    number: 12,
                    value: vec![],
                },
                CoapOption {
                    number: 11,
                    value: vec![],
                },
            ],
            payload: vec![],
        };
        let _ = msg.encode();
    }

    #[test]
    fn code_display() {
        assert_eq!(CoapCode::GET.to_string(), "0.01");
        assert_eq!(CoapCode::CONTENT.to_string(), "2.05");
        assert_eq!(CoapCode::NOT_FOUND.to_string(), "4.04");
    }
}
