//! Keyword spotting — the A11 (speech-to-text) kernel.
//!
//! The PocketSphinx substitute: a spectral front-end (Goertzel filter bank
//! over the vocabulary's tone frequencies) feeding a dynamic-time-warping
//! matcher against synthesized per-word templates. Heavy on purpose — this
//! is the paper's one workload that cannot fit the MCU.

use std::f64::consts::PI;

use iotse_sensors::signal::audio::{word_tones, VOCABULARY, WORD_DURATION};

/// Samples per analysis frame (64 ms at 1 kHz).
pub const FRAME_SAMPLES: usize = 64;

/// Energy (relative to the frame count) below which a frame is silence.
const SPEECH_ENERGY_GATE: f64 = 400.0;

/// Goertzel power of `signal` at `freq_hz` for a given sample rate.
#[must_use]
pub fn goertzel_power(signal: &[f64], freq_hz: f64, sample_rate_hz: f64) -> f64 {
    let omega = 2.0 * PI * freq_hz / sample_rate_hz;
    let coeff = 2.0 * omega.cos();
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    for &x in signal {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    (s1 * s1 + s2 * s2 - coeff * s1 * s2) / signal.len().max(1) as f64
}

/// The filter-bank frequencies: both tones of every vocabulary word,
/// deduplicated, sorted.
#[must_use]
pub fn filter_bank() -> Vec<f64> {
    let mut freqs: Vec<f64> = (0..VOCABULARY.len())
        .flat_map(|w| {
            let (a, b) = word_tones(w);
            [a, b]
        })
        .collect();
    freqs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    freqs.dedup();
    freqs
}

/// One frame's feature vector: normalized filter-bank powers.
#[must_use]
fn frame_features(frame: &[f64], bank: &[f64], sample_rate_hz: f64) -> Vec<f64> {
    let mut feats: Vec<f64> = bank
        .iter()
        .map(|&f| goertzel_power(frame, f, sample_rate_hz))
        .collect();
    let norm: f64 = feats.iter().sum::<f64>().max(1e-12);
    for f in &mut feats {
        *f /= norm;
    }
    feats
}

/// Dynamic-time-warping distance between two feature sequences
/// (per-frame L1 cost, unit steps), normalized by path-free length.
///
/// # Panics
///
/// Panics if either sequence is empty or feature dimensions differ.
#[must_use]
pub fn dtw_distance(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "DTW needs non-empty sequences"
    );
    assert_eq!(a[0].len(), b[0].len(), "feature dimensions differ");
    let cost = |x: &[f64], y: &[f64]| -> f64 { x.iter().zip(y).map(|(p, q)| (p - q).abs()).sum() };
    let n = a.len();
    let m = b.len();
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr[0] = f64::INFINITY;
        for j in 1..=m {
            let c = cost(&a[i - 1], &b[j - 1]);
            curr[j] = c + prev[j - 1].min(prev[j]).min(curr[j - 1]);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m] / (n + m) as f64
}

/// A recognized keyword.
#[derive(Debug, Clone, PartialEq)]
pub struct Recognition {
    /// Index into [`VOCABULARY`].
    pub word: usize,
    /// DTW distance of the winning template (smaller = more confident).
    pub distance: f64,
    /// Sample offset of the segment start within the window.
    pub start_sample: usize,
}

/// The keyword-spotting engine with synthesized reference templates.
#[derive(Debug, Clone)]
pub struct KeywordSpotter {
    sample_rate_hz: f64,
    bank: Vec<f64>,
    templates: Vec<Vec<Vec<f64>>>,
}

impl KeywordSpotter {
    /// Builds the engine, synthesizing one ideal template per vocabulary
    /// word.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz` is not positive.
    #[must_use]
    pub fn new(sample_rate_hz: f64) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        let bank = filter_bank();
        let word_samples = (WORD_DURATION.as_secs_f64() * sample_rate_hz) as usize;
        let templates = (0..VOCABULARY.len())
            .map(|w| {
                let (f1, f2) = word_tones(w);
                let signal: Vec<f64> = (0..word_samples)
                    .map(|i| {
                        let t = i as f64 / sample_rate_hz;
                        let envelope = (PI * i as f64 / word_samples as f64).sin();
                        180.0
                            * envelope
                            * ((2.0 * PI * f1 * t).sin() + 0.8 * (2.0 * PI * f2 * t).sin())
                    })
                    .collect();
                signal
                    .chunks(FRAME_SAMPLES)
                    .filter(|c| c.len() == FRAME_SAMPLES)
                    .map(|c| frame_features(c, &bank, sample_rate_hz))
                    .collect()
            })
            .collect();
        KeywordSpotter {
            sample_rate_hz,
            bank,
            templates,
        }
    }

    /// Recognizes keywords in one window of raw ADC samples (centred on
    /// 512 counts). Returns one recognition per speech segment found.
    #[must_use]
    pub fn recognize(&self, samples: &[f64]) -> Vec<Recognition> {
        // 1. Voice activity detection per frame.
        let frames: Vec<&[f64]> = samples.chunks(FRAME_SAMPLES).collect();
        let active: Vec<bool> = frames
            .iter()
            .map(|f| {
                let energy: f64 = f.iter().map(|&x| (x - 512.0) * (x - 512.0)).sum::<f64>()
                    / f.len().max(1) as f64;
                energy > SPEECH_ENERGY_GATE
            })
            .collect();

        // 2. Segment contiguous active regions.
        let mut out = Vec::new();
        let mut seg_start: Option<usize> = None;
        for i in 0..=active.len() {
            let is_active = i < active.len() && active[i];
            match (seg_start, is_active) {
                (None, true) => seg_start = Some(i),
                (Some(s), false) => {
                    if i - s >= 2 {
                        if let Some(r) = self.classify(&frames[s..i], s * FRAME_SAMPLES) {
                            out.push(r);
                        }
                    }
                    seg_start = None;
                }
                _ => {}
            }
        }
        out
    }

    /// Classifies one speech segment by minimum DTW distance.
    fn classify(&self, frames: &[&[f64]], start_sample: usize) -> Option<Recognition> {
        let feats: Vec<Vec<f64>> = frames
            .iter()
            .filter(|f| f.len() == FRAME_SAMPLES)
            .map(|f| frame_features(f, &self.bank, self.sample_rate_hz))
            .collect();
        if feats.is_empty() {
            return None;
        }
        let (word, distance) = self
            .templates
            .iter()
            .enumerate()
            .map(|(w, t)| (w, dtw_distance(&feats, t)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))?;
        Some(Recognition {
            word,
            distance,
            start_sample,
        })
    }

    /// The vocabulary string for a word index.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    #[must_use]
    pub fn word_str(&self, word: usize) -> &'static str {
        VOCABULARY[word]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotse_sensors::signal::audio::AudioGenerator;
    use iotse_sim::rng::SeedTree;
    use iotse_sim::time::SimTime;

    #[test]
    fn goertzel_finds_its_tone() {
        let rate = 1000.0;
        let signal: Vec<f64> = (0..256)
            .map(|i| (2.0 * PI * 200.0 * i as f64 / rate).sin())
            .collect();
        let on_tone = goertzel_power(&signal, 200.0, rate);
        let off_tone = goertzel_power(&signal, 350.0, rate);
        assert!(on_tone > 20.0 * off_tone, "{on_tone} vs {off_tone}");
    }

    #[test]
    fn dtw_prefers_identical_sequences() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let b = vec![vec![0.9, 0.1], vec![0.2, 0.8]];
        assert_eq!(dtw_distance(&a, &a), 0.0);
        assert!(dtw_distance(&a, &b) > 0.0);
    }

    #[test]
    fn dtw_tolerates_time_stretch() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let stretched = vec![
            vec![1.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
        ];
        let other = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert!(dtw_distance(&a, &stretched) < dtw_distance(&a, &other));
    }

    #[test]
    fn recognizes_generated_utterances() {
        let generator = AudioGenerator::new(&SeedTree::new(21), 3, SimTime::from_secs(9));
        let spotter = KeywordSpotter::new(1000.0);
        let mut hits = 0;
        let mut total = 0;
        for u in generator.utterances() {
            // One window centred on the utterance.
            let start = u.at.as_millis().saturating_sub(100);
            let samples: Vec<f64> = (0..1000)
                .map(|ms| generator.value_at(SimTime::from_millis(start + ms)))
                .collect();
            let recs = spotter.recognize(&samples);
            total += 1;
            if recs.iter().any(|r| r.word == u.word) {
                hits += 1;
            }
        }
        assert_eq!(
            hits, total,
            "all {total} centred utterances must be recognized"
        );
    }

    #[test]
    fn straddling_words_are_found_in_at_least_one_window() {
        // A word cut by a window boundary must be recognized in the window
        // holding (most of) it, and never invent a different word.
        let generator = AudioGenerator::new(&SeedTree::new(77), 2, SimTime::from_secs(6));
        let spotter = KeywordSpotter::new(1000.0);
        for u in generator.utterances() {
            let mut found = 0;
            for offset in [0u64, 500] {
                let start = (u.at.as_millis() + offset).saturating_sub(1000);
                let samples: Vec<f64> = (0..1000)
                    .map(|ms| generator.value_at(SimTime::from_millis(start + ms)))
                    .collect();
                for r in spotter.recognize(&samples) {
                    if r.word == u.word {
                        found += 1;
                    }
                }
            }
            assert!(found >= 1, "word {} at {} never recognized", u.word, u.at);
        }
    }

    #[test]
    fn silence_yields_nothing() {
        let spotter = KeywordSpotter::new(1000.0);
        let silence = vec![512.0; 1000];
        assert!(spotter.recognize(&silence).is_empty());
        let noise: Vec<f64> = (0..1000)
            .map(|i| 512.0 + 5.0 * ((i * 7919 % 97) as f64 / 97.0 - 0.5))
            .collect();
        assert!(spotter.recognize(&noise).is_empty());
    }

    #[test]
    fn word_str_maps_vocabulary() {
        let spotter = KeywordSpotter::new(1000.0);
        assert_eq!(spotter.word_str(0), VOCABULARY[0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn dtw_rejects_empty() {
        let _ = dtw_distance(&[], &[vec![0.0]]);
    }
}
